"""Exact two-dimensional algorithms (section 3).

With ``d = 2`` every ordering exchange is a single angle (Equation 6), so
ranking regions are angle intervals and everything is exact:

- :func:`verify_stability_2d` — Algorithm 1 (SV2D): one O(n) pass over
  adjacent pairs tightens the interval ``(theta_1, theta_2)``.
- :func:`ray_sweep` — Algorithm 2 (RAYSWEEPING): a kinetic sweep of the
  ordered list from ``U*[1]`` to ``U*[2]`` that discovers every ranking
  region and its width, in ``O(K log n)`` for ``K`` exchanges inside the
  region of interest.
- :class:`GetNext2D` — Algorithm 3: pops regions from the max-heap in
  decreasing stability and materialises each region's ranking.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking, rank_items
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import AngularRegion, StabilityResult
from repro.errors import ExhaustedError, InfeasibleRankingError
from repro.geometry.dual import dominates

__all__ = ["verify_stability_2d", "ray_sweep", "sweep_boundaries", "GetNext2D"]

_ANGLE_EPS = 1e-12


def _weights_at(angle: float) -> np.ndarray:
    """The 2D weight vector at angle ``t`` from the x1 axis."""
    return np.array([math.cos(angle), math.sin(angle)])


def _exchange_angle(t: np.ndarray, t_prime: np.ndarray) -> float | None:
    """Equation 6 with the degenerate cases resolved to ``None``.

    Returns the exchange angle in ``[0, pi/2]``, or ``None`` when the two
    items never exchange inside the quadrant (dominance or identity).
    """
    dx = float(t_prime[0] - t[0])
    dy = float(t[1] - t_prime[1])
    if dy == 0.0:
        return None  # identical second attribute: dominance or identity
    ratio = dx / dy
    if ratio < 0.0:
        return None  # dominance: no exchange in the quadrant
    return math.atan(ratio)


def verify_stability_2d(
    dataset: Dataset,
    ranking: Ranking,
    *,
    region: RegionOfInterest | None = None,
) -> StabilityResult:
    """Algorithm 1 (SV2D): exact stability of ``ranking`` in 2D.

    Walks adjacent pairs of the ranking; each non-dominating pair's
    exchange angle tightens the lower bound ``theta_1`` (when
    ``t[1] < t'[1]``) or the upper bound ``theta_2`` (when
    ``t[1] > t'[1]``).  The stability is the surviving width over the
    width of the region of interest.

    Parameters
    ----------
    dataset:
        Two-attribute dataset.
    ranking:
        A complete ranking of the dataset's items.
    region:
        Region of interest; defaults to the full space, reproducing the
        paper's ``(0, pi/2)`` initialisation.

    Raises
    ------
    InfeasibleRankingError
        If no function in the region induces the ranking (the paper's
        ``return null``).
    """
    if dataset.n_attributes != 2:
        raise ValueError("verify_stability_2d requires exactly 2 attributes")
    if not ranking.is_complete or ranking.n_items != dataset.n_items:
        raise InfeasibleRankingError(
            "ranking must be a complete permutation of the dataset's items"
        )
    roi = region if region is not None else FullSpace(2)
    lo_bound, hi_bound = roi.angle_interval()
    theta_1, theta_2 = lo_bound, hi_bound
    values = dataset.values
    for i in range(len(ranking) - 1):
        t = values[ranking[i]]
        t_prime = values[ranking[i + 1]]
        if dominates(t, t_prime):
            continue
        if dominates(t_prime, t):
            raise InfeasibleRankingError(
                f"item {ranking[i + 1]} dominates item {ranking[i]} but is "
                "ranked below it"
            )
        theta = _exchange_angle(t, t_prime)
        if theta is None:
            # Items tie everywhere or coincide; the convention breaks the
            # tie by identifier, so a lower id must come first.
            if np.allclose(t, t_prime) and ranking[i] > ranking[i + 1]:
                raise InfeasibleRankingError(
                    "tied items ranked against the identifier convention"
                )
            continue
        if t[0] < t_prime[0] and theta > theta_1:
            theta_1 = theta
        if t[0] > t_prime[0] and theta < theta_2:
            theta_2 = theta
        if theta_1 > theta_2:
            raise InfeasibleRankingError(
                "ordering-exchange constraints are contradictory inside the "
                "region of interest"
            )
    width = theta_2 - theta_1
    total = hi_bound - lo_bound
    return StabilityResult(
        ranking=ranking,
        stability=width / total,
        region=AngularRegion(theta_1, theta_2),
    )


def sweep_boundaries(
    dataset: Dataset,
    *,
    region: RegionOfInterest | None = None,
    method: str = "auto",
) -> tuple[float, float, np.ndarray]:
    """The interior region boundaries of the 2D arrangement inside ``U*``.

    This is RAYSWEEPING's combinatorial core: the strictly increasing
    angles (from the x1 axis) at which the induced ranking changes.  Two
    equivalent implementations are provided:

    - ``"kinetic"`` — the paper's event-driven sweep: a min-heap of
      adjacent-pair exchange events; each pop records a boundary, swaps
      the pair, and queues the new adjacencies.  ``O(K log n)`` for ``K``
      exchanges inside the region of interest, so it wins when ``U*`` is
      narrow relative to the full quadrant.
    - ``"vectorized"`` — in 2D the boundaries are exactly the distinct
      exchange angles of non-dominating pairs (Equation 6), so sorting
      the ``O(n^2)`` pairwise angles (in numpy, chunked) reproduces the
      arrangement directly; far faster in practice.

    ``"auto"`` picks the vectorized path up to 20K items — beyond that
    the materialised angle array itself (up to ``n^2/2`` float64 entries
    for datasets whose pairs rarely dominate) outgrows memory — else the
    kinetic sweep.

    Returns
    -------
    (lo, hi, boundaries):
        The interval of ``U*`` and the sorted interior boundary angles,
        deduplicated to the sweep tolerance.
    """
    if dataset.n_attributes != 2:
        raise ValueError("sweep requires exactly 2 attributes")
    if method not in ("auto", "kinetic", "vectorized"):
        raise ValueError(f"unknown sweep method {method!r}")
    roi = region if region is not None else FullSpace(2)
    lo, hi = roi.angle_interval()
    if method == "vectorized" or (method == "auto" and dataset.n_items <= 20_000):
        raw = _boundaries_vectorized(dataset.values, lo, hi)
    else:
        raw = _boundaries_kinetic(dataset.values, lo, hi)
    return lo, hi, _dedupe_boundaries(raw, lo, hi)


def ray_sweep(
    dataset: Dataset,
    *,
    region: RegionOfInterest | None = None,
    method: str = "auto",
) -> list[tuple[float, AngularRegion]]:
    """Algorithm 2 (RAYSWEEPING): all ranking regions inside ``U*``.

    Builds the full ``(stability, region)`` list from
    :func:`sweep_boundaries`; for very large inputs whose arrangement
    has millions of regions, prefer iterating :class:`GetNext2D`, which
    avoids materialising every region object up front.

    Returns
    -------
    list of (stability, region):
        One entry per ranking region, ordered by angle.  Stabilities sum
        to 1 over the region of interest (up to float error).
    """
    lo, hi, boundaries = sweep_boundaries(dataset, region=region, method=method)
    total = hi - lo
    edges = np.concatenate([[lo], boundaries, [hi]])
    return [
        ((b - a) / total, AngularRegion(float(a), float(b)))
        for a, b in zip(edges, edges[1:])
    ]


def _dedupe_boundaries(angles: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Sort, restrict to the open interval, and merge near-coincident angles."""
    if angles.size == 0:
        return angles
    angles = np.sort(angles)
    keep: list[float] = []
    last = lo
    for angle in angles:
        if angle <= lo + _ANGLE_EPS or angle >= hi - _ANGLE_EPS:
            continue
        if angle - last > _ANGLE_EPS:
            keep.append(float(angle))
            last = float(angle)
    return np.asarray(keep)


def _boundaries_vectorized(
    values: np.ndarray, lo: float, hi: float, *, chunk_rows: int = 512
) -> np.ndarray:
    """All in-interval exchange angles via chunked pairwise evaluation.

    For every non-dominating pair the exchange angle (Equation 6) is a
    region boundary; no other boundaries exist.  Chunking bounds the
    transient pair arrays at ``chunk_rows * n`` entries.
    """
    n = values.shape[0]
    collected: list[np.ndarray] = []
    for start in range(0, n - 1, chunk_rows):
        stop = min(start + chunk_rows, n - 1)
        block = values[start:stop]  # rows i in [start, stop)
        tail = values[start + 1 :]
        d0 = block[:, None, 0] - tail[None, :, 0]
        d1 = block[:, None, 1] - tail[None, :, 1]
        row_idx = np.arange(start, stop)[:, None]
        col_idx = np.arange(start + 1, n)[None, :]
        valid = col_idx > row_idx
        # Non-dominating pairs have opposite-signed coordinate deltas;
        # compare signs directly — the product d0*d1 can underflow to
        # zero for subnormal deltas and miss the exchange.
        mask = valid & (((d0 > 0.0) & (d1 < 0.0)) | ((d0 < 0.0) & (d1 > 0.0)))
        if not np.any(mask):
            continue
        # A finite delta over a subnormal one overflows to inf; that is
        # benign — arctan(inf) = pi/2, which the interval filter drops.
        with np.errstate(over="ignore"):
            angles = np.arctan(-d0[mask] / d1[mask])
        inside = (angles > lo + _ANGLE_EPS) & (angles < hi - _ANGLE_EPS)
        if np.any(inside):
            collected.append(angles[inside])
    if not collected:
        return np.empty(0)
    return np.concatenate(collected)


def _boundaries_kinetic(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """The paper's kinetic sweep, recording each swap angle as a boundary.

    At every moment only adjacent items in the current order can exchange
    next, so a min-heap of adjacent-pair events drives the sweep.  Stale
    events (pairs no longer adjacent when popped) are skipped —
    equivalent to the paper's bookkeeping but robust to coinciding
    angles.
    """
    n = values.shape[0]
    # Order at the opening angle itself.  Evaluating at a nudged angle
    # ``lo + eps`` instead can round away sub-eps score gaps (an item
    # pair differing by ~1e-8 contributes ~1e-20 at eps = 1e-12, far
    # below float64 resolution at score ~1), starting the sweep in the
    # wrong order and silently dropping the crossings that undo it.
    # Score ties at ``lo`` are broken by the score *derivative* — the
    # order just inside the interval — then by ascending identifier
    # (np.lexsort is stable), matching the ranking convention.
    score = values @ _weights_at(lo)
    derivative = values @ np.array([-math.sin(lo), math.cos(lo)])
    order = list(np.lexsort((-derivative, -score)))
    position = {item: idx for idx, item in enumerate(order)}

    events: list[tuple[float, int, int]] = []  # (angle, upper item, lower item)
    current = lo  # the sweep position: the last processed event angle
    # A pair's score difference Delta1*cos + Delta2*sin has at most one
    # zero in the quadrant, so every unordered pair exchanges at most
    # once; remembering swapped pairs rejects the formula's mirror event
    # (degenerate near-tied items would otherwise swap back and forth at
    # the same angle forever).
    swapped: set[tuple[int, int]] = set()

    def push_event(idx: int) -> None:
        """Queue the exchange of the items at positions idx, idx+1.

        Events behind the sweep position are crossings that happened
        before the window (the pair is already in post-exchange order)
        and must not be replayed.
        """
        if idx < 0 or idx + 1 >= n:
            return
        a, b = order[idx], order[idx + 1]
        if ((a, b) if a < b else (b, a)) in swapped:
            return
        theta = _exchange_angle(values[a], values[b])
        if theta is not None and lo < theta < hi and theta >= current:
            heapq.heappush(events, (theta, a, b))

    for i in range(n - 1):
        push_event(i)

    boundaries: list[float] = []
    prev_angle = lo
    while events:
        theta, a, b = heapq.heappop(events)
        ia = position[a]
        # Stale check: the pair must still be adjacent with `a` on top.
        if ia + 1 >= n or order[ia + 1] != b:
            continue
        current = theta
        if theta - prev_angle > _ANGLE_EPS:
            boundaries.append(theta)
            prev_angle = theta
        # Swap the pair and queue the new adjacencies.
        swapped.add((a, b) if a < b else (b, a))
        order[ia], order[ia + 1] = order[ia + 1], order[ia]
        position[order[ia]] = ia
        position[order[ia + 1]] = ia + 1
        push_event(ia - 1)
        push_event(ia + 1)
    return np.asarray(boundaries)


class GetNext2D:
    """Algorithm 3 (GET-NEXT-2D): iterate rankings by decreasing stability.

    The first call runs :func:`ray_sweep` (``O(n^2 log n)`` worst case)
    and heapifies the regions; every subsequent call is a heap pop plus
    one ``O(n log n)`` ranking materialisation at the region midpoint.

    Iterating the object yields :class:`StabilityResult` records; the
    explicit :meth:`get_next` matches the paper's operator.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        method: str = "auto",
    ):
        if dataset.n_attributes != 2:
            raise ValueError("GetNext2D requires exactly 2 attributes")
        self.dataset = dataset
        self.region = region if region is not None else FullSpace(2)
        self._method = method
        # Regions are kept as an edge array plus a pop order rather than
        # a heap of objects: arrangements of large datasets have millions
        # of regions and per-region Python objects would dominate the
        # first-call cost.
        self._edges: np.ndarray | None = None
        self._pop_order: np.ndarray | None = None
        self._cursor = 0
        self._total = 0.0
        self.returned = 0

    def _build(self) -> None:
        lo, hi, boundaries = sweep_boundaries(
            self.dataset, region=self.region, method=self._method
        )
        self._edges = np.concatenate([[lo], boundaries, [hi]])
        self._total = hi - lo
        widths = np.diff(self._edges)
        # Decreasing width; ties broken by interval start for determinism.
        self._pop_order = np.lexsort((self._edges[:-1], -widths))
        self._cursor = 0

    def get_next(self) -> StabilityResult:
        """Return the next most stable ranking (Problem 3 in 2D).

        Raises
        ------
        ExhaustedError
            After every feasible ranking has been returned.
        """
        if self._edges is None:
            self._build()
        assert self._edges is not None and self._pop_order is not None
        if self._cursor >= self._pop_order.shape[0]:
            raise ExhaustedError("all ranking regions have been enumerated")
        idx = int(self._pop_order[self._cursor])
        self._cursor += 1
        angular = AngularRegion(float(self._edges[idx]), float(self._edges[idx + 1]))
        ranking = rank_items(self.dataset.values, angular.midpoint_weights())
        self.returned += 1
        return StabilityResult(
            ranking=ranking, stability=angular.width / self._total, region=angular
        )

    def __iter__(self) -> Iterator[StabilityResult]:
        while True:
            try:
                yield self.get_next()
            except ExhaustedError:
                return
