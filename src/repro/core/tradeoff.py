"""The producer's stability / similarity trade-off (Example 1's workflow).

CSMetrics' dilemma in Example 1: the globally most stable ranking sits
far from the published weights (``alpha = 0.608`` vs ``0.3``), so the
producer explores *how much stability is attainable within a given
distance of the reference function* — "the most stable ranking that is
within 0.998 cosine similarity from the original scoring function".

This module sweeps that frontier:

- :func:`most_stable_within` — the most stable ranking inside one
  cosine-similarity cone around the reference weights;
- :func:`stability_similarity_tradeoff` — the full frontier across a
  grid of cosine similarities, each point recording the best ranking,
  its stability, and how far it moved from the reference ranking
  (Kendall tau displacement and the set of rank changes).

Engines are chosen as in :func:`repro.core.enumeration.make_get_next`;
all estimates inherit that engine's semantics (exact in 2D, Monte-Carlo
otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Dataset
from repro.core.enumeration import make_get_next
from repro.core.ranking import Ranking, rank_items
from repro.core.region import Cone
from repro.core.stability import StabilityResult
from repro.errors import ExhaustedError, InvalidWeightsError
from repro.geometry.angles import as_unit_vector, cosine_to_angle

__all__ = [
    "TradeoffPoint",
    "most_stable_within",
    "stability_similarity_tradeoff",
    "absolute_best_volumes",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the stability/similarity frontier.

    Attributes
    ----------
    cosine:
        The minimum cosine similarity defining the cone probed.
    theta:
        The equivalent cone half-angle.
    best:
        The most stable result found inside the cone.
    reference_stability:
        Stability of the *reference* ranking inside the same cone —
        the gap to ``best.stability`` is the producer's incentive to
        move.
    displacement:
        Kendall tau distance between the best and reference rankings
        (number of discordant pairs); 0 when the reference is already
        the most stable.
    moved_items:
        Items whose rank differs between the two rankings, as a tuple
        of ``(item, reference_rank, new_rank)`` triples sorted by the
        size of the move (largest first).
    """

    cosine: float
    theta: float
    best: StabilityResult
    reference_stability: float
    displacement: int
    moved_items: tuple[tuple[int, int, int], ...]


def _rank_moves(
    reference: Ranking, candidate: Ranking
) -> tuple[tuple[int, int, int], ...]:
    """Items whose rank changed, ordered by move size descending."""
    moves = []
    for item in reference:
        ref_rank = reference.rank_of(item)
        new_rank = candidate.rank_of(item)
        if ref_rank != new_rank:
            moves.append((item, ref_rank, new_rank))
    moves.sort(key=lambda m: (-abs(m[1] - m[2]), m[0]))
    return tuple(moves)


def most_stable_within(
    dataset: Dataset,
    reference_weights: np.ndarray,
    cosine: float,
    *,
    engine: str = "auto",
    rng: np.random.Generator | None = None,
    search_limit: int = 1,
    **engine_kwargs,
) -> StabilityResult:
    """The most stable ranking within ``cosine`` similarity of a reference.

    Parameters
    ----------
    dataset:
        The database.
    reference_weights:
        The published scoring weights the producer wants to stay close
        to.
    cosine:
        Minimum cosine similarity (e.g. ``0.998``); the acceptable
        region is the cone of that half-angle around the reference.
    engine:
        Engine selector, as in :func:`make_get_next`.
    search_limit:
        How many GET-NEXT results to pull; the first is the most stable
        by construction, so the default suffices unless a randomized
        engine with a small budget is in play (where pulling a few and
        keeping the max hedges estimation noise).
    """
    if not 0.0 < cosine < 1.0:
        raise ValueError(f"cosine must be in (0, 1), got {cosine}")
    cone = Cone(np.asarray(reference_weights, dtype=np.float64), cosine_to_angle(cosine))
    get_next = make_get_next(
        dataset, region=cone, engine=engine, rng=rng, **engine_kwargs
    )
    best: StabilityResult | None = None
    for _ in range(max(1, search_limit)):
        try:
            candidate = get_next.get_next()
        except ExhaustedError:
            break
        if best is None or candidate.stability > best.stability:
            best = candidate
    if best is None:
        raise ExhaustedError("no ranking found inside the similarity cone")
    return best


def stability_similarity_tradeoff(
    dataset: Dataset,
    reference_weights: np.ndarray,
    *,
    cosines: tuple[float, ...] = (0.9999, 0.999, 0.998, 0.99, 0.97, 0.95),
    engine: str = "auto",
    rng: np.random.Generator | None = None,
    n_samples: int = 4_000,
    **engine_kwargs,
) -> list[TradeoffPoint]:
    """Sweep the stability/similarity frontier around a reference function.

    For each cosine level, finds the most stable ranking in the
    corresponding cone, evaluates the reference ranking's stability in
    that same cone, and reports the displacement between the two.

    Parameters
    ----------
    dataset, reference_weights:
        As in :func:`most_stable_within`.
    cosines:
        Similarity levels to probe, each in ``(0, 1)``; evaluated in
        the given order and reported in the same order.
    n_samples:
        Sample budget per cone for the reference-stability estimate
        when the dataset has more than two attributes (2D is exact).
    """
    w = np.asarray(reference_weights, dtype=np.float64)
    if w.ndim != 1 or w.shape[0] != dataset.n_attributes:
        raise InvalidWeightsError(
            f"reference weights must have length {dataset.n_attributes}"
        )
    unit = as_unit_vector(w)
    reference_ranking = rank_items(dataset.values, unit)
    generator = rng if rng is not None else np.random.default_rng()
    points: list[TradeoffPoint] = []
    for cosine in cosines:
        theta = cosine_to_angle(cosine)
        best = most_stable_within(
            dataset,
            unit,
            cosine,
            engine=engine,
            rng=generator,
            **engine_kwargs,
        )
        reference_stability = _reference_stability_in_cone(
            dataset, unit, theta, reference_ranking, generator, n_samples
        )
        if best.ranking.is_complete:
            displacement = reference_ranking.kendall_tau_distance(best.ranking)
            moves = _rank_moves(reference_ranking, best.ranking)
        else:  # randomized top-k engines return prefixes
            displacement = -1
            moves = ()
        points.append(
            TradeoffPoint(
                cosine=float(cosine),
                theta=float(theta),
                best=best,
                reference_stability=reference_stability,
                displacement=displacement,
                moved_items=moves,
            )
        )
    return points


def _reference_stability_in_cone(
    dataset: Dataset,
    unit: np.ndarray,
    theta: float,
    reference_ranking: Ranking,
    rng: np.random.Generator,
    n_samples: int,
) -> float:
    """Stability of the reference ranking inside one cone (exact in 2D)."""
    from repro.core.md import verify_stability_md
    from repro.core.twod import verify_stability_2d
    from repro.errors import InfeasibleRankingError

    cone = Cone(unit, theta)
    try:
        if dataset.n_attributes == 2:
            return verify_stability_2d(dataset, reference_ranking, region=cone).stability
        return verify_stability_md(
            dataset,
            reference_ranking,
            region=cone,
            n_samples=n_samples,
            rng=rng,
        ).stability
    except InfeasibleRankingError:
        # Numerically possible when the reference ray sits exactly on a
        # region boundary; the honest answer is "zero volume".
        return 0.0


def absolute_best_volumes(points: list[TradeoffPoint], dim: int) -> list[float]:
    """Convert each frontier point's per-cone stability to absolute volume.

    Stability is normalised by the cone's own volume, so a narrower
    cone can show a *higher* best stability even though its best region
    is smaller in absolute terms.  Multiplying by the cap's area makes
    points comparable across cosine levels: the absolute best volume is
    non-decreasing in ``theta`` (a wider cone contains every region of a
    narrower one), which the tests assert up to Monte-Carlo slack.
    """
    from repro.geometry.spherical import cap_area

    return [p.best.stability * cap_area(dim, p.theta) for p in points]
