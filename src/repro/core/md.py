"""Multi-dimensional algorithms (section 4).

For ``d > 2`` ranking regions are convex cones bounded by
ordering-exchange hyperplanes (Equation 7) and exact volumes are
#P-hard, so stability is estimated by the Monte-Carlo oracle over a
shared sample pool:

- :func:`verify_stability_md` — Algorithm 4 (SV): collect the positive
  halfspaces of adjacent pairs and ask the oracle.
- :func:`exchange_hyperplanes` — Algorithm 5 (×hps): the
  ordering-exchange hyperplanes that pass through the region of
  interest, detected against the sample pool.
- :class:`GetNextMD` — Algorithm 6: lazy best-first construction of the
  hyperplane arrangement, splitting only the most stable region, with
  the section 5.4 sample-partitioning ``passThrough``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking, rank_items
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.errors import ExhaustedError, InfeasibleRankingError
from repro.geometry.arrangement import Arrangement, ArrangementRegion
from repro.geometry.dual import dominates, pairwise_exchange_hyperplanes
from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.sampling.montecarlo import confidence_error
from repro.sampling.oracle import StabilityOracle

__all__ = [
    "ranking_region_md",
    "verify_stability_md",
    "exchange_hyperplanes",
    "GetNextMD",
]


def ranking_region_md(dataset: Dataset, ranking: Ranking) -> ConvexCone:
    """The ranking region of ``ranking`` as a convex cone (Algorithm 4 core).

    For each adjacent pair ``(t, t')`` of the ranking the positive
    halfspace ``sum_k (t[k] - t'[k]) x_k > 0`` must hold; dominating pairs
    contribute no constraint.

    Raises
    ------
    InfeasibleRankingError
        If a lower-ranked item dominates a higher-ranked one.
    """
    if not ranking.is_complete or ranking.n_items != dataset.n_items:
        raise InfeasibleRankingError(
            "ranking must be a complete permutation of the dataset's items"
        )
    values = dataset.values
    halfspaces: list[Halfspace] = []
    for i in range(len(ranking) - 1):
        t = values[ranking[i]]
        t_prime = values[ranking[i + 1]]
        if dominates(t, t_prime):
            continue
        if dominates(t_prime, t):
            raise InfeasibleRankingError(
                f"item {ranking[i + 1]} dominates item {ranking[i]} but is "
                "ranked below it"
            )
        normal = t - t_prime
        if np.allclose(normal, 0.0):
            if ranking[i] > ranking[i + 1]:
                raise InfeasibleRankingError(
                    "tied items ranked against the identifier convention"
                )
            continue
        halfspaces.append(Halfspace(tuple(normal), +1))
    return ConvexCone(halfspaces, dim=dataset.n_attributes)


def verify_stability_md(
    dataset: Dataset,
    ranking: Ranking,
    *,
    region: RegionOfInterest | None = None,
    oracle: StabilityOracle | None = None,
    n_samples: int = 10_000,
    rng: np.random.Generator | None = None,
    confidence: float = 0.95,
) -> StabilityResult:
    """Algorithm 4 (SV): Monte-Carlo stability of a ranking for ``d >= 2``.

    Parameters
    ----------
    dataset, ranking:
        The database and the ranking to verify.
    region:
        Region of interest ``U*``; defaults to the full function space.
    oracle:
        A prebuilt :class:`StabilityOracle` over samples from ``region``.
        Supplying one amortises the sampling cost across verifications;
        otherwise ``n_samples`` fresh samples are drawn with ``rng``.
    n_samples, rng:
        Pool size and generator used when no oracle is given.
    confidence:
        Confidence level of the reported error half-width.
    """
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    if oracle is None:
        generator = rng if rng is not None else np.random.default_rng()
        oracle = StabilityOracle(roi.sample(n_samples, generator))
    cone = ranking_region_md(dataset, ranking)
    stability, error = oracle.stability_with_error(cone, confidence=confidence)
    return StabilityResult(
        ranking=ranking,
        stability=stability,
        region=cone,
        confidence_error=error,
        sample_count=oracle.pool_size,
    )


def exchange_hyperplanes(
    dataset: Dataset,
    *,
    region_samples: np.ndarray | None = None,
    probe_limit: int = 512,
    chunk_size: int = 200_000,
) -> np.ndarray:
    """Algorithm 5 (×hps): exchange hyperplanes intersecting ``U*``.

    Builds the ``t_i - t_j`` normals for every non-dominating pair, then
    keeps the hyperplanes that split the region of interest, detected by
    checking whether the probe samples land on both sides (the sampling
    variant the paper suggests in section 5.4).  With no samples given,
    all non-dominating pairs are returned (``U* = U`` behaviour requires
    splitting the orthant, which any non-dominating exchange does).

    Parameters
    ----------
    dataset:
        The database.
    region_samples:
        ``(N, d)`` pool drawn from ``U*``; only the first ``probe_limit``
        rows are used for the straddle test.
    probe_limit:
        Cap on probe samples — intersection detection needs far fewer
        points than stability estimation.
    chunk_size:
        Pairs are processed in chunks of this many hyperplanes to bound
        peak memory at ``chunk_size * probe_limit`` sign evaluations.

    Returns
    -------
    numpy.ndarray
        ``(m, d)`` array of hyperplane normals.
    """
    normals, _ = pairwise_exchange_hyperplanes(dataset.values)
    if region_samples is None or normals.shape[0] == 0:
        return normals
    probes = np.asarray(region_samples, dtype=np.float64)[:probe_limit]
    keep_chunks: list[np.ndarray] = []
    for start in range(0, normals.shape[0], chunk_size):
        block = normals[start : start + chunk_size]
        signs = probes @ block.T > 0.0  # (probes, block)
        any_pos = signs.any(axis=0)
        any_neg = (~signs).any(axis=0)
        keep_chunks.append(block[any_pos & any_neg])
    return np.concatenate(keep_chunks, axis=0)


class GetNextMD:
    """Algorithm 6 (GET-NEXT-MD): lazy stable-region enumeration for d > 2.

    Keeps a max-heap of arrangement regions keyed by Monte-Carlo
    stability.  Each :meth:`get_next` pops the most stable region and
    either splits it by its first intersecting pending hyperplane
    (children go back on the heap) or — when no pending hyperplane
    intersects — returns it as the next stable ranking.

    Duplicate rankings can arise when the finite sample pool fails to
    witness a hyperplane crossing a thin region; they are merged into the
    earlier result's ranking and skipped (Theorem 1 guarantees exact
    arithmetic would not produce them).

    Parameters
    ----------
    dataset:
        The database (any ``d >= 2``).
    region:
        Region of interest; defaults to the full function space.
    n_samples:
        Size of the shared sample pool (the paper uses 100K for the
        GET-NEXT experiments and 1M for verification).
    rng:
        Source of randomness for the pool.
    confidence:
        Confidence level for reported error half-widths.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        region: RegionOfInterest | None = None,
        n_samples: int = 100_000,
        rng: np.random.Generator | None = None,
        confidence: float = 0.95,
        min_split_samples: int = 1,
    ):
        self.dataset = dataset
        self.region = region if region is not None else FullSpace(dataset.n_attributes)
        generator = rng if rng is not None else np.random.default_rng()
        samples = self.region.sample(n_samples, generator)
        hyperplanes = exchange_hyperplanes(dataset, region_samples=samples)
        self.arrangement = Arrangement(
            hyperplanes, samples, min_split_samples=min_split_samples
        )
        self.confidence = confidence
        root = self.arrangement.root_region()
        self._tick = itertools.count()  # deterministic heap tie-break
        self._heap: list[tuple[float, int, ArrangementRegion]] = [
            (-1.0, next(self._tick), root)
        ]
        self._seen_rankings: set[Ranking] = set()
        self.returned = 0

    def get_next(self) -> StabilityResult:
        """Return the next most stable ranking in the region of interest.

        Raises
        ------
        ExhaustedError
            When every region (supported by at least one sample) has been
            returned.
        """
        while self._heap:
            neg_s, _, regionrec = heapq.heappop(self._heap)
            k = self.arrangement.next_intersecting_hyperplane(regionrec)
            if k is None:
                # Final cell: materialise its ranking.
                w = self.arrangement.representative_point(regionrec)
                ranking = rank_items(self.dataset.values, w)
                if ranking in self._seen_rankings:
                    continue
                self._seen_rankings.add(ranking)
                self.returned += 1
                stability = regionrec.stability_estimate(
                    self.arrangement.total_samples
                )
                return StabilityResult(
                    ranking=ranking,
                    stability=stability,
                    region=regionrec.cone,
                    confidence_error=confidence_error(
                        stability,
                        self.arrangement.total_samples,
                        confidence=self.confidence,
                    ),
                    sample_count=regionrec.sample_count(),
                )
            split = self.arrangement.partition(regionrec, k)
            if split is None:
                # The probe said "intersects" but the split was vetoed by
                # min_split_samples; advance past the hyperplane and retry.
                regionrec.pending = k + 1
                heapq.heappush(self._heap, (neg_s, next(self._tick), regionrec))
                continue
            for child in split:
                s = child.stability_estimate(self.arrangement.total_samples)
                heapq.heappush(self._heap, (-s, next(self._tick), child))
        raise ExhaustedError("all ranking regions have been enumerated")

    def __iter__(self) -> Iterator[StabilityResult]:
        while True:
            try:
                yield self.get_next()
            except ExhaustedError:
                return
