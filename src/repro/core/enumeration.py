"""Batch and iterative stable-region enumeration (Problems 2 and 3).

The paper frames the producer's workflow through a single primitive,
GET-NEXT, which yields rankings in decreasing stability (Problem 3).  The
batch variant (Problem 2 — "all rankings with stability >= s" or "the
top-h stable rankings") simply drives GET-NEXT repeatedly; this module
provides that driver over any of the three engines (exact 2D, arrangement
MD, randomized), plus a dispatching factory.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.dataset import Dataset
from repro.core.md import GetNextMD
from repro.core.randomized import GetNextRandomized
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.core.twod import GetNext2D
from repro.errors import ExhaustedError

__all__ = ["make_get_next", "enumerate_stable_rankings", "top_h_stable_rankings"]

# Legacy engine names kept for backward compatibility with the registry
# names used by repro.engine.backends.
_ENGINE_ALIASES = {
    "2d": "twod_exact",
    "md": "md_arrangement",
    "randomized": "randomized",
}


def make_get_next(
    dataset: Dataset,
    *,
    region: RegionOfInterest | None = None,
    engine: str = "auto",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> GetNext2D | GetNextMD | GetNextRandomized:
    """Build the appropriate raw GET-NEXT engine for a dataset.

    Dispatch and construction are delegated to the
    :mod:`repro.engine.backends` registry — this function returns the
    *raw* engine object (for callers that need algorithm-specific
    surface like :attr:`GetNextRandomized.counts`); prefer
    :class:`repro.engine.StabilityEngine` for new code.

    Parameters
    ----------
    dataset:
        The database.
    region:
        Region of interest; defaults to the full space.
    engine:
        A registry backend name (``"twod_exact"``, ``"md_arrangement"``,
        ``"randomized"``), a legacy alias (``"2d"``, ``"md"``), or
        ``"auto"``: exact 2D when d = 2, otherwise the arrangement
        engine for small inputs and the randomized engine for large
        ones (the section 6.3 guidance).
    rng, **kwargs:
        Forwarded to the chosen engine.
    """
    from repro.engine.backends import create_backend, resolve_backend

    roi = region if region is not None else FullSpace(dataset.n_attributes)
    if engine == "auto":
        engine = resolve_backend(dataset, kind=kwargs.get("kind", "full"))
    else:
        engine = _ENGINE_ALIASES.get(engine, engine)
    backend = create_backend(engine, dataset, region=roi, rng=rng, **kwargs)
    return backend.raw


def _drain(
    engine: GetNext2D | GetNextMD | GetNextRandomized,
    *,
    max_results: int | None,
    min_stability: float,
    budget_first: int,
    budget_rest: int,
) -> Iterable[StabilityResult]:
    produced = 0
    while max_results is None or produced < max_results:
        try:
            if isinstance(engine, GetNextRandomized):
                result = engine.get_next(
                    budget=budget_first if produced == 0 else budget_rest
                )
            else:
                result = engine.get_next()
        except ExhaustedError:
            return
        if result.stability < min_stability:
            # Engines yield by decreasing stability (up to Monte-Carlo
            # noise), so the first sub-threshold result ends the batch.
            return
        produced += 1
        yield result


def enumerate_stable_rankings(
    dataset: Dataset,
    *,
    region: RegionOfInterest | None = None,
    min_stability: float = 0.0,
    max_results: int | None = None,
    engine: str = "auto",
    rng: np.random.Generator | None = None,
    budget_first: int = 5_000,
    budget_rest: int = 1_000,
    **kwargs,
) -> list[StabilityResult]:
    """Problem 2 (batch stable-region enumeration).

    Returns every ranking with stability at least ``min_stability``,
    capped at ``max_results``, in decreasing stability.  With the default
    ``min_stability=0`` and no cap it enumerates every feasible ranking
    the engine can produce (use with care for d > 2).

    ``budget_first`` / ``budget_rest`` configure the per-call sampling
    budgets when the randomized engine is used, mirroring the paper's
    experimental protocol.
    """
    engine_obj = make_get_next(
        dataset, region=region, engine=engine, rng=rng, **kwargs
    )
    return list(
        _drain(
            engine_obj,
            max_results=max_results,
            min_stability=min_stability,
            budget_first=budget_first,
            budget_rest=budget_rest,
        )
    )


def top_h_stable_rankings(
    dataset: Dataset,
    h: int,
    *,
    region: RegionOfInterest | None = None,
    engine: str = "auto",
    rng: np.random.Generator | None = None,
    budget_first: int = 5_000,
    budget_rest: int = 1_000,
    **kwargs,
) -> list[StabilityResult]:
    """Problem 2's top-h form: the ``h`` most stable rankings."""
    if h < 1:
        raise ValueError(f"h must be >= 1, got {h}")
    return enumerate_stable_rankings(
        dataset,
        region=region,
        max_results=h,
        engine=engine,
        rng=rng,
        budget_first=budget_first,
        budget_rest=budget_rest,
        **kwargs,
    )
