"""Characterising the boundaries of a stable region (paper future work).

Section 8: "a weight vector is a single point in a stable region.  It
would be nice, for some applications, to characterize the boundaries of
the stable region."  This module does exactly that:

- in 2D a ranking region's boundary is two ordering exchanges;
  :func:`boundary_pairs_2d` names the item pairs whose exchanges clip
  the region (the pairs a producer must watch);
- for d > 2 a ranking region is the intersection of up to ``n - 1``
  halfspaces, most of them redundant; :func:`tight_constraints` removes
  the redundant ones with an LP per constraint, leaving the facets of
  the region — each facet is an ordering exchange of one adjacent pair;
- :func:`chebyshev_direction` finds the deepest interior point (the
  max-margin scoring function), a natural "most robust representative"
  for a published ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.twod import verify_stability_2d
from repro.errors import InfeasibleRegionError
from repro.geometry.dual import dominates, exchange_angle_2d
from repro.geometry.halfspace import ConvexCone

__all__ = [
    "BoundaryPair",
    "boundary_pairs_2d",
    "tight_constraints",
    "facet_pairs_md",
    "chebyshev_direction",
]


@dataclass(frozen=True)
class BoundaryPair:
    """An adjacent item pair whose ordering exchange bounds a region.

    Attributes
    ----------
    higher, lower:
        Item identifiers: ``higher`` is ranked above ``lower`` inside the
        region and they swap on the boundary.
    angle:
        The 2D exchange angle, or ``nan`` for d > 2 facets.
    """

    higher: int
    lower: int
    angle: float = float("nan")


def boundary_pairs_2d(
    dataset: Dataset,
    ranking: Ranking,
    *,
    region: RegionOfInterest | None = None,
) -> tuple[BoundaryPair | None, BoundaryPair | None]:
    """The two ordering exchanges clipping a 2D ranking region.

    Returns ``(lower_boundary, upper_boundary)``; an entry is ``None``
    when the region is clipped by the region of interest itself (no
    exchange binds on that side).
    """
    result = verify_stability_2d(dataset, ranking, region=region)
    roi = region if region is not None else FullSpace(2)
    lo_bound, hi_bound = roi.angle_interval()
    values = dataset.values
    lower = upper = None
    for i in range(len(ranking) - 1):
        t_idx, u_idx = ranking[i], ranking[i + 1]
        t, u = values[t_idx], values[u_idx]
        if dominates(t, u) or np.allclose(t, u):
            continue
        theta = exchange_angle_2d(t, u)
        if abs(theta - result.region.lo) < 1e-12 and result.region.lo > lo_bound:
            lower = BoundaryPair(t_idx, u_idx, theta)
        if abs(theta - result.region.hi) < 1e-12 and result.region.hi < hi_bound:
            upper = BoundaryPair(t_idx, u_idx, theta)
    return lower, upper


def tight_constraints(cone: ConvexCone, *, nonnegative: bool = True) -> list[int]:
    """Indices of the non-redundant halfspaces of a cone (its facets).

    A halfspace ``h`` is redundant when the cone without it still implies
    it; testing takes one LP per halfspace: maximise the violation of
    ``h`` subject to all the others — a positive optimum certifies that
    ``h`` genuinely cuts the region.

    Returns the indices (into ``cone.halfspaces``) of the tight ones.
    """
    halfspaces = list(cone.halfspaces)
    tight: list[int] = []
    for idx, candidate in enumerate(halfspaces):
        others = [h for j, h in enumerate(halfspaces) if j != idx]
        rows = [h.oriented_normal for h in others]
        if nonnegative:
            rows.extend(np.eye(cone.dim))
        a = np.stack(rows) if rows else np.empty((0, cone.dim))
        # maximise  -(candidate . x)  s.t.  others hold, |x| <= 1.
        c = candidate.oriented_normal
        a_ub = -a if a.shape[0] else np.empty((0, cone.dim))
        b_ub = np.zeros(a_ub.shape[0])
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(-1.0, 1.0)] * cone.dim,
            method="highs",
        )
        if res.success and res.fun is not None and res.fun < -1e-9:
            tight.append(idx)
    return tight


def facet_pairs_md(
    dataset: Dataset,
    ranking: Ranking,
) -> list[BoundaryPair]:
    """The adjacent pairs whose exchanges are facets of an MD region.

    Builds the ranking region (Algorithm 4) and keeps the constraints
    that :func:`tight_constraints` certifies as facets.  These are the
    pairs whose order is actually at risk under weight perturbation; all
    other adjacent pairs are protected by transitivity.
    """
    from repro.core.md import ranking_region_md

    values = dataset.values
    # Rebuild the constraint list in step with ranking_region_md so facet
    # indices map back to pairs.
    pairs: list[tuple[int, int]] = []
    for i in range(len(ranking) - 1):
        t_idx, u_idx = ranking[i], ranking[i + 1]
        t, u = values[t_idx], values[u_idx]
        if dominates(t, u) or np.allclose(t, u):
            continue
        pairs.append((t_idx, u_idx))
    cone = ranking_region_md(dataset, ranking)
    assert len(cone) == len(pairs)
    return [
        BoundaryPair(pairs[idx][0], pairs[idx][1])
        for idx in tight_constraints(cone)
    ]


def chebyshev_direction(cone: ConvexCone, *, nonnegative: bool = True) -> np.ndarray:
    """The deepest interior direction of a cone (max-margin function).

    Solves ``max s : A x >= s ||a_i||, ||x||_inf <= 1`` — the Chebyshev
    centre of the cone's unit box section, normalised to a unit vector.
    For a ranking region this is the single scoring function whose
    ranking survives the largest weight perturbation in every constraint
    direction; a natural choice for a producer who must publish one
    weight vector.

    Raises
    ------
    InfeasibleRegionError
        If the cone has empty interior.
    """
    rows = [h.oriented_normal for h in cone.halfspaces]
    if nonnegative:
        rows.extend(np.eye(cone.dim))
    if not rows:
        return np.full(cone.dim, 1.0 / np.sqrt(cone.dim))
    a = np.stack(rows)
    norms = np.linalg.norm(a, axis=1, keepdims=True)
    norms = np.where(norms > 0, norms, 1.0)
    m = a.shape[0]
    c = np.zeros(cone.dim + 1)
    c[-1] = -1.0
    a_ub = np.hstack([-a / norms, np.ones((m, 1))])
    b_ub = np.zeros(m)
    bounds = [(-1.0, 1.0)] * cone.dim + [(None, None)]
    if nonnegative:
        bounds = [(0.0, 1.0)] * cone.dim + [(None, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success or res.x is None or res.x[-1] <= 1e-12:
        raise InfeasibleRegionError("cone has empty interior")
    x = res.x[: cone.dim]
    return x / np.linalg.norm(x)
