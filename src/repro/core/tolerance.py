"""Similarity-tolerant stability (the paper's first future-work item).

Section 8: "Our current definition of stability considers two rankings to
be different if they differ in one pair of items.  An alternative is to
allow minor changes in the ranking."  This module implements that
alternative: the *tolerant stability* of a ranking ``r`` is the fraction
of the region of interest whose induced ranking is within a Kendall-tau
distance budget of ``r`` (optionally restricted to the top-k prefix).

Formally, for tolerance ``tau``:

    S_tau(r) = vol({f in U* : K(∇_f(D), r) <= tau}) / vol(U*)

With ``tau = 0`` this reduces exactly to Definition 2.  The set of
functions within tolerance is a union of ranking regions, so unlike the
plain stability it is generally *not* convex; the Monte-Carlo estimator
remains unbiased regardless.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.ranking import Ranking, rank_items
from repro.core.region import FullSpace, RegionOfInterest
from repro.core.stability import StabilityResult
from repro.errors import InvalidRankingError
from repro.sampling.montecarlo import confidence_error

__all__ = ["kendall_tau_within", "tolerant_stability"]


def kendall_tau_within(
    order_a: np.ndarray, order_b: np.ndarray, tau: int
) -> bool:
    """Is the Kendall-tau distance between two permutations at most ``tau``?

    Counts discordant pairs with a merge-sort inversion count that bails
    out as soon as the running count exceeds ``tau`` — the common case in
    tolerant-stability estimation is a fast reject, so the early exit
    matters more than asymptotics.
    """
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    position = np.empty(len(order_b), dtype=np.intp)
    position[np.asarray(order_b, dtype=np.intp)] = np.arange(len(order_b))
    mapped = position[np.asarray(order_a, dtype=np.intp)]

    total = 0
    chunk = mapped.tolist()

    def merge_count(arr):
        nonlocal total
        if len(arr) <= 1 or total > tau:
            return arr
        mid = len(arr) // 2
        left = merge_count(arr[:mid])
        right = merge_count(arr[mid:])
        if total > tau:
            return arr
        merged = []
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                total += len(left) - i
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged

    merge_count(chunk)
    return total <= tau


def tolerant_stability(
    dataset: Dataset,
    ranking: Ranking,
    *,
    tau: int,
    region: RegionOfInterest | None = None,
    k: int | None = None,
    n_samples: int = 5_000,
    rng: np.random.Generator | None = None,
    confidence: float = 0.95,
) -> StabilityResult:
    """Monte-Carlo estimate of the tolerant stability ``S_tau(r)``.

    Parameters
    ----------
    dataset, ranking:
        The database and the reference ranking.  ``ranking`` must be
        complete, or a prefix of length >= ``k`` when ``k`` is given.
    tau:
        Kendall-tau budget: sampled rankings within ``tau`` discordant
        pairs of the reference count as "the same".  ``tau = 0`` recovers
        Definition 2's stability.
    region:
        Region of interest; defaults to the full function space.
    k:
        When given, compare only ranked top-k prefixes: a sampled
        function agrees if its top-k prefix (a) selects the same k items
        and (b) orders them within ``tau`` discordant pairs.
    n_samples, rng, confidence:
        Monte-Carlo controls.

    Returns
    -------
    StabilityResult
        With ``region=None`` (the tolerant region is a non-convex union
        of cells) and the usual confidence error.
    """
    roi = region if region is not None else FullSpace(dataset.n_attributes)
    generator = rng if rng is not None else np.random.default_rng()
    if k is not None:
        if k < 1 or k > dataset.n_items:
            raise InvalidRankingError(f"k must be in [1, {dataset.n_items}]")
        if len(ranking) < k:
            raise InvalidRankingError(f"reference ranking shorter than k={k}")
        reference = np.asarray(ranking.order[:k], dtype=np.intp)
    else:
        if not ranking.is_complete or ranking.n_items != dataset.n_items:
            raise InvalidRankingError(
                "ranking must be complete (or pass k= for prefix comparison)"
            )
        reference = np.asarray(ranking.order, dtype=np.intp)

    values = dataset.values
    weights = roi.sample(n_samples, generator)
    hits = 0
    reference_set = frozenset(int(i) for i in reference)
    # Relabel so the reference is the identity permutation; then the
    # sampled prefix maps through the same relabelling.
    relabel = {int(item): idx for idx, item in enumerate(reference)}
    identity = np.arange(len(reference), dtype=np.intp)
    for w in weights:
        sampled = rank_items(values, w, k=k)
        order = sampled.order if k is None else sampled.order[:k]
        if k is not None and frozenset(order) != reference_set:
            continue
        mapped = np.asarray([relabel[int(i)] for i in order], dtype=np.intp)
        if kendall_tau_within(identity, mapped, tau):
            hits += 1
    stability = hits / n_samples
    return StabilityResult(
        ranking=ranking,
        stability=stability,
        confidence_error=confidence_error(stability, n_samples, confidence=confidence),
        sample_count=hits,
    )
