"""The data model of section 2.1.1: items with scalar scoring attributes.

A :class:`Dataset` is a fixed table of ``n`` items over ``d`` scoring
attributes.  The paper assumes (w.l.o.g.) that attributes have been
"appropriately transformed: normalized to non-negative values between 0
and 1 ... and adjusted so that larger values are preferred"; the
constructors here provide those transformations explicitly:

- :meth:`Dataset.normalized` — min-max scaling with per-attribute
  preference direction (the Blue Nile treatment of section 6.1, where
  ``Price`` is lower-is-better);
- :meth:`Dataset.log_transformed` — the CSMetrics preprocessing that
  turns the multiplicative score ``M^alpha * P^(1-alpha)`` into a linear
  one over ``(log M, log P)``;
- :meth:`Dataset.with_derived_attribute` — the section 2.1.1 trick for
  non-linear scoring functions (e.g. adding ``x3 = x1^2`` so that
  ``x1 + x2 + 0.5 x1^2`` becomes linear).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import InvalidDatasetError

__all__ = ["Dataset"]


class Dataset:
    """An immutable ``(n, d)`` table of scoring attributes.

    Parameters
    ----------
    values:
        Array-like of shape ``(n, d)``; finite floats.
    item_labels:
        Optional human-readable names, one per item (e.g. institution or
        team names).  Defaults to ``"item-<i>"``.
    attribute_names:
        Optional names, one per attribute.  Defaults to ``"x<j+1>"``
        matching the paper's ``x1, x2, ...`` convention.
    """

    def __init__(
        self,
        values: np.ndarray,
        *,
        item_labels: Sequence[str] | None = None,
        attribute_names: Sequence[str] | None = None,
    ):
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 2:
            raise InvalidDatasetError(f"values must be 2-D (n, d), got shape {arr.shape}")
        n, d = arr.shape
        if n < 1:
            raise InvalidDatasetError("dataset must contain at least one item")
        if d < 2:
            raise InvalidDatasetError("dataset must have at least two scoring attributes")
        if not np.all(np.isfinite(arr)):
            raise InvalidDatasetError("attribute values must be finite")
        self._values = arr.copy()
        self._values.setflags(write=False)
        if item_labels is not None:
            if len(item_labels) != n:
                raise InvalidDatasetError(
                    f"{len(item_labels)} labels for {n} items"
                )
            self._item_labels = tuple(str(s) for s in item_labels)
        else:
            self._item_labels = tuple(f"item-{i}" for i in range(n))
        if attribute_names is not None:
            if len(attribute_names) != d:
                raise InvalidDatasetError(
                    f"{len(attribute_names)} attribute names for {d} attributes"
                )
            self._attribute_names = tuple(str(s) for s in attribute_names)
        else:
            self._attribute_names = tuple(f"x{j + 1}" for j in range(d))

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only ``(n, d)`` attribute matrix."""
        return self._values

    @property
    def n_items(self) -> int:
        return self._values.shape[0]

    @property
    def n_attributes(self) -> int:
        return self._values.shape[1]

    @property
    def item_labels(self) -> tuple[str, ...]:
        return self._item_labels

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._attribute_names

    def __len__(self) -> int:
        return self.n_items

    def __repr__(self) -> str:
        return f"Dataset(n_items={self.n_items}, n_attributes={self.n_attributes})"

    def item(self, index: int) -> np.ndarray:
        """Attribute vector of one item."""
        return self._values[index]

    def label_of(self, index: int) -> str:
        return self._item_labels[index]

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A new dataset restricted to the given item indices (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Dataset(
            self._values[idx],
            item_labels=[self._item_labels[i] for i in idx],
            attribute_names=self._attribute_names,
        )

    def project(self, attributes: Sequence[int]) -> "Dataset":
        """A new dataset keeping only the given attribute columns.

        The paper's evaluation varies ``d`` by projecting "the first k
        attributes" of Blue Nile (section 6.3); this is that operation.
        """
        cols = list(attributes)
        if len(cols) < 2:
            raise InvalidDatasetError("projection must keep at least two attributes")
        return Dataset(
            self._values[:, cols],
            item_labels=self._item_labels,
            attribute_names=[self._attribute_names[j] for j in cols],
        )

    # ------------------------------------------------------------------
    # Transformations (section 2.1.1 preprocessing)
    # ------------------------------------------------------------------
    def normalized(self, *, higher_is_better: Sequence[bool] | None = None) -> "Dataset":
        """Min-max normalise every attribute into ``[0, 1]``.

        ``higher_is_better[j] = False`` flips attribute ``j`` with
        ``(max - v) / (max - min)`` so that larger normalised values are
        always preferred — the section 6.1 treatment of Blue Nile's
        ``Price``.  Constant attributes map to 0.5 (any constant works;
        they cannot affect comparisons between items).
        """
        if higher_is_better is None:
            higher = np.ones(self.n_attributes, dtype=bool)
        else:
            if len(higher_is_better) != self.n_attributes:
                raise InvalidDatasetError(
                    "higher_is_better must give one flag per attribute"
                )
            higher = np.asarray(list(higher_is_better), dtype=bool)
        lo = self._values.min(axis=0)
        hi = self._values.max(axis=0)
        span = hi - lo
        out = np.empty_like(self._values)
        for j in range(self.n_attributes):
            if span[j] <= 0.0:
                out[:, j] = 0.5
            elif higher[j]:
                out[:, j] = (self._values[:, j] - lo[j]) / span[j]
            else:
                out[:, j] = (hi[j] - self._values[:, j]) / span[j]
        return Dataset(
            out, item_labels=self._item_labels, attribute_names=self._attribute_names
        )

    def standardized(self) -> "Dataset":
        """Shift/scale each attribute to mean 0, variance 1, then min-max.

        Section 2.1.1 mentions attributes "standardized to have equivalent
        variance"; because weights must stay non-negative the standardised
        values are min-max rescaled into ``[0, 1]`` afterwards.
        """
        mu = self._values.mean(axis=0)
        sigma = self._values.std(axis=0)
        sigma = np.where(sigma > 0, sigma, 1.0)
        z = (self._values - mu) / sigma
        return Dataset(
            z, item_labels=self._item_labels, attribute_names=self._attribute_names
        ).normalized()

    def log_transformed(self, *, offset: float = 0.0) -> "Dataset":
        """Apply ``log(v + offset)`` elementwise (CSMetrics preprocessing).

        Section 6.1: the CSMetrics score ``M^alpha P^(1-alpha)`` becomes
        linear under ``x1 = log M, x2 = log P``.  All shifted values must
        be strictly positive.
        """
        shifted = self._values + offset
        if np.any(shifted <= 0.0):
            raise InvalidDatasetError(
                "log transform requires strictly positive values (adjust offset)"
            )
        return Dataset(
            np.log(shifted),
            item_labels=self._item_labels,
            attribute_names=tuple(f"log_{a}" for a in self._attribute_names),
        )

    def with_derived_attribute(
        self, func: Callable[[np.ndarray], np.ndarray], name: str | None = None
    ) -> "Dataset":
        """Append a derived column computed from the existing attributes.

        Implements the section 2.1.1 device for non-linear scoring: e.g.
        ``ds.with_derived_attribute(lambda v: v[:, 0] ** 2, name="x1_sq")``
        makes ``w1*x1 + w2*x2 + w3*x1^2`` expressible as a linear function.
        """
        col = np.asarray(func(self._values), dtype=np.float64).reshape(-1)
        if col.shape[0] != self.n_items:
            raise InvalidDatasetError(
                "derived attribute must produce one value per item"
            )
        new_name = name if name is not None else f"x{self.n_attributes + 1}"
        return Dataset(
            np.column_stack([self._values, col]),
            item_labels=self._item_labels,
            attribute_names=[*self._attribute_names, new_name],
        )
