"""Regions of interest ``U*`` (section 2.2.2).

The producer constrains acceptable scoring functions in one of two ways:

- a **vector and angle distance** — a hypercone around a reference ray
  (equivalently a minimum cosine similarity), modelled by :class:`Cone`;
- a **set of constraints** — a convex region given by homogeneous linear
  inequalities like ``w2 <= w1``, modelled by :class:`ConstrainedRegion`.

:class:`FullSpace` is the degenerate ``U* = U`` case.  All three expose a
uniform interface: membership testing, uniform sampling (backed by
section 5's samplers), a reference ray, and — in two dimensions — the
angle interval the exact sweep algorithms need.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InfeasibleRegionError
from repro.geometry.angles import as_unit_vector, cosine_to_angle, validate_weights
from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.sampling.cap import CapSampler
from repro.sampling.rejection import RejectionSampler
from repro.sampling.uniform import sample_orthant

__all__ = ["RegionOfInterest", "FullSpace", "Cone", "ConstrainedRegion"]

_TWO_D_EPS = 1e-12


class RegionOfInterest(ABC):
    """Common interface of the three kinds of ``U*``."""

    @property
    @abstractmethod
    def dim(self) -> int:
        """Number of scoring attributes ``d``."""

    @abstractmethod
    def contains(self, weights: np.ndarray) -> bool:
        """Is the ray of ``weights`` inside ``U*`` (and the orthant)?"""

    @abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` uniform unit functions from ``U*`` (section 5)."""

    @abstractmethod
    def reference_ray(self) -> np.ndarray:
        """A canonical interior function, used as the default weights."""

    @abstractmethod
    def angle_interval(self) -> tuple[float, float]:
        """The 2D interval ``[U*[1], U*[2]]`` of angles from the x1 axis.

        Only defined for ``dim == 2``; the exact sweep algorithms of
        section 3 operate on this interval.
        """

    def contains_all(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over an ``(m, d)`` matrix."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.fromiter(
            (self.contains(p) for p in pts), dtype=bool, count=pts.shape[0]
        )

    def _require_2d(self) -> None:
        if self.dim != 2:
            raise ValueError(
                f"angle_interval() requires a 2-attribute region, got d={self.dim}"
            )


def _ray_angle_from_x1(weights: np.ndarray) -> float:
    """Angle of a 2D ray measured from the x1 axis (paper's 2D convention)."""
    w = np.asarray(weights, dtype=np.float64)
    return math.atan2(w[1], w[0])


class FullSpace(RegionOfInterest):
    """``U* = U``: every non-negative scoring function is acceptable."""

    def __init__(self, dim: int):
        if dim < 2:
            raise ValueError(f"dimension must be >= 2, got {dim}")
        self._dim = int(dim)

    @property
    def dim(self) -> int:
        return self._dim

    def contains(self, weights: np.ndarray) -> bool:
        w = np.asarray(weights, dtype=np.float64)
        return bool(
            w.shape == (self._dim,)
            and np.all(np.isfinite(w))
            and np.all(w >= 0)
            and np.any(w > 0)
        )

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return sample_orthant(self._dim, size, rng)

    def reference_ray(self) -> np.ndarray:
        return np.full(self._dim, 1.0 / math.sqrt(self._dim))

    def angle_interval(self) -> tuple[float, float]:
        self._require_2d()
        return 0.0, math.pi / 2

    def __repr__(self) -> str:
        return f"FullSpace(dim={self._dim})"


class Cone(RegionOfInterest):
    """Functions within angle ``theta`` of a reference ray.

    Parameters
    ----------
    ray:
        Reference weight vector (the cone axis).
    theta:
        Maximum angular distance, in ``(0, pi/2]``.  Use
        :meth:`from_cosine` when the tolerance is given as a cosine
        similarity (the paper quotes both:
        "0.998 cosine similarity (theta = pi/50)").
    method:
        Inverse-CDF backend for the cap sampler, ``"exact"`` or
        ``"riemann"``.
    """

    def __init__(self, ray: np.ndarray, theta: float, *, method: str = "exact"):
        self._ray = validate_weights(ray)
        if not 0.0 < theta <= math.pi / 2 + 1e-12:
            raise ValueError(f"theta must be in (0, pi/2], got {theta}")
        self._theta = float(theta)
        self._unit = as_unit_vector(self._ray)
        self._sampler = CapSampler(self._unit, self._theta, method=method)
        self._needs_orthant_check = self._cap_may_leave_orthant()

    @classmethod
    def from_cosine(cls, ray: np.ndarray, cosine: float, **kwargs) -> "Cone":
        """Build from a minimum cosine similarity instead of an angle."""
        return cls(ray, cosine_to_angle(cosine), **kwargs)

    def _cap_may_leave_orthant(self) -> bool:
        """Conservative test: could the cap poke outside ``w >= 0``?

        The cap stays inside the orthant iff the axis keeps angular margin
        ``theta`` from every bounding hyperplane ``w_j = 0``; the margin
        to hyperplane ``j`` is ``arcsin(unit[j])``.
        """
        margins = np.arcsin(np.clip(self._unit, -1.0, 1.0))
        return bool(np.any(margins < self._theta - 1e-12))

    @property
    def dim(self) -> int:
        return self._ray.shape[0]

    @property
    def ray(self) -> np.ndarray:
        return self._ray

    @property
    def theta(self) -> float:
        return self._theta

    def contains(self, weights: np.ndarray) -> bool:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.dim,) or not np.all(np.isfinite(w)):
            return False
        if np.any(w < 0) or not np.any(w > 0):
            return False
        cosine = float(np.dot(as_unit_vector(w), self._unit))
        return cosine >= math.cos(self._theta) - 1e-12

    def contains_all(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        norms = np.linalg.norm(pts, axis=1)
        ok = norms > 0
        cosines = np.zeros(pts.shape[0])
        cosines[ok] = (pts[ok] @ self._unit) / norms[ok]
        inside = cosines >= math.cos(self._theta) - 1e-12
        nonneg = np.all(pts >= 0.0, axis=1)
        return inside & nonneg & ok

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if not self._needs_orthant_check:
            return self._sampler.sample(size, rng)
        # Cap overlaps the orthant boundary: keep only non-negative draws.
        out: list[np.ndarray] = []
        remaining = size
        attempts = 0
        while remaining > 0:
            attempts += 1
            if attempts > 10_000:
                raise InfeasibleRegionError(
                    "cone has negligible intersection with the orthant"
                )
            batch = self._sampler.sample(max(2 * remaining, 32), rng)
            good = batch[np.all(batch >= 0.0, axis=1)]
            if good.shape[0] > 0:
                out.append(good[:remaining])
                remaining -= min(good.shape[0], remaining)
        return np.concatenate(out, axis=0)

    def reference_ray(self) -> np.ndarray:
        return self._unit

    def angle_interval(self) -> tuple[float, float]:
        self._require_2d()
        centre = _ray_angle_from_x1(self._ray)
        lo = max(0.0, centre - self._theta)
        hi = min(math.pi / 2, centre + self._theta)
        if hi - lo <= _TWO_D_EPS:
            raise InfeasibleRegionError("cone does not intersect the orthant")
        return lo, hi

    def __repr__(self) -> str:
        # Full precision on purpose: the service layer keys caches,
        # snapshot identity checks, and state filenames on this repr,
        # so two cones that sample differently must never repr alike
        # (Python float repr is shortest-roundtrip, i.e. exact).
        return f"Cone(ray={self._ray.tolist()}, theta={self._theta!r})"


class ConstrainedRegion(RegionOfInterest):
    """A convex region given by homogeneous linear constraints on weights.

    Each constraint is an inequality ``a . w >= 0`` expressed as the
    coefficient vector ``a``; e.g. "weigh ``x2`` no more than ``x1``"
    (section 2.2.2) is ``a = (1, -1, 0, ...)``.

    Sampling uses acceptance-rejection from the orthant (section 5.2); if
    the empirical acceptance rate turns out poor, a bounding cap derived
    from accepted samples is installed automatically to sharpen proposals.
    """

    def __init__(self, constraints: np.ndarray, *, dim: int | None = None):
        arr = np.atleast_2d(np.asarray(constraints, dtype=np.float64))
        if arr.size == 0:
            if dim is None:
                raise ValueError("dim required when there are no constraints")
            arr = arr.reshape(0, dim)
        if dim is not None and arr.shape[1] != dim:
            raise ValueError(f"constraints have {arr.shape[1]} columns, dim={dim}")
        self._constraints = arr
        halfspaces = [Halfspace(tuple(row), +1) for row in arr]
        self._cone = ConvexCone(halfspaces, dim=arr.shape[1])
        if not self._cone.is_feasible():
            raise InfeasibleRegionError(
                "the constraint set admits no non-negative scoring function"
            )
        self._sampler = RejectionSampler(self._cone)

    @property
    def dim(self) -> int:
        return self._constraints.shape[1]

    @property
    def cone(self) -> ConvexCone:
        return self._cone

    @property
    def constraints(self) -> np.ndarray:
        return self._constraints

    def contains(self, weights: np.ndarray) -> bool:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.dim,) or not np.all(np.isfinite(w)):
            return False
        if np.any(w < 0) or not np.any(w > 0):
            return False
        if self._constraints.shape[0] == 0:
            return True
        return bool(np.all(self._constraints @ w >= -1e-12))

    def contains_all(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        nonneg = np.all(pts >= 0.0, axis=1) & np.any(pts > 0.0, axis=1)
        if self._constraints.shape[0] == 0:
            return nonneg
        sat = np.all(pts @ self._constraints.T >= -1e-12, axis=1)
        return nonneg & sat

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self._sampler.sample(size, rng)

    def reference_ray(self) -> np.ndarray:
        return self._cone.interior_point()

    def angle_interval(self) -> tuple[float, float]:
        """Intersect the per-constraint angle intervals (2D only).

        In 2D each homogeneous constraint ``a1 w1 + a2 w2 >= 0`` carves an
        angular interval out of ``[0, pi/2]``; the region's interval is
        their intersection.
        """
        self._require_2d()
        lo, hi = 0.0, math.pi / 2
        for a1, a2 in self._constraints:
            if a1 >= 0 and a2 >= 0:
                continue  # satisfied on the whole quadrant
            if a1 < 0 and a2 < 0:
                raise InfeasibleRegionError(
                    "constraint excludes the whole non-negative quadrant"
                )
            # Boundary angle where a1 cos + a2 sin = 0  =>  tan t = -a1/a2.
            boundary = math.atan2(-a1, a2) if a2 != 0 else math.pi / 2
            if a2 > 0:  # constraint holds for t >= boundary
                lo = max(lo, boundary)
            else:  # a2 < 0, a1 > 0: holds for t <= boundary = atan(a1/-a2)
                boundary = math.atan2(a1, -a2)
                hi = min(hi, boundary)
        if hi - lo <= _TWO_D_EPS:
            raise InfeasibleRegionError("constraints leave an empty angle interval")
        return lo, hi

    def __repr__(self) -> str:
        # The constraint matrix is the region's identity — eliding it
        # would let the service layer's repr-keyed caches and snapshot
        # guards conflate regions that sample differently.
        return f"ConstrainedRegion(constraints={self._constraints.tolist()})"
