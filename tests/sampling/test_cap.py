"""Unit tests for the hyperspherical-cap sampler (Algorithms 10-11)."""

import math

import numpy as np
import pytest

from repro.geometry.angles import as_unit_vector
from repro.geometry.spherical import cap_cdf
from repro.sampling.cap import CapSampler, sample_cap


def _angles_to_axis(points, ray):
    u = as_unit_vector(ray)
    cosines = np.clip(points @ u, -1.0, 1.0)
    return np.arccos(cosines)


class TestCapSamplerBasics:
    def test_shape_and_norms(self, rng):
        pts = sample_cap(np.array([1.0, 1.0, 1.0]), math.pi / 10, 500, rng)
        assert pts.shape == (500, 3)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_zero_size(self, rng):
        assert sample_cap(np.ones(3), 0.2, 0, rng).shape == (0, 3)

    def test_all_within_angle(self, rng):
        ray = np.array([0.3, 0.5, 0.8])
        theta = math.pi / 12
        pts = sample_cap(ray, theta, 2000, rng)
        assert np.all(_angles_to_axis(pts, ray) <= theta + 1e-9)

    def test_2d_cap(self, rng):
        ray = np.array([1.0, 1.0])
        theta = math.pi / 8
        pts = sample_cap(ray, theta, 2000, rng)
        assert np.all(_angles_to_axis(pts, ray) <= theta + 1e-9)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            CapSampler(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            CapSampler(np.ones(3), 2.0)

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError):
            CapSampler(np.ones(3), 0.3, method="fancy")

    def test_rejects_negative_size(self, rng):
        with pytest.raises(ValueError):
            CapSampler(np.ones(3), 0.3).sample(-1, rng)

    def test_rejects_dim_one(self):
        with pytest.raises(Exception):
            CapSampler(np.ones(1), 0.3)


class TestColatitudeDistribution:
    @pytest.mark.parametrize("dim", [2, 3, 4, 5])
    @pytest.mark.parametrize("method", ["exact", "riemann"])
    def test_colatitude_follows_cap_cdf(self, dim, method, rng):
        # KS-style check: empirical CDF of the colatitude must match
        # Equation 14's F within sampling noise.
        ray = np.full(dim, 1.0)
        theta = 0.5
        pts = sample_cap(ray, theta, 8000, rng, method=method)
        angles = np.sort(_angles_to_axis(pts, ray))
        empirical = (np.arange(len(angles)) + 0.5) / len(angles)
        theoretical = cap_cdf(np.clip(angles, 0, theta), theta, dim)
        assert np.max(np.abs(empirical - theoretical)) < 0.03

    def test_riemann_and_exact_agree(self, rng_factory):
        ray = np.array([0.2, 0.5, 0.9, 0.3])
        theta = math.pi / 20
        a = sample_cap(ray, theta, 6000, rng_factory(1), method="exact")
        b = sample_cap(ray, theta, 6000, rng_factory(2), method="riemann")
        qa = np.quantile(_angles_to_axis(a, ray), [0.25, 0.5, 0.75])
        qb = np.quantile(_angles_to_axis(b, ray), [0.25, 0.5, 0.75])
        assert np.allclose(qa, qb, atol=5e-3)


class TestRotationalSymmetry:
    def test_azimuthal_uniformity_3d(self, rng):
        # Around the cap axis the distribution is rotationally symmetric:
        # for a cap centred on the x3 axis, the azimuth of the first two
        # coordinates is uniform.
        pts = sample_cap(np.array([0.0, 0.0, 1.0]), 0.4, 20_000, rng)
        azimuth = np.arctan2(pts[:, 1], pts[:, 0])
        hist, _ = np.histogram(azimuth, bins=12, range=(-np.pi, np.pi))
        assert hist.min() > 0.85 * hist.mean()

    def test_paper_figure6_configuration(self, rng):
        # Figure 6's green points: cap around the ray with polar angles
        # (pi/3, pi/3), theta = pi/20 — all samples stay inside the cap.
        from repro.geometry.angles import angles_to_weights

        ray = angles_to_weights(np.array([math.pi / 3, math.pi / 3]))
        pts = sample_cap(ray, math.pi / 20, 3000, rng)
        assert np.all(_angles_to_axis(pts, ray) <= math.pi / 20 + 1e-9)

    def test_narrow_cap_concentrates(self, rng):
        ray = np.array([1.0, 2.0, 2.0])
        pts = sample_cap(ray, 0.01, 500, rng)
        u = as_unit_vector(ray)
        assert np.all(np.linalg.norm(pts - u, axis=1) < 0.011)


class TestSampleOne:
    def test_single_draw(self, rng):
        sampler = CapSampler(np.ones(3), 0.2)
        p = sampler.sample_one(rng)
        assert p.shape == (3,)
        assert math.isclose(float(np.linalg.norm(p)), 1.0, rel_tol=1e-9)
