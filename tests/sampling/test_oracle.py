"""Unit tests for the stability oracle (Algorithm 12)."""

import numpy as np
import pytest

from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.sampling.oracle import StabilityOracle
from repro.sampling.uniform import sample_orthant


class TestStabilityOracle:
    def test_whole_space_has_stability_one(self, rng):
        oracle = StabilityOracle(sample_orthant(3, 1000, rng))
        assert oracle.stability(ConvexCone(dim=3)) == 1.0

    def test_halved_space(self, rng):
        # w1 > w2 covers half the (symmetric) orthant.
        oracle = StabilityOracle(sample_orthant(2, 50_000, rng))
        cone = ConvexCone([Halfspace((1.0, -1.0), +1)])
        assert abs(oracle.stability(cone) - 0.5) < 0.01

    def test_2d_wedge_matches_angle_fraction(self, rng):
        # Angle wedge (pi/8, pi/4) has stability (pi/8)/(pi/2) = 1/4.
        oracle = StabilityOracle(sample_orthant(2, 100_000, rng))
        lo, hi = np.pi / 8, np.pi / 4
        cone = ConvexCone(
            [
                Halfspace((-np.sin(lo), np.cos(lo)), +1),  # angle > lo
                Halfspace((np.sin(hi), -np.cos(hi)), +1),  # angle < hi
            ]
        )
        assert abs(oracle.stability(cone) - 0.25) < 0.01

    def test_complement_sums_to_one(self, rng):
        oracle = StabilityOracle(sample_orthant(3, 20_000, rng))
        h = Halfspace((0.2, -0.6, 0.4), +1)
        plus = ConvexCone([h])
        minus = ConvexCone([h.flipped()])
        total = oracle.stability(plus) + oracle.stability(minus)
        # Boundary samples have probability zero, so the sum is exact.
        assert abs(total - 1.0) < 1e-12

    def test_count_matches_stability(self, rng):
        oracle = StabilityOracle(sample_orthant(3, 5000, rng))
        cone = ConvexCone([Halfspace((1.0, -1.0, 0.0), +1)])
        assert oracle.count(cone) == round(oracle.stability(cone) * 5000)

    def test_stability_with_error(self, rng):
        oracle = StabilityOracle(sample_orthant(2, 10_000, rng))
        cone = ConvexCone([Halfspace((1.0, -1.0), +1)])
        s, e = oracle.stability_with_error(cone)
        assert 0.45 < s < 0.55
        assert 0.0 < e < 0.02

    def test_dim_mismatch_rejected(self, rng):
        oracle = StabilityOracle(sample_orthant(3, 100, rng))
        with pytest.raises(ValueError):
            oracle.stability(ConvexCone(dim=4))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            StabilityOracle(np.empty((0, 3)))
