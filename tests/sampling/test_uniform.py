"""Unit tests for the uniform sphere/orthant samplers (Algorithm 9)."""

import numpy as np
import pytest

from repro.sampling.uniform import sample_angles_naive, sample_orthant, sample_sphere


class TestSampleSphere:
    def test_shape_and_norms(self, rng):
        pts = sample_sphere(4, 500, rng)
        assert pts.shape == (500, 4)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_zero_size(self, rng):
        assert sample_sphere(3, 0, rng).shape == (0, 3)

    def test_rejects_bad_dim(self, rng):
        with pytest.raises(ValueError):
            sample_sphere(0, 10, rng)

    def test_rejects_negative_size(self, rng):
        with pytest.raises(ValueError):
            sample_sphere(3, -1, rng)

    def test_mean_near_zero(self, rng):
        # Uniform on the full sphere: the mean direction vanishes.
        pts = sample_sphere(3, 20_000, rng)
        assert np.all(np.abs(pts.mean(axis=0)) < 0.02)

    def test_deterministic_under_seed(self, rng_factory):
        a = sample_sphere(3, 10, rng_factory(42))
        b = sample_sphere(3, 10, rng_factory(42))
        assert np.array_equal(a, b)


class TestSampleOrthant:
    def test_non_negative_unit_vectors(self, rng):
        pts = sample_orthant(5, 300, rng)
        assert np.all(pts >= 0.0)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_coordinates_exchangeable(self, rng):
        # Folding preserves symmetry: every coordinate has the same mean.
        pts = sample_orthant(3, 50_000, rng)
        means = pts.mean(axis=0)
        assert np.max(means) - np.min(means) < 0.01

    def test_matches_known_coordinate_mean(self, rng):
        # E[|X_i| / ||X||] for d=3 is 1/2 (uniform hemisphere projection).
        pts = sample_orthant(3, 50_000, rng)
        assert np.allclose(pts.mean(axis=0), 0.5, atol=0.01)


class TestNaiveSamplerBias:
    def test_naive_sampler_is_biased_in_3d(self, rng):
        # Figure 3 vs Figure 4: uniform angles concentrate mass near the
        # x3 pole; Algorithm 9 does not.  Compare the mean of the last
        # coordinate — for the uniform sampler it is 0.5, for the naive
        # sampler it is cos-weighted and visibly larger.
        naive = sample_angles_naive(3, 20_000, rng)
        good = sample_orthant(3, 20_000, rng)
        assert naive[:, 2].mean() > good[:, 2].mean() + 0.05

    def test_naive_2d_is_actually_uniform(self, rng):
        # The paper notes angle sampling is fine for d = 2.
        pts = sample_angles_naive(2, 20_000, rng)
        angles = np.arctan2(pts[:, 0], pts[:, 1])
        hist, _ = np.histogram(angles, bins=10, range=(0, np.pi / 2))
        assert hist.min() > 0.8 * hist.max()

    def test_naive_rejects_dim_one(self, rng):
        with pytest.raises(ValueError):
            sample_angles_naive(1, 5, rng)
