"""Tests for the quasi-Monte-Carlo sampler (Halton caps and orthants)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.geometry.spherical import cap_cdf
from repro.sampling.quasi import halton, quasi_cap_points, quasi_orthant_points


class TestHalton:
    def test_shape_and_range(self):
        pts = halton(500, 4)
        assert pts.shape == (500, 4)
        assert pts.min() >= 0.0 and pts.max() < 1.0

    def test_base2_prefix(self):
        # The base-2 van der Corput sequence is 1/2, 1/4, 3/4, 1/8, ...
        pts = halton(4, 1)
        assert pts[:, 0].tolist() == pytest.approx([0.5, 0.25, 0.75, 0.125])

    def test_low_discrepancy_beats_random_in_1d(self):
        # Star discrepancy proxy: max gap between sorted points.
        n = 512
        q = np.sort(halton(n, 1)[:, 0])
        r = np.sort(np.random.default_rng(5).uniform(size=n))
        gap_q = np.diff(np.concatenate([[0.0], q, [1.0]])).max()
        gap_r = np.diff(np.concatenate([[0.0], r, [1.0]])).max()
        assert gap_q < gap_r

    def test_shift_wraps_mod_one(self):
        base = halton(100, 2)
        shifted = halton(100, 2, shift=np.array([0.5, 0.25]))
        assert np.allclose(shifted, (base + np.array([0.5, 0.25])) % 1.0)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            halton(10, 0)
        with pytest.raises(ValueError):
            halton(10, 99)
        with pytest.raises(ValueError):
            halton(10, 2, shift=np.zeros(3))


class TestQuasiCapPoints:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_unit_norm_and_inside_cap(self, d):
        ray = np.arange(1, d + 1, dtype=float)
        theta = 0.15
        pts = quasi_cap_points(ray, theta, 1_000)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-9)
        unit = ray / np.linalg.norm(ray)
        assert np.all(pts @ unit >= math.cos(theta) - 1e-9)

    @pytest.mark.parametrize("d", [3, 4])
    def test_colatitude_matches_analytic_cdf(self, d):
        ray = np.ones(d)
        theta = 0.4
        pts = quasi_cap_points(ray, theta, 4_000)
        unit = ray / np.linalg.norm(ray)
        colat = np.arccos(np.clip(pts @ unit, -1.0, 1.0))
        # KS against the analytic colatitude law of a uniform cap.
        result = stats.kstest(colat, lambda x: cap_cdf(x, theta, d))
        assert result.pvalue > 1e-4 or result.statistic < 0.05

    def test_deterministic_without_rng(self):
        a = quasi_cap_points(np.array([1.0, 2.0, 1.0]), 0.2, 50)
        b = quasi_cap_points(np.array([1.0, 2.0, 1.0]), 0.2, 50)
        assert np.array_equal(a, b)

    def test_shifted_replications_differ(self):
        ray = np.array([1.0, 1.0, 1.0])
        a = quasi_cap_points(ray, 0.2, 50, rng=np.random.default_rng(1))
        b = quasi_cap_points(ray, 0.2, 50, rng=np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_2d_arc_covers_both_sides(self):
        ray = np.array([1.0, 1.0])
        pts = quasi_cap_points(ray, 0.3, 400)
        angles = np.arctan2(pts[:, 1], pts[:, 0])
        centre = math.pi / 4
        assert np.any(angles > centre + 0.05)
        assert np.any(angles < centre - 0.05)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            quasi_cap_points(np.ones(3), 0.0, 10)
        with pytest.raises(ValueError):
            quasi_cap_points(np.ones(3), 2.0, 10)


class TestQuasiOrthantPoints:
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_nonnegative_unit_vectors(self, d):
        pts = quasi_orthant_points(d, 800)
        assert np.all(pts >= 0.0)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-9)

    def test_coordinate_symmetry(self):
        # Uniformity on the orthant implies exchangeable coordinates.
        pts = quasi_orthant_points(3, 6_000)
        means = pts.mean(axis=0)
        assert np.allclose(means, means.mean(), atol=0.02)

    def test_matches_mc_estimate_of_cap_volume(self):
        # Estimate the fraction of the orthant within 0.4 of the
        # diagonal; QMC and MC must agree.
        from repro.sampling.uniform import sample_orthant

        d, theta = 3, 0.4
        axis = np.full(d, 1.0 / math.sqrt(d))
        qmc = quasi_orthant_points(d, 8_000)
        frac_qmc = float(np.mean(qmc @ axis >= math.cos(theta)))
        mc = sample_orthant(d, 40_000, np.random.default_rng(3))
        frac_mc = float(np.mean(mc @ axis >= math.cos(theta)))
        assert frac_qmc == pytest.approx(frac_mc, abs=0.01)


class TestVarianceReduction:
    def test_qmc_stability_estimates_tighter_than_mc(self):
        """The ablation's headline: over replications, randomised-QMC
        estimates of a known cap fraction spread less than MC ones."""
        d, theta = 3, 0.3
        axis = np.full(d, 1.0 / math.sqrt(d))
        inner = 0.12  # measure the sub-cap within this angle
        n = 2_000
        reps = 12
        qmc_estimates = []
        mc_estimates = []
        from repro.sampling.cap import sample_cap

        for rep in range(reps):
            rng_q = np.random.default_rng(1_000 + rep)
            rng_m = np.random.default_rng(2_000 + rep)
            q = quasi_cap_points(axis, theta, n, rng=rng_q)
            m = sample_cap(axis, theta, n, rng_m)
            qmc_estimates.append(float(np.mean(q @ axis >= math.cos(inner))))
            mc_estimates.append(float(np.mean(m @ axis >= math.cos(inner))))
        assert np.std(qmc_estimates) < np.std(mc_estimates)


class TestQuasiStream:
    """One running Halton sequence per operator: chunk-plan invariant,
    snapshot-exact, and honest about which regions it can serve."""

    def _full(self, dim=3):
        from repro.core.region import FullSpace

        return FullSpace(dim)

    def _narrow_cone(self, dim=3):
        # Centred in the orthant interior and narrow: the cap stays
        # inside, so no rejection step is needed and QMC is exact.
        from repro.core.region import Cone

        return Cone(np.ones(dim), 0.1)

    def test_chunked_equals_one_shot(self):
        from repro.sampling.quasi import QuasiStream

        a = QuasiStream.for_region(self._full(), np.random.default_rng(5))
        b = QuasiStream.for_region(self._full(), np.random.default_rng(5))
        chunked = np.vstack([a.sample(7) for _ in range(10)])
        assert np.array_equal(chunked, b.sample(70))

    def test_cone_stream_chunked_equals_one_shot(self):
        from repro.sampling.quasi import QuasiStream

        region = self._narrow_cone()
        a = QuasiStream.for_region(region, np.random.default_rng(5))
        b = QuasiStream.for_region(region, np.random.default_rng(5))
        chunked = np.vstack([a.sample(13) for _ in range(5)])
        assert np.array_equal(chunked, b.sample(65))

    def test_samples_lie_in_region(self):
        from repro.sampling.quasi import QuasiStream

        region = self._narrow_cone()
        stream = QuasiStream.for_region(region, np.random.default_rng(5))
        points = stream.sample(200)
        assert np.all(points >= 0)
        assert np.allclose(np.linalg.norm(points, axis=1), 1.0)

    def test_export_restore_mid_stream(self):
        from repro.sampling.quasi import QuasiStream

        region = self._full()
        stream = QuasiStream.for_region(region, np.random.default_rng(5))
        stream.sample(37)
        state = stream.export_state()
        tail = stream.sample(20)
        restored = QuasiStream.restore(region, state)
        assert restored.index == 38  # 1-based Halton start + 37 drawn
        assert np.array_equal(restored.sample(20), tail)

    def test_distinct_rngs_give_distinct_shifts(self):
        from repro.sampling.quasi import QuasiStream

        a = QuasiStream.for_region(self._full(), np.random.default_rng(1))
        b = QuasiStream.for_region(self._full(), np.random.default_rng(2))
        assert not np.array_equal(a.sample(10), b.sample(10))

    def test_rejection_sampled_cone_refused(self):
        from repro.core.region import Cone
        from repro.sampling.quasi import QuasiStream

        # A wide cone near the orthant boundary needs rejection, which
        # a deterministic sequence cannot replicate.
        wide = Cone(np.array([1.0, 0.02, 0.02]), 1.0)
        assert wide._needs_orthant_check
        with pytest.raises(ValueError, match="rejection"):
            QuasiStream.for_region(wide, np.random.default_rng(0))

    def test_constrained_region_refused(self):
        from repro.core.region import ConstrainedRegion
        from repro.sampling.quasi import QuasiStream

        region = ConstrainedRegion(np.array([[1.0, -1.0, 0.0]]))
        with pytest.raises(ValueError, match="qmc"):
            QuasiStream.for_region(region, np.random.default_rng(0))
