"""Unit tests for Monte-Carlo statistics (Equations 9-11, Theorem 2)."""

import math

import numpy as np
import pytest

from repro.sampling.montecarlo import (
    confidence_error,
    expected_samples_for_discovery,
    expected_samples_for_error,
    z_score,
)


class TestZScore:
    def test_95_percent(self):
        assert math.isclose(z_score(0.95), 1.959964, rel_tol=1e-5)

    def test_99_percent(self):
        assert math.isclose(z_score(0.99), 2.575829, rel_tol=1e-5)

    def test_monotone_in_confidence(self):
        assert z_score(0.99) > z_score(0.95) > z_score(0.90)

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                z_score(bad)


class TestConfidenceError:
    def test_equation_10(self):
        s, n = 0.3, 10_000
        expected = 1.959964 * math.sqrt(s * (1 - s) / n)
        assert math.isclose(confidence_error(s, n), expected, rel_tol=1e-5)

    def test_shrinks_with_samples(self):
        assert confidence_error(0.5, 10_000) < confidence_error(0.5, 100)

    def test_zero_at_degenerate_stability(self):
        assert confidence_error(0.0, 100) == 0.0
        assert confidence_error(1.0, 100) == 0.0

    def test_maximal_at_half(self):
        assert confidence_error(0.5, 100) > confidence_error(0.1, 100)
        assert confidence_error(0.5, 100) > confidence_error(0.9, 100)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            confidence_error(1.5, 100)
        with pytest.raises(ValueError):
            confidence_error(0.5, 0)

    def test_empirical_coverage(self, rng):
        # The 95% interval must cover the true mean ~95% of the time.
        true_p, n, trials = 0.2, 1000, 400
        covered = 0
        for _ in range(trials):
            m = rng.binomial(n, true_p) / n
            e = confidence_error(m, n)
            covered += abs(m - true_p) <= e + 1e-12
        assert covered / trials > 0.90


class TestExpectedSamples:
    def test_equation_11(self):
        s, e = 0.3, 0.01
        z = z_score(0.95)
        expected = math.ceil(s * (1 - s) * (z / e) ** 2)
        assert expected_samples_for_error(s, e) == expected

    def test_consistency_with_confidence_error(self):
        # Drawing the suggested number of samples achieves the error.
        s, target = 0.25, 0.005
        n = expected_samples_for_error(s, target)
        assert confidence_error(s, n) <= target * 1.001

    def test_rejects_bad_error(self):
        with pytest.raises(ValueError):
            expected_samples_for_error(0.3, 0.0)

    def test_theorem_2_mean_variance(self):
        mean, var = expected_samples_for_discovery(0.1)
        assert math.isclose(mean, 10.0)
        assert math.isclose(var, 0.9 / 0.01)

    def test_theorem_2_certain_discovery(self):
        mean, var = expected_samples_for_discovery(1.0)
        assert mean == 1.0 and var == 0.0

    def test_theorem_2_matches_simulation(self, rng):
        s = 0.2
        draws = rng.geometric(s, size=20_000)
        mean, var = expected_samples_for_discovery(s)
        assert abs(draws.mean() - mean) < 0.15
        assert abs(draws.var() - var) / var < 0.1

    def test_theorem_2_rejects_zero(self):
        with pytest.raises(ValueError):
            expected_samples_for_discovery(0.0)
