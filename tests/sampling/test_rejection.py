"""Unit tests for acceptance-rejection sampling (section 5.2)."""

import numpy as np
import pytest

from repro.errors import InfeasibleRegionError
from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.sampling.rejection import RejectionSampler


class TestRejectionSampler:
    def test_samples_satisfy_constraints(self, rng):
        cone = ConvexCone([Halfspace((1.0, -1.0, 0.0), +1)])  # w1 > w2
        sampler = RejectionSampler(cone)
        pts = sampler.sample(500, rng)
        assert pts.shape == (500, 3)
        assert np.all(pts[:, 0] > pts[:, 1])
        assert np.all(pts >= 0.0)

    def test_zero_size(self, rng):
        sampler = RejectionSampler(ConvexCone(dim=3))
        assert sampler.sample(0, rng).shape == (0, 3)

    def test_negative_size_rejected(self, rng):
        sampler = RejectionSampler(ConvexCone(dim=3))
        with pytest.raises(ValueError):
            sampler.sample(-2, rng)

    def test_acceptance_rate_tracked(self, rng):
        cone = ConvexCone([Halfspace((1.0, -1.0), +1)])  # half the quadrant
        sampler = RejectionSampler(cone)
        sampler.sample(2000, rng)
        assert 0.3 < sampler.acceptance_rate < 0.7

    def test_acceptance_rate_before_sampling(self):
        sampler = RejectionSampler(ConvexCone(dim=2))
        assert sampler.acceptance_rate == 1.0

    def test_infeasible_region_raises(self, rng):
        # Contradictory pair: w1 > w2 and w1 < w2.
        cone = ConvexCone(
            [Halfspace((1.0, -1.0), +1), Halfspace((1.0, -1.0), -1)]
        )
        sampler = RejectionSampler(cone, max_attempts_per_sample=200)
        with pytest.raises(InfeasibleRegionError):
            sampler.sample(5, rng)

    def test_uniformity_within_region(self, rng):
        # In 2D the accepted angle is uniform on the surviving interval.
        cone = ConvexCone([Halfspace((1.0, -1.0), +1)])  # angle in (0, pi/4)
        sampler = RejectionSampler(cone)
        pts = sampler.sample(20_000, rng)
        angles = np.arctan2(pts[:, 1], pts[:, 0])
        hist, _ = np.histogram(angles, bins=8, range=(0, np.pi / 4))
        assert hist.min() > 0.85 * hist.mean()

    def test_proposal_cap_speeds_up_narrow_region(self, rng_factory):
        # A narrow wedge around the diagonal: the cap proposal's
        # acceptance rate must beat the orthant proposal's.
        wedge = ConvexCone(
            [
                Halfspace((1.0, -0.95, 0.0), +1),
                Halfspace((-0.95, 1.0, 0.0), +1),
                Halfspace((0.0, 1.0, -0.95), +1),
                Halfspace((-0.95, 0.0, 1.0), +1),
            ]
        )
        plain = RejectionSampler(wedge)
        plain.sample(300, rng_factory(5))
        ray = np.full(3, 1.0)
        capd = RejectionSampler(wedge, proposal_cap=(ray, 0.3))
        capd.sample(300, rng_factory(6))
        assert capd.acceptance_rate > plain.acceptance_rate

    def test_cap_proposals_filtered_by_cone(self, rng):
        cone = ConvexCone([Halfspace((1.0, -1.0, 0.0), +1)])
        sampler = RejectionSampler(cone, proposal_cap=(np.ones(3), 0.5))
        pts = sampler.sample(200, rng)
        assert cone.contains_all(pts).all()
