"""Cross-module integration of the extension toolkits.

Walks one dataset through the full extended workflow — label, trade-off
frontier, exact 2D top-k, representative baselines, JSON archive — and
checks that independently computed quantities agree with each other.
"""

import json

import numpy as np
import pytest

from repro import (
    Dataset,
    GetNextRandomized,
    build_label,
    enumerate_topk_2d,
    most_stable_within,
    stability_similarity_tradeoff,
    verify_stability_2d,
    verify_topk_2d,
    verify_topk_set_stability,
)
from repro.io import dump_json, label_to_dict, tradeoff_to_dicts
from repro.operators import (
    OnionIndex,
    SortedLists,
    no_random_access,
    skyline,
    threshold_algorithm,
    top_k_indices,
)


@pytest.fixture
def catalog(rng) -> Dataset:
    from repro.datasets import csmetrics_dataset

    return csmetrics_dataset(30, rng)


class TestProducerWorkflow:
    def test_label_reference_matches_exact_verification(self, catalog, rng):
        weights = np.array([0.3, 0.7])
        label = build_label(catalog, weights, n_samples=2_000, rng=rng)
        exact = verify_stability_2d(catalog, label.reference_ranking)
        assert label.reference_stability == pytest.approx(exact.stability)

    def test_tradeoff_best_matches_most_stable_within(self, catalog, rng):
        weights = np.array([0.3, 0.7])
        points = stability_similarity_tradeoff(
            catalog, weights, cosines=(0.99,), rng=rng
        )
        direct = most_stable_within(catalog, weights, 0.99)
        assert points[0].best.stability == pytest.approx(direct.stability)
        assert points[0].best.ranking == direct.ranking

    def test_label_top_alternative_is_observable_by_get_next(self, catalog, rng):
        # The most stable alternative on the label must be (close to)
        # what the exact engine reports as the most stable ranking.
        from repro import GetNext2D

        label = build_label(
            catalog, np.array([0.3, 0.7]), n_samples=6_000, rng=rng
        )
        exact_top = GetNext2D(catalog).get_next()
        assert label.alternatives[0].ranking == exact_top.ranking
        assert label.alternatives[0].stability == pytest.approx(
            exact_top.stability, abs=0.02
        )


class TestExactTopkAgainstMonteCarlo:
    def test_exact_equals_estimated_set_stability(self, catalog, rng):
        exact = enumerate_topk_2d(catalog, 5, kind="set")
        top = exact[0]
        estimated = verify_topk_set_stability(
            catalog, top.top_k_set, n_samples=20_000, rng=rng
        )
        assert estimated.stability == pytest.approx(top.stability, abs=0.02)

    def test_verify_and_enumerate_agree(self, catalog):
        exact = enumerate_topk_2d(catalog, 4, kind="ranked")
        top = exact[0]
        verified = verify_topk_2d(catalog, list(top.ranking.order), kind="ranked")
        assert verified.stability == pytest.approx(top.stability)

    def test_randomized_engine_discovers_exact_winner(self, catalog, rng):
        exact = enumerate_topk_2d(catalog, 5, kind="set")
        engine = GetNextRandomized(catalog, kind="topk_set", k=5, rng=rng)
        estimate = engine.get_next(budget=15_000)
        assert estimate.top_k_set == exact[0].top_k_set


class TestTopkEnginesOnRealWorkload:
    def test_all_engines_agree_on_catalog(self, catalog):
        weights = np.array([0.3, 0.7])
        reference = top_k_indices(catalog.values @ weights, 10).tolist()
        lists = SortedLists(catalog.values)
        index = OnionIndex(catalog.values)
        assert list(threshold_algorithm(lists, weights, 10).order) == reference
        assert list(no_random_access(lists, weights, 10).order) == reference
        assert list(index.top_k(weights, 10)[0]) == reference

    def test_most_stable_top1_is_skyline_member(self, catalog):
        # The top-1 under any linear function is on the convex hull,
        # hence on the skyline; the most stable top-1 set inherits this.
        exact = enumerate_topk_2d(catalog, 1, kind="set")
        sky = set(skyline(catalog.values).tolist())
        for result in exact:
            (member,) = result.top_k_set
            assert member in sky


class TestJsonArchive:
    def test_full_report_round_trips(self, catalog, rng, tmp_path):
        weights = np.array([0.3, 0.7])
        label = build_label(catalog, weights, n_samples=1_000, rng=rng)
        points = stability_similarity_tradeoff(
            catalog, weights, cosines=(0.999, 0.99), rng=rng
        )
        path = tmp_path / "report.json"
        dump_json(
            {
                "label": label_to_dict(label),
                "tradeoff": tradeoff_to_dicts(points),
            },
            path,
        )
        loaded = json.loads(path.read_text())
        assert loaded["label"]["reference_stability"] == pytest.approx(
            label.reference_stability
        )
        assert [row["cosine"] for row in loaded["tradeoff"]] == [0.999, 0.99]
