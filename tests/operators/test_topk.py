"""Unit tests for top-k retrieval primitives."""

import numpy as np
import pytest

from repro.operators.topk import top_k_indices, top_k_threshold


class TestTopKIndices:
    def test_matches_full_sort(self, rng):
        for _ in range(20):
            scores = rng.normal(size=100)
            k = int(rng.integers(1, 100))
            expected = np.argsort(-scores, kind="stable")[:k]
            assert np.array_equal(top_k_indices(scores, k), expected)

    def test_tie_boundary_prefers_low_ids(self):
        scores = np.array([0.5, 1.0, 0.5, 0.5, 0.1])
        assert top_k_indices(scores, 2).tolist() == [1, 0]
        assert top_k_indices(scores, 3).tolist() == [1, 0, 2]

    def test_k_equals_n(self, rng):
        scores = rng.normal(size=10)
        assert np.array_equal(
            top_k_indices(scores, 10), np.argsort(-scores, kind="stable")
        )


class TestTopKThreshold:
    def test_matches_sorted(self, rng):
        scores = rng.normal(size=50)
        ordered = np.sort(scores)[::-1]
        for k in (1, 5, 50):
            assert top_k_threshold(scores, k) == ordered[k - 1]

    def test_bounds(self):
        with pytest.raises(ValueError):
            top_k_threshold(np.ones(3), 0)
        with pytest.raises(ValueError):
            top_k_threshold(np.ones(3), 4)

    def test_consistency_with_indices(self, rng):
        scores = rng.normal(size=60)
        k = 7
        chosen = top_k_indices(scores, k)
        thresh = top_k_threshold(scores, k)
        assert scores[chosen].min() == thresh
        others = np.setdiff1d(np.arange(60), chosen)
        assert np.all(scores[others] <= thresh)
