"""Unit and property tests for the ONION convex-hull-layer index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidWeightsError
from repro.operators.onion import OnionIndex, hull_layers
from repro.operators.topk import top_k_indices


class TestHullLayers:
    def test_layers_partition_items(self, rng):
        values = rng.random((120, 3))
        layers = hull_layers(values)
        flat = np.concatenate(layers)
        assert sorted(flat.tolist()) == list(range(120))

    def test_square_with_interior_point(self):
        values = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.5, 0.5]]
        )
        layers = hull_layers(values)
        assert layers[0].tolist() == [0, 1, 2, 3]
        assert layers[1].tolist() == [4]

    def test_layer_count_decreases_with_correlation(self, rng):
        # Clustered data peels into more layers than hull-heavy data.
        shell = rng.normal(size=(200, 3))
        shell /= np.linalg.norm(shell, axis=1, keepdims=True)
        ball = rng.normal(size=(200, 3)) * 0.01
        assert len(hull_layers(shell)) < len(hull_layers(ball))

    def test_small_inputs_are_single_layer(self):
        values = np.array([[0.1, 0.2], [0.3, 0.4]])
        layers = hull_layers(values)
        assert len(layers) == 1
        assert layers[0].tolist() == [0, 1]

    def test_collinear_degenerate_input(self):
        # All points on a line: qhull fails, fallback keeps everything.
        t = np.linspace(0.0, 1.0, 9)
        values = np.stack([t, 2 * t], axis=1)
        layers = hull_layers(values)
        flat = np.concatenate(layers)
        assert sorted(flat.tolist()) == list(range(9))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            hull_layers(np.array([1.0, 2.0]))


class TestOnionIndex:
    @pytest.mark.parametrize("d", [2, 3, 4])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_full_scan(self, d, k, rng_factory):
        rng = rng_factory(31 * d + k)
        values = rng.random((150, d))
        index = OnionIndex(values)
        weights = rng.random(d) + 0.01
        order, _ = index.top_k(weights, k)
        assert list(order) == top_k_indices(values @ weights, k).tolist()

    def test_top1_is_single_layer(self, rng):
        values = rng.random((200, 3))
        index = OnionIndex(values)
        _, touched = index.top_k(np.array([1.0, 1.0, 1.0]), 1)
        assert touched == 1

    def test_touches_at_most_k_layers(self, rng):
        values = rng.random((300, 2))
        index = OnionIndex(values)
        for k in (1, 3, 7):
            _, touched = index.top_k(np.array([0.2, 0.8]), k)
            assert touched <= min(k, index.n_layers)

    def test_layer_sizes_sum_to_n(self, rng):
        index = OnionIndex(rng.random((77, 3)))
        assert int(index.layer_sizes().sum()) == 77

    def test_rank_all_matches_argsort(self, rng):
        values = rng.random((50, 3))
        index = OnionIndex(values)
        w = np.array([0.3, 0.3, 0.4])
        assert list(index.rank_all(w)) == np.argsort(
            -(values @ w), kind="stable"
        ).tolist()

    def test_axis_aligned_weights(self, rng):
        # Extreme single-attribute functions are the worst case for the
        # threshold reasoning; the index must stay exact.
        values = rng.random((100, 3))
        index = OnionIndex(values)
        for axis in range(3):
            w = np.zeros(3)
            w[axis] = 1.0
            order, _ = index.top_k(w, 10)
            assert list(order) == top_k_indices(values @ w, 10).tolist()

    def test_rejects_bad_weights(self, rng):
        index = OnionIndex(rng.random((20, 3)))
        with pytest.raises(InvalidWeightsError):
            index.top_k(np.array([-1.0, 0.0, 0.0]), 2)
        with pytest.raises(InvalidWeightsError):
            index.top_k(np.zeros(3), 2)
        with pytest.raises(ValueError):
            index.top_k(np.ones(3), 0)

    def test_immutable_layers_property(self, rng):
        index = OnionIndex(rng.random((30, 2)))
        layers = index.layers
        layers[0][:] = -1
        assert np.all(index.layers[0] >= 0)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    d=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_onion_exact(n, d, seed):
    """ONION top-k equals the flat scan for random data and random k/w."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, d))
    index = OnionIndex(values)
    k = int(rng.integers(1, n + 1))
    weights = rng.random(d) + 1e-3
    order, touched = index.top_k(weights, k)
    assert list(order) == top_k_indices(values @ weights, k).tolist()
    assert 1 <= touched <= index.n_layers
