"""Tests for regret-minimizing representative sets (references [10, 11])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidDatasetError
from repro.operators.regret import cube_regret_set, greedy_regret_set, regret_ratio
from repro.operators.skyline import skyline


class TestRegretRatio:
    def test_full_set_has_zero_regret(self, rng):
        values = rng.random((50, 3))
        assert regret_ratio(values, np.arange(50), n_directions=200) == 0.0

    def test_skyline_has_zero_regret(self, rng):
        # The top-1 under any linear function is a skyline member.
        values = rng.random((80, 3))
        sky = skyline(values)
        assert regret_ratio(values, sky, n_directions=500) == pytest.approx(0.0)

    def test_single_extreme_item(self):
        # Keeping only the x1-best item forfeits all of x2's range.
        values = np.array([[1.0, 0.0], [0.0, 1.0]])
        ratio = regret_ratio(values, np.array([0]), n_directions=100)
        assert ratio == pytest.approx(1.0)  # direction e_2 has full regret

    def test_regret_decreases_with_larger_subsets(self, rng):
        values = rng.random((100, 3))
        small = greedy_regret_set(values, 2, n_directions=300, rng=rng)
        large = greedy_regret_set(values, 10, n_directions=300, rng=rng)
        r_small = regret_ratio(values, small, n_directions=300)
        r_large = regret_ratio(values, large, n_directions=300)
        assert r_large <= r_small + 1e-12

    def test_bounded_in_unit_interval(self, rng):
        values = rng.random((30, 4))
        ratio = regret_ratio(values, np.array([0]), n_directions=200)
        assert 0.0 <= ratio <= 1.0

    def test_rejects_negative_values(self):
        with pytest.raises(InvalidDatasetError):
            regret_ratio(np.array([[-0.1, 0.2]]), np.array([0]))

    def test_rejects_empty_subset(self, rng):
        with pytest.raises(ValueError):
            regret_ratio(rng.random((5, 2)), np.array([], dtype=int))


class TestGreedyRegretSet:
    def test_size_and_uniqueness(self, rng):
        values = rng.random((60, 3))
        subset = greedy_regret_set(values, 7, n_directions=200, rng=rng)
        assert subset.shape == (7,)
        assert len(set(subset.tolist())) == 7

    def test_first_pick_is_sum_maximiser(self, rng):
        values = rng.random((40, 3))
        subset = greedy_regret_set(values, 1, n_directions=100, rng=rng)
        assert int(np.argmax(values.sum(axis=1))) in subset.tolist()

    def test_covers_axis_extremes_eventually(self, rng):
        # With k >= d, greedy should drive regret near zero on random
        # data by collecting per-direction winners.
        values = rng.random((80, 2))
        subset = greedy_regret_set(values, 10, n_directions=400, rng=rng)
        assert regret_ratio(values, subset, n_directions=400) < 0.05

    def test_k_equals_n_returns_everything(self, rng):
        values = rng.random((12, 2))
        subset = greedy_regret_set(values, 12, n_directions=50, rng=rng)
        assert subset.tolist() == list(range(12))

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            greedy_regret_set(rng.random((5, 2)), 0)
        with pytest.raises(ValueError):
            greedy_regret_set(rng.random((5, 2)), 6)


class TestCubeRegretSet:
    def test_includes_per_attribute_maxima(self, rng):
        values = rng.random((70, 3))
        subset = cube_regret_set(values, 12)
        chosen = set(subset.tolist())
        for j in range(3):
            assert int(np.argmax(values[:, j])) in chosen

    def test_size_bounded_by_k(self, rng):
        values = rng.random((100, 3))
        subset = cube_regret_set(values, 15)
        assert 3 <= subset.shape[0] <= 15

    def test_regret_guarantee_improves_with_k(self, rng):
        # O(1/t) guarantee: larger budgets produce finer grids.
        values = rng.random((300, 2))
        coarse = cube_regret_set(values, 4)
        fine = cube_regret_set(values, 40)
        r_coarse = regret_ratio(values, coarse, n_directions=500)
        r_fine = regret_ratio(values, fine, n_directions=500)
        assert r_fine <= r_coarse + 1e-9

    def test_rejects_k_below_d(self, rng):
        with pytest.raises(ValueError):
            cube_regret_set(rng.random((10, 3)), 2)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=50),
    k=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_greedy_monotone_regret(n, k, seed):
    """Greedy subsets are valid ids and never beat the full dataset."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, 3))
    k = min(k, n)
    subset = greedy_regret_set(values, k, n_directions=100, rng=rng)
    assert np.all(subset >= 0) and np.all(subset < n)
    ratio = regret_ratio(values, subset, n_directions=100)
    assert 0.0 <= ratio <= 1.0
