"""Unit tests for the skyline operator substrate."""

import numpy as np
import pytest

from repro.operators.skyline import (
    KSkybandIndex,
    dominance_count,
    is_dominated,
    k_skyband,
    skyline,
)


def _brute_force_skyline(values):
    n = values.shape[0]
    out = []
    for i in range(n):
        dominated = any(
            np.all(values[j] >= values[i]) and np.any(values[j] > values[i])
            for j in range(n)
            if j != i
        )
        if not dominated:
            out.append(i)
    return np.array(out, dtype=np.intp)


class TestSkyline:
    def test_paper_toy_example(self):
        # Section 2.2.5: D = {t1(1,0), t2(.99,.99), t3(.98,.98),
        # t4(.97,.97), t5(0,1)} has skyline {t1, t2, t5}.
        values = np.array(
            [[1.0, 0.0], [0.99, 0.99], [0.98, 0.98], [0.97, 0.97], [0.0, 1.0]]
        )
        assert skyline(values).tolist() == [0, 1, 4]

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_matches_brute_force(self, dim, rng_factory):
        for seed in range(5):
            values = rng_factory(seed).uniform(size=(40, dim))
            assert np.array_equal(skyline(values), _brute_force_skyline(values))

    def test_single_item(self):
        assert skyline(np.array([[0.5, 0.5]])).tolist() == [0]

    def test_empty(self):
        assert skyline(np.empty((0, 2))).size == 0

    def test_duplicates_all_kept(self):
        values = np.array([[0.9, 0.9], [0.9, 0.9], [0.1, 0.1]])
        assert skyline(values).tolist() == [0, 1]

    def test_total_order_chain(self):
        values = np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]])
        assert skyline(values).tolist() == [0]

    def test_anticorrelated_large_skyline(self, rng):
        # Anti-correlated data: most items are on the skyline.
        from repro.datasets import anticorrelated_dataset, correlated_dataset

        anti = anticorrelated_dataset(300, 3, rng)
        corr = correlated_dataset(300, 3, rng)
        assert len(skyline(anti.values)) > len(skyline(corr.values))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            skyline(np.ones(4))

    def test_skyline_members_win_some_ranking(self, rng):
        # Every skyline point tops the ranking for *some* weight among a
        # dense probe set... (converse of dominance; sanity, not exact).
        from repro.core.ranking import rank_items

        values = rng.uniform(size=(15, 2))
        sky = set(skyline(values).tolist())
        winners = set()
        for t in np.linspace(0.001, np.pi / 2 - 0.001, 400):
            w = np.array([np.cos(t), np.sin(t)])
            winners.add(rank_items(values, w).order[0])
        assert winners <= sky


class TestIsDominated:
    def test_basic(self):
        values = np.array([[0.9, 0.9], [0.5, 0.5]])
        assert is_dominated(values, 1)
        assert not is_dominated(values, 0)

    def test_equal_items_not_dominated(self):
        values = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert not is_dominated(values, 0)
        assert not is_dominated(values, 1)

    def test_consistent_with_skyline(self, rng):
        values = rng.uniform(size=(30, 3))
        sky = set(skyline(values).tolist())
        for i in range(30):
            assert (i in sky) == (not is_dominated(values, i))


class TestDominanceCount:
    def test_chain(self):
        values = np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]])
        assert dominance_count(values).tolist() == [2, 1, 0]

    def test_incomparable(self):
        values = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert dominance_count(values).tolist() == [0, 0]

    def test_correlation_raises_dominance(self, rng):
        from repro.datasets import anticorrelated_dataset, correlated_dataset

        corr = correlated_dataset(200, 3, rng)
        anti = anticorrelated_dataset(200, 3, rng)
        assert dominance_count(corr.values).sum() > dominance_count(anti.values).sum()


def _brute_force_k_skyband(values, k):
    n = values.shape[0]
    out = []
    for i in range(n):
        dominators = sum(
            1
            for j in range(n)
            if j != i and np.all(values[j] > values[i])
        )
        if dominators < k:
            out.append(i)
    return np.array(out, dtype=np.intp)


class TestKSkyband:
    def test_matches_brute_force_2d(self, rng):
        values = rng.uniform(size=(120, 2))
        for k in (1, 3, 7):
            got = k_skyband(values, k)
            assert got.tolist() == _brute_force_k_skyband(values, k).tolist()

    def test_matches_brute_force_md(self, rng):
        values = rng.uniform(size=(90, 4))
        for k in (1, 4):
            got = k_skyband(values, k)
            assert got.tolist() == _brute_force_k_skyband(values, k).tolist()

    def test_2d_exact_under_attribute_ties(self, rng):
        # Quantised values create many exact ties in both attributes —
        # the heap sweep must stay exact (no float-sum superset slack).
        values = np.round(rng.uniform(size=(150, 2)) * 8) / 8
        for k in (1, 2, 5):
            got = k_skyband(values, k)
            assert got.tolist() == _brute_force_k_skyband(values, k).tolist()

    def test_md_is_superset_under_ties(self, rng):
        values = np.round(rng.uniform(size=(100, 3)) * 8) / 8
        for k in (2, 4):
            got = set(k_skyband(values, k).tolist())
            exact = set(_brute_force_k_skyband(values, k).tolist())
            assert exact <= got  # pruning soundness: never drop a candidate

    def test_k_of_one_is_strict_skyline_superset(self, rng):
        values = rng.uniform(size=(60, 3))
        band = set(k_skyband(values, 1).tolist())
        assert set(skyline(values).tolist()) <= band

    def test_k_at_least_n_keeps_everything(self, rng):
        values = rng.uniform(size=(15, 3))
        assert k_skyband(values, 15).tolist() == list(range(15))
        assert k_skyband(values, 40).tolist() == list(range(15))

    def test_index_caches_per_k(self, rng):
        index = KSkybandIndex(rng.uniform(size=(50, 3)))
        first = index.band(3)
        assert index.band(3) is first  # cached, not rebuilt
        assert index.built_bands == (3,)
        index.band(1)
        assert index.built_bands == (1, 3)
        assert not first.flags.writeable

    def test_index_rejects_bad_input(self):
        with pytest.raises(ValueError):
            KSkybandIndex(np.zeros(5))
        with pytest.raises(ValueError):
            KSkybandIndex(np.zeros((5, 2))).band(0)

    def test_chunk_boundaries_irrelevant(self, rng):
        values = rng.uniform(size=(200, 3))
        expected = k_skyband(values, 3).tolist()
        for chunk in (1, 7, 64, 1000):
            assert k_skyband(values, 3, chunk=chunk).tolist() == expected

    def test_large_build_is_fast_enough(self, rng):
        # The n >= 100K regression the ROADMAP names: must complete in
        # seconds, not minutes (saturating scan / heap sweep).
        import time

        values = rng.uniform(size=(100_000, 2))
        start = time.perf_counter()
        band = k_skyband(values, 10)
        assert 0 < band.size < 100_000
        assert time.perf_counter() - start < 5.0

        values_md = rng.uniform(size=(100_000, 4))
        start = time.perf_counter()
        band_md = k_skyband(values_md, 10)
        assert 0 < band_md.size < 100_000
        assert time.perf_counter() - start < 30.0
