"""Unit and property tests for the TA / NRA top-k substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidWeightsError
from repro.operators.threshold import (
    SortedLists,
    no_random_access,
    threshold_algorithm,
)
from repro.operators.topk import top_k_indices


def _reference_topk(values, weights, k):
    return top_k_indices(values @ weights, k).tolist()


class TestSortedLists:
    def test_sorted_entries_descending(self, rng):
        values = rng.random((30, 3))
        lists = SortedLists(values)
        for j in range(3):
            col = [lists.sorted_entry(j, depth)[1] for depth in range(30)]
            assert col == sorted(col, reverse=True)

    def test_ties_break_by_id(self):
        values = np.array([[0.5, 0.1], [0.5, 0.2], [0.4, 0.3]])
        lists = SortedLists(values)
        assert lists.sorted_entry(0, 0)[0] == 0
        assert lists.sorted_entry(0, 1)[0] == 1

    def test_random_access(self, rng):
        values = rng.random((10, 4))
        lists = SortedLists(values)
        assert lists.random_access(3, 2) == values[3, 2]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SortedLists(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            SortedLists(np.array([[np.inf, 1.0]]))


class TestThresholdAlgorithm:
    @pytest.mark.parametrize("d", [2, 3, 5])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_full_scan(self, d, k, rng_factory):
        rng = rng_factory(d * 100 + k)
        values = rng.random((60, d))
        weights = rng.random(d) + 0.01
        lists = SortedLists(values)
        result = threshold_algorithm(lists, weights, k)
        assert list(result.order) == _reference_topk(values, weights, k)

    def test_scores_aligned_with_order(self, rng):
        values = rng.random((40, 3))
        weights = np.array([1.0, 0.5, 0.25])
        result = threshold_algorithm(SortedLists(values), weights, 5)
        for item, score in zip(result.order, result.scores):
            assert score == pytest.approx(float(values[item] @ weights))

    def test_stops_early_on_skewed_data(self, rng):
        # One item dominating every list => the threshold collapses fast.
        values = rng.random((500, 3)) * 0.5
        values[7] = [1.0, 1.0, 1.0]
        result = threshold_algorithm(SortedLists(values), np.ones(3), 1)
        assert result.order[0] == 7
        assert result.depth < 500 / 4

    def test_access_counters_consistent(self, rng):
        values = rng.random((50, 4))
        result = threshold_algorithm(SortedLists(values), np.ones(4), 10)
        assert result.sorted_accesses == result.depth * 4
        assert result.random_accesses % 3 == 0  # (d-1) per new item

    def test_k_equals_n(self, rng):
        values = rng.random((15, 2))
        weights = np.array([0.3, 0.7])
        result = threshold_algorithm(SortedLists(values), weights, 15)
        assert list(result.order) == _reference_topk(values, weights, 15)

    def test_rejects_bad_weights(self, rng):
        lists = SortedLists(rng.random((10, 3)))
        with pytest.raises(InvalidWeightsError):
            threshold_algorithm(lists, np.array([1.0, -1.0, 0.0]), 2)
        with pytest.raises(InvalidWeightsError):
            threshold_algorithm(lists, np.zeros(3), 2)
        with pytest.raises(ValueError):
            threshold_algorithm(lists, np.ones(3), 0)
        with pytest.raises(ValueError):
            threshold_algorithm(lists, np.ones(3), 11)

    def test_zero_weight_attribute_ignored(self, rng):
        # A zero weight makes an attribute irrelevant to the answer.
        values = rng.random((30, 3))
        weights = np.array([1.0, 0.0, 2.0])
        result = threshold_algorithm(SortedLists(values), weights, 5)
        assert list(result.order) == _reference_topk(values, weights, 5)


class TestNoRandomAccess:
    @pytest.mark.parametrize("d", [2, 3, 4])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_full_scan(self, d, k, rng_factory):
        rng = rng_factory(d * 10 + k)
        values = rng.random((50, d))
        weights = rng.random(d) + 0.01
        result = no_random_access(SortedLists(values), weights, k)
        assert list(result.order) == _reference_topk(values, weights, k)

    def test_never_random_accesses(self, rng):
        values = rng.random((40, 3))
        result = no_random_access(SortedLists(values), np.ones(3), 5)
        assert result.random_accesses == 0

    def test_needs_at_least_ta_depth(self, rng):
        # NRA's bounds are weaker than TA's exact completion, so it can
        # never stop at a shallower depth on the same input.
        values = rng.random((80, 3))
        weights = np.array([1.0, 0.5, 0.2])
        lists = SortedLists(values)
        ta = threshold_algorithm(lists, weights, 5)
        nra = no_random_access(lists, weights, 5)
        assert nra.depth >= ta.depth

    def test_exhausts_gracefully(self):
        # Tiny dataset: both algorithms must still terminate and agree.
        values = np.array([[0.2, 0.9], [0.9, 0.2]])
        weights = np.array([1.0, 1.0])
        result = no_random_access(SortedLists(values), weights, 2)
        assert sorted(result.order) == [0, 1]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    d=st.integers(min_value=2, max_value=4),
    k_frac=st.floats(min_value=0.01, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_all_engines_agree(n, d, k_frac, seed):
    """TA, NRA and the flat scan return identical top-k on random data."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, d))
    weights = rng.random(d) + 1e-3
    k = max(1, min(n, int(round(k_frac * n))))
    lists = SortedLists(values)
    reference = _reference_topk(values, weights, k)
    assert list(threshold_algorithm(lists, weights, k).order) == reference
    assert list(no_random_access(lists, weights, k).order) == reference
