"""Tests for the k most representative skyline baseline (reference [9])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidDatasetError
from repro.operators.representative import (
    coverage_of,
    dominance_matrix,
    k_representative_skyline,
)
from repro.operators.skyline import dominance_count, skyline


class TestDominanceMatrix:
    def test_matches_pairwise_definition(self, rng):
        values = rng.random((30, 3))
        dom = dominance_matrix(values)
        for i in range(30):
            for j in range(30):
                expected = (
                    i != j
                    and bool(np.all(values[i] >= values[j]))
                    and bool(np.any(values[i] > values[j]))
                )
                assert dom[i, j] == expected

    def test_row_sums_match_dominance_count(self, rng):
        values = rng.random((40, 2))
        dom = dominance_matrix(values)
        assert dom.sum(axis=1).tolist() == dominance_count(values).tolist()

    def test_irreflexive_and_antisymmetric(self, rng):
        values = rng.random((25, 3))
        dom = dominance_matrix(values)
        assert not np.any(np.diag(dom))
        assert not np.any(dom & dom.T)

    def test_rejects_1d(self):
        with pytest.raises(InvalidDatasetError):
            dominance_matrix(np.array([1.0, 2.0]))


class TestCoverage:
    def test_empty_subset_covers_nothing(self, rng):
        dom = dominance_matrix(rng.random((10, 2)))
        assert coverage_of(dom, np.array([], dtype=int)) == 0

    def test_union_not_double_counted(self):
        values = np.array([[0.9, 0.9], [0.8, 0.95], [0.1, 0.1]])
        dom = dominance_matrix(values)
        # Both skyline items dominate item 2; joint coverage is 1, not 2.
        assert coverage_of(dom, np.array([0, 1])) == 1


class TestKRepresentativeSkyline:
    def test_output_is_subset_of_skyline(self, rng):
        values = rng.random((80, 3))
        subset, _ = k_representative_skyline(values, 5)
        sky = set(skyline(values).tolist())
        assert set(subset.tolist()) <= sky

    def test_whole_skyline_when_k_large(self, rng):
        values = rng.random((40, 2))
        sky = skyline(values)
        subset, _ = k_representative_skyline(values, len(sky) + 10)
        assert subset.tolist() == sky.tolist()

    def test_coverage_monotone_in_k(self, rng):
        values = rng.random((100, 3))
        _, cov2 = k_representative_skyline(values, 2)
        _, cov6 = k_representative_skyline(values, 6)
        assert cov6 >= cov2

    def test_greedy_beats_arbitrary_singleton(self, rng):
        # The first greedy pick maximises single-item coverage.
        values = rng.random((60, 2))
        subset, cov = k_representative_skyline(values, 1)
        dom = dominance_matrix(values)
        best_single = max(int(dom[i].sum()) for i in skyline(values))
        assert cov == best_single

    def test_chain_dataset(self):
        # Total order: single skyline item dominating everything.
        values = np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]])
        subset, cov = k_representative_skyline(values, 3)
        assert subset.tolist() == [0]
        assert cov == 2

    def test_deterministic_tie_break(self):
        # Two symmetric skyline points each dominating one item: the
        # smaller id must be chosen first.
        values = np.array([[1.0, 0.0], [0.0, 1.0], [0.9, 0.0], [0.0, 0.9]])
        subset, _ = k_representative_skyline(values, 1)
        assert subset.tolist() == [0]

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            k_representative_skyline(rng.random((5, 2)), 0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=50),
    k=st.integers(min_value=1, max_value=8),
    d=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_representative_invariants(n, k, d, seed):
    """Representatives are skyline members and coverage equals the union."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, d))
    subset, cov = k_representative_skyline(values, k)
    sky = set(skyline(values).tolist())
    assert set(subset.tolist()) <= sky
    dom = dominance_matrix(values)
    assert cov == coverage_of(dom, subset)
    assert subset.shape[0] == min(k, len(sky))
