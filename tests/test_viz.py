"""Unit tests for the terminal visualisation helpers."""

import pytest

from repro.core.analysis import RankProfile
from repro.core.ranking import Ranking
from repro.core.stability import StabilityResult
from repro.viz import format_ranking, rank_strip, stability_bars


def _result(stability):
    return StabilityResult(ranking=Ranking([0, 1]), stability=stability)


class TestStabilityBars:
    def test_renders_results_and_floats(self):
        out_results = stability_bars([_result(0.5), _result(0.25)])
        out_floats = stability_bars([0.5, 0.25])
        assert out_results == out_floats
        lines = out_floats.splitlines()
        # The default "#<rank>" labels also contain '#'; compare only the
        # trailing bar segment.
        bars = [line.split()[-1] for line in lines]
        assert len(bars[0]) == 2 * len(bars[1])

    def test_zero_and_empty(self):
        assert "no rankings" in stability_bars([])
        assert "zero" in stability_bars([0.0, 0.0])

    def test_max_rows_ellipsis(self):
        out = stability_bars([0.1] * 30, max_rows=5)
        assert "... 25 more" in out
        assert len(out.splitlines()) == 6

    def test_custom_labels(self):
        out = stability_bars([0.4, 0.2], labels=["alpha", "beta"])
        assert "alpha" in out and "beta" in out


class TestRankStrip:
    def test_marks_range_and_mean(self):
        p = RankProfile(item=0, min_rank=4, max_rank=10, mean_rank=6.0, quantiles={})
        strip = rank_strip(p, n_items=20, width=40)
        assert strip.startswith("|") and strip.endswith("|")
        assert "o" in strip and "-" in strip
        body = strip[1:-1]
        assert body.index("-") < body.index("o")

    def test_pinned_rank(self):
        p = RankProfile(item=0, min_rank=1, max_rank=1, mean_rank=1.0, quantiles={})
        strip = rank_strip(p, n_items=10, width=20)
        assert strip[1] == "o"

    def test_rejects_bad_n(self):
        p = RankProfile(item=0, min_rank=1, max_rank=1, mean_rank=1.0, quantiles={})
        with pytest.raises(ValueError):
            rank_strip(p, n_items=0)


class TestFormatRanking:
    def test_basic(self):
        assert format_ranking([2, 0, 1]) == "1.2  2.0  3.1"

    def test_labels_and_limit(self):
        out = format_ranking(range(15), limit=3)
        assert out.endswith("...")
        labelled = format_ranking([1, 0], labels=["alpha", "beta"])
        assert labelled == "1.beta  2.alpha"
