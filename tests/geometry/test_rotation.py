"""Unit tests for the Appendix A rotation machinery."""

import math

import numpy as np
import pytest

from repro.geometry.rotation import (
    axis_rotation_matrix,
    householder_rotation,
    rotate_to_ray,
    rotation_matrix_to_ray,
)


def _unit(v):
    v = np.asarray(v, dtype=np.float64)
    return v / np.linalg.norm(v)


class TestAxisRotationMatrix:
    def test_2d_matches_paper_form(self):
        theta = 0.4
        m = axis_rotation_matrix(2, 1, theta)
        expected = np.array(
            [[math.cos(theta), -math.sin(theta)], [math.sin(theta), math.cos(theta)]]
        )
        assert np.allclose(m, expected)

    def test_orthogonal(self):
        m = axis_rotation_matrix(4, 2, 0.7)
        assert np.allclose(m @ m.T, np.eye(4), atol=1e-12)

    def test_determinant_one(self):
        m = axis_rotation_matrix(5, 3, 1.1)
        assert math.isclose(np.linalg.det(m), 1.0, rel_tol=1e-10)

    def test_fixes_uninvolved_axes(self):
        m = axis_rotation_matrix(4, 2, 0.9)
        e1 = np.array([0.0, 1.0, 0.0, 0.0])
        e3 = np.array([0.0, 0.0, 0.0, 1.0])
        assert np.allclose(m @ e1, e1)
        assert np.allclose(m @ e3, e3)

    def test_rejects_bad_plane(self):
        with pytest.raises(ValueError):
            axis_rotation_matrix(3, 3, 0.1)
        with pytest.raises(ValueError):
            axis_rotation_matrix(3, 0, 0.1)


class TestRotationToRay:
    @pytest.mark.parametrize("dim", [2, 3, 4, 5, 8])
    def test_maps_last_axis_to_ray(self, dim, rng):
        for _ in range(20):
            ray = rng.uniform(0.01, 1.0, size=dim)
            m = rotation_matrix_to_ray(ray)
            e_d = np.zeros(dim)
            e_d[-1] = 1.0
            assert np.allclose(m @ e_d, _unit(ray), atol=1e-10)

    @pytest.mark.parametrize("dim", [2, 3, 5])
    def test_orthogonality(self, dim, rng):
        for _ in range(10):
            ray = rng.uniform(0.01, 1.0, size=dim)
            m = rotation_matrix_to_ray(ray)
            assert np.allclose(m.T @ m, np.eye(dim), atol=1e-10)

    def test_axis_aligned_rays(self):
        for dim in (2, 3, 4):
            for axis in range(dim):
                ray = np.zeros(dim)
                ray[axis] = 1.0
                m = rotation_matrix_to_ray(ray)
                e_d = np.zeros(dim)
                e_d[-1] = 1.0
                assert np.allclose(m @ e_d, ray, atol=1e-12)

    def test_preserves_angles(self, rng):
        # Rotations preserve pairwise inner products.
        ray = rng.uniform(0.1, 1.0, size=4)
        m = rotation_matrix_to_ray(ray)
        a, b = rng.normal(size=4), rng.normal(size=4)
        assert math.isclose(float(a @ b), float((m @ a) @ (m @ b)), rel_tol=1e-9)

    def test_rotate_to_ray_applies_matrix(self, rng):
        ray = rng.uniform(0.1, 1.0, size=3)
        v = rng.normal(size=3)
        assert np.allclose(rotate_to_ray(v, ray), rotation_matrix_to_ray(ray) @ v)

    def test_rotate_to_ray_dimension_mismatch(self):
        with pytest.raises(ValueError):
            rotate_to_ray(np.ones(3), np.ones(4))

    def test_identity_when_ray_is_last_axis(self):
        m = rotation_matrix_to_ray(np.array([0.0, 0.0, 1.0]))
        assert np.allclose(m @ np.eye(3)[:, 2], np.array([0, 0, 1.0]))


class TestHouseholderRotation:
    @pytest.mark.parametrize("dim", [2, 3, 4, 6])
    def test_maps_source_to_target(self, dim, rng):
        for _ in range(20):
            s = rng.normal(size=dim)
            t = rng.normal(size=dim)
            m = householder_rotation(s, t)
            assert np.allclose(m @ _unit(s), _unit(t), atol=1e-10)

    def test_identity_for_equal_vectors(self):
        v = np.array([0.3, 0.4, 0.5])
        assert np.allclose(householder_rotation(v, v), np.eye(3))

    def test_orthogonal(self, rng):
        s, t = rng.normal(size=4), rng.normal(size=4)
        m = householder_rotation(s, t)
        assert np.allclose(m @ m.T, np.eye(4), atol=1e-10)

    def test_agrees_with_givens_construction(self, rng):
        # Both constructions are rotations sending e_d to the ray; they can
        # differ on the orthogonal complement, but must agree on e_d.
        for _ in range(10):
            ray = rng.uniform(0.05, 1.0, size=5)
            e_d = np.zeros(5)
            e_d[-1] = 1.0
            a = rotation_matrix_to_ray(ray) @ e_d
            b = householder_rotation(e_d, ray) @ e_d
            assert np.allclose(a, b, atol=1e-10)
