"""Tests for Welzl's smallest enclosing ball and direction bounding caps."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.minball import Ball, bounding_cap_of_directions, min_enclosing_ball


def _brute_force_radius(points, centres=400, rng=None):
    """Lower-bound check: no candidate centre does much better."""
    rng = rng if rng is not None else np.random.default_rng(0)
    best = np.inf
    lo, hi = points.min(axis=0), points.max(axis=0)
    for _ in range(centres):
        c = rng.uniform(lo, hi)
        best = min(best, float(np.linalg.norm(points - c, axis=1).max()))
    return best


class TestBall:
    def test_contains_with_tolerance(self):
        ball = Ball(np.zeros(2), 1.0)
        assert ball.contains(np.array([1.0, 0.0]))
        assert ball.contains(np.array([1.0 + 1e-10, 0.0]))
        assert not ball.contains(np.array([1.1, 0.0]))


class TestMinEnclosingBall:
    def test_single_point(self):
        ball = min_enclosing_ball(np.array([[2.0, 3.0]]))
        assert ball.radius == 0.0
        assert np.allclose(ball.centre, [2.0, 3.0])

    def test_two_points_diameter(self):
        ball = min_enclosing_ball(np.array([[0.0, 0.0], [2.0, 0.0]]))
        assert ball.radius == pytest.approx(1.0)
        assert np.allclose(ball.centre, [1.0, 0.0])

    def test_equilateral_triangle_circumcircle(self):
        pts = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.5, math.sqrt(3) / 2]]
        )
        ball = min_enclosing_ball(pts)
        # Circumradius of a unit equilateral triangle is 1/sqrt(3).
        assert ball.radius == pytest.approx(1 / math.sqrt(3), abs=1e-9)

    def test_obtuse_triangle_uses_diameter(self):
        # For an obtuse triangle the min ball is the longest side's
        # diameter circle, NOT the circumcircle.
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 0.1]])
        ball = min_enclosing_ball(pts)
        assert ball.radius == pytest.approx(2.0, abs=1e-9)
        assert np.allclose(ball.centre, [2.0, 0.0], atol=1e-9)

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_contains_all_random(self, d, rng_factory):
        for seed in range(4):
            pts = rng_factory(seed).normal(size=(100, d))
            ball = min_enclosing_ball(pts)
            assert ball.contains_all(pts)

    def test_near_optimal_vs_brute_force(self, rng):
        pts = rng.normal(size=(60, 3))
        ball = min_enclosing_ball(pts)
        assert ball.radius <= _brute_force_radius(pts, rng=rng) + 1e-9

    def test_duplicated_points(self):
        pts = np.array([[1.0, 1.0]] * 8 + [[3.0, 1.0]] * 8)
        ball = min_enclosing_ball(pts)
        assert ball.radius == pytest.approx(1.0)

    def test_points_on_sphere(self, rng):
        # Points on a known sphere: the enclosing ball cannot exceed it.
        raw = rng.normal(size=(200, 3))
        pts = raw / np.linalg.norm(raw, axis=1, keepdims=True)
        ball = min_enclosing_ball(pts)
        assert ball.radius <= 1.0 + 1e-9
        assert np.linalg.norm(ball.centre) <= 0.5  # well-centred

    def test_shuffle_invariance(self, rng):
        pts = rng.normal(size=(50, 2))
        b1 = min_enclosing_ball(pts)
        b2 = min_enclosing_ball(pts[::-1].copy())
        assert b1.radius == pytest.approx(b2.radius, rel=1e-9)

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValueError):
            min_enclosing_ball(np.empty((0, 2)))
        with pytest.raises(ValueError):
            min_enclosing_ball(np.array([[np.nan, 1.0]]))


class TestBoundingCapOfDirections:
    def test_cap_contains_all_directions(self, rng):
        dirs = np.abs(rng.normal(size=(100, 4)))
        axis, angle = bounding_cap_of_directions(dirs)
        unit = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
        assert np.all(unit @ axis >= math.cos(angle) - 1e-9)

    def test_single_direction_zero_angle(self):
        axis, angle = bounding_cap_of_directions(np.array([[1.0, 1.0, 0.0]]))
        assert angle == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(axis, [1 / math.sqrt(2), 1 / math.sqrt(2), 0.0])

    def test_symmetric_pair(self):
        dirs = np.array([[1.0, 0.0], [0.0, 1.0]])
        axis, angle = bounding_cap_of_directions(dirs)
        assert np.allclose(axis, [1 / math.sqrt(2)] * 2, atol=1e-9)
        assert angle == pytest.approx(math.pi / 4, abs=1e-9)

    def test_tight_against_known_cone(self, rng):
        # Directions drawn inside a theta-cap must produce an angle
        # close to (and at least covering) the sample's true spread.
        from repro.sampling.cap import sample_cap

        ray = np.array([1.0, 1.0, 1.0])
        theta = 0.2
        dirs = sample_cap(ray, theta, 500, rng)
        axis, angle = bounding_cap_of_directions(dirs)
        assert angle <= theta * 1.2
        unit = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
        assert np.all(unit @ axis >= math.cos(angle) - 1e-9)

    def test_hemisphere_spanning_rejected(self):
        dirs = np.array([[1.0, 0.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            bounding_cap_of_directions(dirs)

    def test_rejects_zero_direction(self):
        with pytest.raises(ValueError):
            bounding_cap_of_directions(np.array([[0.0, 0.0]]))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    d=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_ball_contains_and_is_supported(n, d, seed):
    """The ball contains every point and touches at least one of them
    (otherwise it could shrink)."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, d))
    ball = min_enclosing_ball(pts)
    assert ball.contains_all(pts)
    gaps = np.linalg.norm(pts - ball.centre, axis=1)
    assert gaps.max() == pytest.approx(ball.radius, abs=1e-7)
