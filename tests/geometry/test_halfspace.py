"""Unit tests for halfspaces and convex cones."""

import numpy as np
import pytest

from repro.errors import InfeasibleRegionError
from repro.geometry.halfspace import ConvexCone, Halfspace


class TestHalfspace:
    def test_contains_positive_side(self):
        h = Halfspace((1.0, -1.0), +1)
        assert h.contains(np.array([2.0, 1.0]))
        assert not h.contains(np.array([1.0, 2.0]))

    def test_sign_flips_membership(self):
        h = Halfspace((1.0, -1.0), -1)
        assert h.contains(np.array([1.0, 2.0]))
        assert not h.contains(np.array([2.0, 1.0]))

    def test_boundary_excluded_when_strict(self):
        h = Halfspace((1.0, -1.0), +1)
        assert not h.contains(np.array([1.0, 1.0]), strict=True)
        assert h.contains(np.array([1.0, 1.0]), strict=False)

    def test_flipped(self):
        h = Halfspace((1.0, 0.0), +1)
        assert h.flipped().sign == -1
        assert h.flipped().flipped() == h

    def test_contains_all_vectorised(self, rng):
        h = Halfspace((0.3, -0.7, 0.2), +1)
        pts = rng.normal(size=(100, 3))
        mask = h.contains_all(pts)
        for point, expected in zip(pts, mask):
            assert h.contains(point) == bool(expected)

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            Halfspace((1.0, 0.0), 0)

    def test_membership_scale_invariant(self, rng):
        h = Halfspace((0.5, -0.5), +1)
        for _ in range(20):
            p = rng.normal(size=2)
            for scale in (0.01, 1.0, 1000.0):
                assert h.contains(p) == h.contains(p * scale)


class TestConvexCone:
    def test_empty_cone_is_whole_space(self, rng):
        cone = ConvexCone(dim=3)
        assert cone.contains(rng.normal(size=3))
        assert cone.contains_all(rng.normal(size=(10, 3))).all()

    def test_needs_dim_when_empty(self):
        with pytest.raises(ValueError):
            ConvexCone()

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ConvexCone([Halfspace((1.0, 0.0)), Halfspace((1.0, 0.0, 0.0))])

    def test_dim_conflict_rejected(self):
        with pytest.raises(ValueError):
            ConvexCone([Halfspace((1.0, 0.0))], dim=3)

    def test_intersection_membership(self):
        # w1 > w2 and w2 > w3: the cone of decreasing weights.
        cone = ConvexCone(
            [Halfspace((1.0, -1.0, 0.0), +1), Halfspace((0.0, 1.0, -1.0), +1)]
        )
        assert cone.contains(np.array([3.0, 2.0, 1.0]))
        assert not cone.contains(np.array([1.0, 2.0, 3.0]))
        assert not cone.contains(np.array([2.0, 3.0, 1.0]))

    def test_with_halfspace_does_not_mutate(self):
        cone = ConvexCone(dim=2)
        refined = cone.with_halfspace(Halfspace((1.0, -1.0), +1))
        assert len(cone) == 0
        assert len(refined) == 1

    def test_with_halfspace_dim_mismatch(self):
        cone = ConvexCone(dim=2)
        with pytest.raises(ValueError):
            cone.with_halfspace(Halfspace((1.0, 0.0, 0.0), +1))

    def test_contains_all_matches_scalar(self, rng):
        cone = ConvexCone(
            [Halfspace((1.0, -0.5, 0.2), +1), Halfspace((-0.3, 1.0, -0.1), +1)]
        )
        pts = rng.normal(size=(200, 3))
        mask = cone.contains_all(pts)
        for point, expected in zip(pts, mask):
            assert cone.contains(point) == bool(expected)


class TestInteriorPoint:
    def test_whole_orthant(self):
        cone = ConvexCone(dim=3)
        p = cone.interior_point()
        assert np.all(p >= 0)
        assert np.isclose(np.linalg.norm(p), 1.0)

    def test_interior_point_satisfies_constraints(self, rng):
        cone = ConvexCone(
            [Halfspace((1.0, -1.0, 0.0), +1), Halfspace((0.0, 1.0, -1.0), +1)]
        )
        p = cone.interior_point()
        assert cone.contains(p)
        assert np.all(p >= -1e-12)

    def test_infeasible_raises(self):
        # w1 > w2 and w2 > w1 simultaneously.
        cone = ConvexCone(
            [Halfspace((1.0, -1.0), +1), Halfspace((1.0, -1.0), -1)]
        )
        with pytest.raises(InfeasibleRegionError):
            cone.interior_point()

    def test_is_feasible(self):
        good = ConvexCone([Halfspace((1.0, -1.0), +1)])
        bad = ConvexCone([Halfspace((1.0, -1.0), +1), Halfspace((1.0, -1.0), -1)])
        assert good.is_feasible()
        assert not bad.is_feasible()

    def test_orthant_infeasible_constraint(self):
        # w1 + w2 < 0 can't hold with non-negative weights.
        cone = ConvexCone([Halfspace((1.0, 1.0), -1)])
        assert not cone.is_feasible(nonnegative=True)


class TestIntersectsHyperplane:
    def test_diagonal_splits_orthant(self):
        cone = ConvexCone(dim=2)
        assert cone.intersects_hyperplane(np.array([1.0, -1.0]))

    def test_hyperplane_missing_cone(self):
        # Restrict to w1 > 2*w2; the w1 = w2 hyperplane misses it.
        cone = ConvexCone([Halfspace((1.0, -2.0), +1)])
        assert not cone.intersects_hyperplane(np.array([1.0, -1.0]))

    def test_matches_sample_straddle(self, rng):
        cone = ConvexCone([Halfspace((1.0, -1.0, 0.0), +1)])
        normal = np.array([0.0, 1.0, -1.0])
        assert cone.intersects_hyperplane(normal)


class TestBoundingCap:
    def test_full_orthant_cap(self):
        cone = ConvexCone(dim=3)
        ray, angle = cone.bounding_cap()
        assert np.allclose(ray, np.full(3, 1 / np.sqrt(3)))
        assert np.isclose(angle, np.arccos(1 / np.sqrt(3)))

    def test_cap_from_samples_contains_them(self, rng):
        cone = ConvexCone([Halfspace((1.0, -1.0, 0.0), +1)])
        pts = np.abs(rng.normal(size=(200, 3)))
        pts = pts[cone.contains_all(pts)]
        ray, angle = cone.bounding_cap(pts)
        dirs = pts / np.linalg.norm(pts, axis=1, keepdims=True)
        cosines = dirs @ ray
        assert np.all(np.arccos(np.clip(cosines, -1, 1)) <= angle + 1e-9)

    def test_cap_padding_covers_beyond_samples(self, rng):
        # The sample-derived cap is inflated so near-boundary directions
        # the samples happened to miss still fall inside the proposal.
        from repro.sampling.cap import sample_cap

        axis = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
        theta = 0.25
        cone = ConvexCone(dim=3)
        # Samples only from the inner 80% of the true cap.
        inner = sample_cap(axis, theta * 0.8, 300, rng)
        ray, angle = cone.bounding_cap(inner)
        # With the default pad the cap must cover the full true theta.
        assert float(ray @ axis) > 0.99
        assert angle >= theta * 0.8  # at least the sampled spread
        assert angle >= 0.8 * theta * 1.2  # pad of 1.25 clipped sanely

    def test_cap_angle_never_absurd(self, rng):
        cone = ConvexCone(dim=4)
        pts = np.abs(rng.normal(size=(50, 4)))
        _, angle = cone.bounding_cap(pts)
        orthant_angle = float(np.arccos(1 / np.sqrt(4)))
        assert 0.0 < angle <= orthant_angle + np.pi / 2

    def test_degenerate_samples_fall_back_to_orthant(self):
        cone = ConvexCone(dim=2)
        # Antipodal directions: no cap exists; must fall back.
        pts = np.array([[1.0, 0.0], [-1.0, 0.0]])
        ray, angle = cone.bounding_cap(pts)
        assert np.allclose(ray, np.full(2, 1 / np.sqrt(2)))
        assert np.isclose(angle, np.pi / 4)
