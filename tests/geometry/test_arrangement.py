"""Unit tests for the lazy arrangement with sample partitioning (§5.4)."""

import numpy as np
import pytest

from repro.geometry.arrangement import Arrangement
from repro.sampling.uniform import sample_orthant


def _make(rng, n_hyperplanes=4, n_samples=2000, dim=3):
    hyperplanes = rng.normal(size=(n_hyperplanes, dim))
    samples = sample_orthant(dim, n_samples, rng)
    return Arrangement(hyperplanes, samples)


class TestConstruction:
    def test_root_region_covers_pool(self, rng):
        arr = _make(rng)
        root = arr.root_region()
        assert root.sample_begin == 0
        assert root.sample_end == arr.total_samples
        assert root.stability_estimate(arr.total_samples) == 1.0
        assert root.pending == 0

    def test_rejects_empty_pool(self, rng):
        with pytest.raises(ValueError):
            Arrangement(rng.normal(size=(2, 3)), np.empty((0, 3)))

    def test_rejects_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            Arrangement(rng.normal(size=(2, 3)), rng.normal(size=(10, 4)))

    def test_rejects_1d_inputs(self, rng):
        with pytest.raises(ValueError):
            Arrangement(rng.normal(size=3), rng.normal(size=(10, 3)))


class TestPartition:
    def test_split_preserves_sample_multiset(self, rng):
        arr = _make(rng)
        before = np.sort(arr.samples.copy(), axis=0)
        root = arr.root_region()
        k = arr.next_intersecting_hyperplane(root)
        assert k is not None
        arr.partition(root, k)
        after = np.sort(arr.samples, axis=0)
        assert np.allclose(before, after)

    def test_children_partition_parent_slice(self, rng):
        arr = _make(rng)
        root = arr.root_region()
        k = arr.next_intersecting_hyperplane(root)
        left, right = arr.partition(root, k)
        assert left.sample_begin == root.sample_begin
        assert left.sample_end == right.sample_begin
        assert right.sample_end == root.sample_end
        assert left.sample_count() + right.sample_count() == root.sample_count()

    def test_children_sides_are_correct(self, rng):
        arr = _make(rng)
        root = arr.root_region()
        k = arr.next_intersecting_hyperplane(root)
        left, right = arr.partition(root, k)
        normal = arr.hyperplanes[k]
        left_block = arr.samples[left.sample_begin : left.sample_end]
        right_block = arr.samples[right.sample_begin : right.sample_end]
        assert np.all(left_block @ normal <= 0.0)
        assert np.all(right_block @ normal > 0.0)

    def test_children_cones_gain_halfspace(self, rng):
        arr = _make(rng)
        root = arr.root_region()
        k = arr.next_intersecting_hyperplane(root)
        left, right = arr.partition(root, k)
        assert len(left.cone) == len(root.cone) + 1
        assert len(right.cone) == len(root.cone) + 1
        assert left.pending == k + 1
        assert right.pending == k + 1

    def test_stability_estimates_sum_to_parent(self, rng):
        arr = _make(rng)
        root = arr.root_region()
        k = arr.next_intersecting_hyperplane(root)
        left, right = arr.partition(root, k)
        total = arr.total_samples
        assert (
            left.stability_estimate(total) + right.stability_estimate(total)
            == root.stability_estimate(total)
        )

    def test_non_intersecting_returns_none(self, rng):
        # A hyperplane with all-positive normal never splits the orthant.
        samples = sample_orthant(3, 500, rng)
        arr = Arrangement(np.array([[1.0, 1.0, 1.0]]), samples)
        assert arr.partition(arr.root_region(), 0) is None

    def test_out_of_range_hyperplane_index(self, rng):
        arr = _make(rng)
        with pytest.raises(IndexError):
            arr.partition(arr.root_region(), 99)

    def test_min_split_samples_respected(self, rng):
        hyperplanes = rng.normal(size=(1, 3))
        samples = sample_orthant(3, 40, rng)
        arr = Arrangement(hyperplanes, samples, min_split_samples=30)
        # Even a genuinely intersecting hyperplane cannot split 40 samples
        # into two sides of >= 30.
        assert arr.partition(arr.root_region(), 0) is None


class TestNextIntersecting:
    def test_skips_missing_hyperplanes(self, rng):
        samples = sample_orthant(3, 1000, rng)
        hyperplanes = np.array(
            [
                [1.0, 1.0, 1.0],   # never splits the orthant
                [1.0, -1.0, 0.0],  # splits it
            ]
        )
        arr = Arrangement(hyperplanes, samples)
        root = arr.root_region()
        assert arr.next_intersecting_hyperplane(root) == 1
        assert root.pending == 1  # advanced past the miss

    def test_none_when_exhausted(self, rng):
        samples = sample_orthant(3, 500, rng)
        arr = Arrangement(np.array([[1.0, 1.0, 1.0]]), samples)
        root = arr.root_region()
        assert arr.next_intersecting_hyperplane(root) is None
        assert root.pending == arr.n_hyperplanes


class TestRepresentativePoint:
    def test_point_inside_region(self, rng):
        arr = _make(rng)
        root = arr.root_region()
        k = arr.next_intersecting_hyperplane(root)
        left, right = arr.partition(root, k)
        for region in (left, right):
            p = arr.representative_point(region)
            assert np.isclose(np.linalg.norm(p), 1.0)
            assert region.cone.contains(p)

    def test_full_refinement_keeps_consistency(self, rng):
        # Fully refine: every leaf's samples all lie inside its cone.
        arr = _make(rng, n_hyperplanes=5, n_samples=3000)
        stack = [arr.root_region()]
        leaves = []
        while stack:
            region = stack.pop()
            k = arr.next_intersecting_hyperplane(region)
            if k is None:
                leaves.append(region)
                continue
            split = arr.partition(region, k)
            if split is None:
                region.pending = k + 1
                stack.append(region)
            else:
                stack.extend(split)
        assert sum(leaf.sample_count() for leaf in leaves) == arr.total_samples
        for leaf in leaves:
            block = arr.samples[leaf.sample_begin : leaf.sample_end]
            # Strict containment can fail only on boundary-exact samples,
            # which have probability zero.
            assert leaf.cone.contains_all(block).all()
