"""Unit tests for hypersphere / cap geometry (Equations 12-16)."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.geometry.spherical import (
    cap_area,
    cap_cdf,
    cap_fraction_of_orthant,
    inverse_cap_cdf,
    orthant_area,
    riemann_cdf_table,
    sin_power_integral,
    sphere_surface_area,
)


class TestSphereSurfaceArea:
    def test_circle(self):
        assert math.isclose(sphere_surface_area(2), 2 * math.pi)

    def test_sphere(self):
        assert math.isclose(sphere_surface_area(3), 4 * math.pi)

    def test_radius_scaling(self):
        # A_delta(r) scales as r^{delta-1} (Equation 12).
        assert math.isclose(sphere_surface_area(3, 2.0), 4 * math.pi * 4.0)

    def test_4d(self):
        # A_4(1) = 2 pi^2.
        assert math.isclose(sphere_surface_area(4), 2 * math.pi**2)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            sphere_surface_area(0)

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            sphere_surface_area(3, -1.0)


class TestSinPowerIntegral:
    @pytest.mark.parametrize("power", [0, 1, 2, 3, 5, 8])
    @pytest.mark.parametrize("theta", [0.01, 0.3, math.pi / 4, math.pi / 2])
    def test_matches_quadrature(self, power, theta):
        expected, _ = integrate.quad(lambda p: math.sin(p) ** power, 0.0, theta)
        assert math.isclose(sin_power_integral(theta, power), expected, rel_tol=1e-9)

    def test_zero_angle(self):
        assert sin_power_integral(0.0, 3) == 0.0

    def test_power_zero_is_theta(self):
        assert math.isclose(sin_power_integral(0.7, 0), 0.7)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            sin_power_integral(0.5, -1)

    def test_rejects_out_of_range_theta(self):
        with pytest.raises(ValueError):
            sin_power_integral(2.0, 2)


class TestCapArea:
    def test_2d_arc(self):
        # Both sides of the pole: arc length 2 * theta.
        assert math.isclose(cap_area(2, 0.5), 1.0)

    def test_3d_closed_form(self):
        # Spherical cap area = 2 pi (1 - cos theta).
        theta = 0.7
        assert math.isclose(cap_area(3, theta), 2 * math.pi * (1 - math.cos(theta)))

    def test_half_sphere(self):
        # theta = pi/2 gives half the sphere's surface.
        assert math.isclose(cap_area(3, math.pi / 2), sphere_surface_area(3) / 2)

    @pytest.mark.parametrize("dim", [3, 4, 5])
    def test_monotone_in_theta(self, dim):
        thetas = np.linspace(0.05, math.pi / 2, 12)
        areas = [cap_area(dim, float(t)) for t in thetas]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_orthant_area_is_sphere_fraction(self):
        for dim in (2, 3, 4):
            assert math.isclose(
                orthant_area(dim), sphere_surface_area(dim) / 2**dim
            )

    def test_cap_fraction_small_cone(self):
        # A pi/50 cap is a small fraction of the 3-orthant.
        frac = cap_fraction_of_orthant(3, math.pi / 50)
        assert 0.0 < frac < 0.01


class TestCapCdf:
    @pytest.mark.parametrize("dim", [2, 3, 4, 5, 7])
    def test_cdf_endpoints(self, dim):
        theta = 0.6
        assert math.isclose(cap_cdf(0.0, theta, dim), 0.0, abs_tol=1e-12)
        assert math.isclose(cap_cdf(theta, theta, dim), 1.0, rel_tol=1e-9)

    @pytest.mark.parametrize("dim", [2, 3, 4, 6])
    def test_cdf_monotone(self, dim):
        theta = 1.0
        xs = np.linspace(0.0, theta, 30)
        values = cap_cdf(xs, theta, dim)
        assert np.all(np.diff(values) >= -1e-12)

    def test_3d_closed_form(self):
        # Equation 15.
        theta, x = 0.9, 0.4
        expected = (1 - math.cos(x)) / (1 - math.cos(theta))
        assert math.isclose(cap_cdf(x, theta, 3), expected, rel_tol=1e-12)

    @pytest.mark.parametrize("dim", [4, 5])
    def test_general_matches_quadrature(self, dim):
        theta, x = 1.1, 0.5
        num, _ = integrate.quad(lambda p: math.sin(p) ** (dim - 2), 0, x)
        den, _ = integrate.quad(lambda p: math.sin(p) ** (dim - 2), 0, theta)
        assert math.isclose(cap_cdf(x, theta, dim), num / den, rel_tol=1e-8)

    @pytest.mark.parametrize("dim", [2, 3, 4, 5])
    def test_inverse_round_trip(self, dim, rng):
        theta = 0.8
        ys = rng.uniform(0.0, 1.0, size=50)
        xs = inverse_cap_cdf(ys, theta, dim)
        back = cap_cdf(xs, theta, dim)
        assert np.allclose(back, ys, atol=1e-9)

    def test_inverse_endpoints(self):
        theta = 0.5
        for dim in (2, 3, 4):
            assert math.isclose(inverse_cap_cdf(0.0, theta, dim), 0.0, abs_tol=1e-12)
            assert math.isclose(inverse_cap_cdf(1.0, theta, dim), theta, rel_tol=1e-9)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            cap_cdf(0.1, 0.0, 3)
        with pytest.raises(ValueError):
            inverse_cap_cdf(0.5, -0.1, 3)

    def test_rejects_x_out_of_range(self):
        with pytest.raises(ValueError):
            cap_cdf(0.7, 0.5, 3)


class TestRiemannTable:
    def test_table_shape_and_endpoints(self):
        table = riemann_cdf_table(0.6, 4, 100)
        assert table.shape == (101,)
        assert table[0] == 0.0
        assert math.isclose(table[-1], 1.0)

    def test_table_monotone(self):
        table = riemann_cdf_table(1.0, 5, 256)
        assert np.all(np.diff(table) >= 0)

    @pytest.mark.parametrize("dim", [3, 4, 6])
    def test_table_converges_to_cdf(self, dim):
        theta = 0.9
        partitions = 5000
        table = riemann_cdf_table(theta, dim, partitions)
        xs = np.linspace(0.0, theta, partitions + 1)
        exact = cap_cdf(xs, theta, dim)
        assert np.max(np.abs(table - exact)) < 1e-4

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            riemann_cdf_table(0.5, 3, 0)

    def test_dim2_table_linear(self):
        # sin^0 = 1: the CDF is linear in the angle.
        table = riemann_cdf_table(0.4, 2, 64)
        assert np.allclose(table, np.linspace(0, 1, 65), atol=1e-12)
