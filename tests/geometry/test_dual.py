"""Unit tests for the dual-space machinery (Equations 1, 5-7)."""

import math

import numpy as np
import pytest

from repro.geometry.dual import (
    dominates,
    dual_hyperplane_value,
    exchange_angle_2d,
    exchange_hyperplane,
    pairwise_exchange_hyperplanes,
)


class TestDualHyperplane:
    def test_score_reciprocal_relation(self):
        # d(t) meets the ray of w at (1/f_w(t)) * w  (section 2.1.2): the
        # dual value at that point is exactly 1.
        t = np.array([0.83, 0.65])
        w = np.array([1.0, 1.0])
        score = float(t @ w)
        intersection = w / score
        assert math.isclose(dual_hyperplane_value(t, intersection), 1.0)

    def test_value_is_score_at_weights(self):
        t = np.array([0.2, 0.3, 0.5])
        w = np.array([1.0, 2.0, 0.5])
        assert math.isclose(dual_hyperplane_value(t, w), 0.2 + 0.6 + 0.25)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(np.array([0.9, 0.9]), np.array([0.5, 0.5]))

    def test_partial_not_dominating(self):
        assert not dominates(np.array([0.9, 0.1]), np.array([0.1, 0.9]))

    def test_equal_items_do_not_dominate(self):
        t = np.array([0.5, 0.5])
        assert not dominates(t, t)

    def test_dominance_one_attribute_margin(self):
        assert dominates(np.array([0.5, 0.6]), np.array([0.5, 0.5]))

    def test_asymmetry(self):
        a, b = np.array([0.9, 0.9]), np.array([0.5, 0.5])
        assert dominates(a, b) and not dominates(b, a)

    def test_tolerance(self):
        a, b = np.array([0.5, 0.5]), np.array([0.505, 0.2])
        assert not dominates(a, b)
        assert dominates(a, b, tol=0.01)

    def test_dominated_pairs_never_exchange(self, rng):
        # If t dominates t', t scores higher under every positive weight.
        for _ in range(50):
            t = rng.uniform(0.3, 1.0, size=3)
            t_prime = t - rng.uniform(0.01, 0.2, size=3)
            w = rng.uniform(0.01, 1.0, size=3)
            assert dominates(t, t_prime)
            assert float(t @ w) > float(t_prime @ w)


class TestExchangeHyperplane:
    def test_normal_is_difference(self):
        ti, tj = np.array([0.8, 0.2, 0.1]), np.array([0.1, 0.6, 0.3])
        assert np.allclose(exchange_hyperplane(ti, tj), ti - tj)

    def test_positive_halfspace_ranks_ti_higher(self, rng):
        for _ in range(50):
            ti = rng.uniform(0.0, 1.0, size=4)
            tj = rng.uniform(0.0, 1.0, size=4)
            h = exchange_hyperplane(ti, tj)
            w = rng.uniform(0.0, 1.0, size=4)
            value = float(h @ w)
            if value > 0:
                assert float(ti @ w) > float(tj @ w)
            elif value < 0:
                assert float(ti @ w) < float(tj @ w)


class TestExchangeAngle2D:
    def test_paper_formula(self):
        # Equation 6 on t1, t4 of the running example.
        t1, t4 = np.array([0.63, 0.71]), np.array([0.70, 0.68])
        theta = exchange_angle_2d(t1, t4)
        expected = math.atan((0.70 - 0.63) / (0.71 - 0.68))
        assert math.isclose(theta, expected)

    def test_symmetric_in_pair(self):
        a, b = np.array([0.6, 0.7]), np.array([0.8, 0.5])
        assert math.isclose(exchange_angle_2d(a, b), exchange_angle_2d(b, a))

    def test_scores_tie_at_exchange(self, rng):
        for _ in range(50):
            a = rng.uniform(0.0, 1.0, size=2)
            b = np.array([a[0] + 0.1, a[1] - 0.07])  # guaranteed non-dominating
            theta = exchange_angle_2d(a, b)
            w = np.array([math.cos(theta), math.sin(theta)])
            assert math.isclose(float(a @ w), float(b @ w), abs_tol=1e-12)

    def test_order_flips_across_exchange(self):
        a, b = np.array([0.5, 0.8]), np.array([0.8, 0.5])
        theta = exchange_angle_2d(a, b)
        before = np.array([math.cos(theta - 0.01), math.sin(theta - 0.01)])
        after = np.array([math.cos(theta + 0.01), math.sin(theta + 0.01)])
        assert (float(a @ before) > float(b @ before)) != (
            float(a @ after) > float(b @ after)
        )

    def test_identical_items_raise(self):
        t = np.array([0.5, 0.5])
        with pytest.raises(ValueError):
            exchange_angle_2d(t, t.copy())

    def test_dominating_pair_raises(self):
        with pytest.raises(ValueError):
            exchange_angle_2d(np.array([0.9, 0.9]), np.array([0.1, 0.1]))

    def test_angle_in_quadrant(self, rng):
        for _ in range(50):
            a = rng.uniform(0.1, 0.9, size=2)
            b = np.array([a[0] + 0.05, a[1] - 0.05])
            theta = exchange_angle_2d(a, b)
            assert 0.0 <= theta <= math.pi / 2


class TestPairwiseExchangeHyperplanes:
    def test_counts_exclude_dominating_pairs(self):
        values = np.array(
            [
                [0.9, 0.9],  # dominates the others
                [0.5, 0.4],
                [0.4, 0.5],
            ]
        )
        normals, pairs = pairwise_exchange_hyperplanes(values)
        # Only the (1, 2) pair is non-dominating.
        assert normals.shape == (1, 2)
        assert pairs.tolist() == [[1, 2]]

    def test_normals_match_item_differences(self, rng):
        values = rng.uniform(0.0, 1.0, size=(10, 3))
        normals, pairs = pairwise_exchange_hyperplanes(values)
        for normal, (i, j) in zip(normals, pairs):
            assert np.allclose(normal, values[i] - values[j])

    def test_identical_items_produce_no_hyperplane(self):
        values = np.array([[0.5, 0.5], [0.5, 0.5]])
        normals, pairs = pairwise_exchange_hyperplanes(values)
        assert normals.shape[0] == 0

    def test_paper_example_count(self, paper_values):
        # All 10 pairs of the running example are comparable by x1/x2
        # trade-off except dominating ones; Figure 1c shows 10 exchange
        # rays bounding 11 regions, so exactly 10 non-dominating pairs.
        normals, _ = pairwise_exchange_hyperplanes(paper_values)
        assert normals.shape[0] == 10
