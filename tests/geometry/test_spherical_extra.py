"""Cross-validation of spherical-cap math against Monte-Carlo geometry."""

import math

import numpy as np
import pytest

from repro.geometry.spherical import (
    cap_area,
    cap_fraction_of_orthant,
    orthant_area,
    sphere_surface_area,
)
from repro.sampling.uniform import sample_sphere


class TestCapAreaMonteCarlo:
    @pytest.mark.parametrize("dim", [3, 4, 5])
    @pytest.mark.parametrize("theta", [0.3, 0.8, math.pi / 2])
    def test_cap_fraction_matches_sampling(self, dim, theta, rng):
        # Fraction of uniform sphere points within angle theta of a pole
        # must equal cap_area / sphere_area.
        pts = sample_sphere(dim, 60_000, rng)
        cosines = pts[:, -1]
        empirical = float(np.mean(cosines >= math.cos(theta)))
        analytic = cap_area(dim, theta) / sphere_surface_area(dim)
        assert abs(empirical - analytic) < 0.01

    def test_half_sphere_fraction(self):
        for dim in (2, 3, 4, 6):
            assert math.isclose(
                cap_area(dim, math.pi / 2) / sphere_surface_area(dim), 0.5
            )

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_orthant_fraction_matches_sampling(self, dim, rng):
        pts = sample_sphere(dim, 60_000, rng)
        in_orthant = float(np.mean(np.all(pts >= 0, axis=1)))
        analytic = orthant_area(dim) / sphere_surface_area(dim)
        assert abs(in_orthant - analytic) < 0.01

    def test_cap_fraction_of_orthant_consistency(self):
        # For a small cap fully inside the orthant the fraction times the
        # orthant area equals the cap area.
        dim, theta = 3, 0.1
        assert math.isclose(
            cap_fraction_of_orthant(dim, theta) * orthant_area(dim),
            cap_area(dim, theta),
            rel_tol=1e-12,
        )

    def test_small_angle_asymptotics(self):
        # For theta -> 0, cap area ~ volume of a (d-1)-ball of radius
        # theta: pi^{(d-1)/2} theta^{d-1} / Gamma((d+1)/2).
        from scipy.special import gamma

        for dim in (3, 4, 5):
            theta = 1e-3
            approx = (
                math.pi ** ((dim - 1) / 2)
                * theta ** (dim - 1)
                / gamma((dim + 1) / 2)
            )
            assert math.isclose(cap_area(dim, theta), approx, rel_tol=1e-4)
