"""Unit tests for polar-angle conversion and similarity helpers."""

import math

import numpy as np
import pytest

from repro.errors import InvalidWeightsError
from repro.geometry.angles import (
    angle_between,
    angle_to_cosine,
    angles_to_weights,
    as_unit_vector,
    cosine_similarity,
    cosine_to_angle,
    validate_weights,
    weights_to_angles,
)


class TestValidateWeights:
    def test_accepts_valid_vector(self):
        w = validate_weights([1.0, 2.0, 3.0])
        assert w.dtype == np.float64
        assert w.tolist() == [1.0, 2.0, 3.0]

    def test_returns_copy(self):
        src = np.array([1.0, 1.0])
        w = validate_weights(src)
        w[0] = 99.0
        assert src[0] == 1.0

    def test_rejects_negative(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([1.0, -0.1])

    def test_rejects_all_zero(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([1.0, float("inf")])

    def test_rejects_wrong_dim(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([1.0, 2.0], dim=3)

    def test_rejects_scalar(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights(1.0)

    def test_rejects_single_attribute(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([1.0])

    def test_rejects_matrix(self):
        with pytest.raises(InvalidWeightsError):
            validate_weights([[1.0, 2.0]])


class TestUnitVector:
    def test_normalises(self):
        u = as_unit_vector(np.array([3.0, 4.0]))
        assert np.allclose(u, [0.6, 0.8])

    def test_unit_unchanged(self):
        u = as_unit_vector(np.array([0.0, 1.0]))
        assert np.allclose(u, [0.0, 1.0])

    def test_rejects_zero(self):
        with pytest.raises(InvalidWeightsError):
            as_unit_vector(np.zeros(3))


class TestAngleRoundTrip:
    def test_2d_diagonal(self):
        angles = weights_to_angles(np.array([1.0, 1.0]))
        assert angles.shape == (1,)
        assert math.isclose(angles[0], math.pi / 4)

    def test_2d_axes(self):
        # theta measured from x2 axis in our convention.
        assert math.isclose(weights_to_angles(np.array([0.0, 1.0]))[0], 0.0)
        assert math.isclose(
            weights_to_angles(np.array([1.0, 0.0]))[0], math.pi / 2
        )

    def test_3d_diagonal_round_trip(self):
        w = np.array([1.0, 1.0, 1.0])
        u = angles_to_weights(weights_to_angles(w))
        assert np.allclose(u, w / np.linalg.norm(w))

    @pytest.mark.parametrize("dim", [2, 3, 4, 5, 7])
    def test_round_trip_random(self, dim, rng):
        for _ in range(25):
            w = rng.uniform(0.01, 1.0, size=dim)
            u = angles_to_weights(weights_to_angles(w))
            assert np.allclose(u, w / np.linalg.norm(w), atol=1e-10)

    def test_round_trip_with_zeros(self):
        w = np.array([0.0, 0.5, 0.0, 0.5])
        u = angles_to_weights(weights_to_angles(w))
        assert np.allclose(u, w / np.linalg.norm(w), atol=1e-10)

    def test_angles_in_range(self, rng):
        for _ in range(25):
            w = rng.uniform(0.0, 1.0, size=4) + 1e-9
            angles = weights_to_angles(w)
            assert np.all(angles >= 0.0)
            assert np.all(angles <= math.pi / 2 + 1e-12)

    def test_rejects_out_of_range_angles(self):
        with pytest.raises(InvalidWeightsError):
            angles_to_weights(np.array([math.pi]))

    def test_rejects_negative_angles(self):
        with pytest.raises(InvalidWeightsError):
            angles_to_weights(np.array([-0.1]))

    def test_rejects_empty_angles(self):
        with pytest.raises(InvalidWeightsError):
            angles_to_weights(np.array([]))


class TestSimilarity:
    def test_cosine_identical_rays(self):
        assert math.isclose(
            cosine_similarity(np.array([1.0, 1.0]), np.array([2.0, 2.0])), 1.0
        )

    def test_cosine_orthogonal(self):
        assert math.isclose(
            cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])),
            0.0,
            abs_tol=1e-12,
        )

    def test_angle_between_diagonal_and_axis(self):
        a = angle_between(np.array([1.0, 1.0]), np.array([1.0, 0.0]))
        assert math.isclose(a, math.pi / 4)

    def test_cosine_angle_inverse(self):
        for cos in (0.5, 0.9, 0.998, 1.0):
            assert math.isclose(angle_to_cosine(cosine_to_angle(cos)), cos)

    def test_paper_quoted_equivalences(self):
        # Section 6.2: "0.998 cosine similarity (theta = pi/50)"; the
        # pi/100 pairing with 0.999 in the same section is rounded more
        # loosely (cos(pi/100) = 0.99951), so we only assert the tighter one.
        assert math.isclose(cosine_to_angle(0.998), math.pi / 50, rel_tol=0.01)
        assert angle_to_cosine(math.pi / 100) > 0.999

    def test_cosine_to_angle_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            cosine_to_angle(1.5)
