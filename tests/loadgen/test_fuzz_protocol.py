"""Property-based wire-protocol fuzzing against a live server.

The contract under test, for *any* frame: exactly one response line,
strictly valid (interchange) JSON, a structured error from the closed
code vocabulary when refused — and the connection survives (a
follow-up ping answers).  ``REPRO_FUZZ_EXAMPLES`` scales the example
budget (CI's fuzz-smoke job raises it).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.loadgen import WorkloadSpec, make_dataset
from repro.loadgen import fuzz
from repro.server import (
    ServeClient,
    ServerConfig,
    SessionRegistry,
    serve_in_thread,
)

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

FUZZ_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.large_base_example,
    ],
)


@pytest.fixture(scope="module")
def server():
    registry = SessionRegistry(seed=7, parallel=False)
    registry.add_dataset(
        "default", make_dataset(WorkloadSpec(dataset_items=120))
    )
    handle = serve_in_thread(registry, config=ServerConfig())
    yield handle
    handle.stop()


class TestMalformedFrames:
    def test_every_mutator_class_on_one_connection(self, server):
        """Deterministic sweep: every mutator class, all interleaved on
        a single connection that must survive the whole gauntlet."""
        rng = np.random.default_rng(20180905)
        with ServeClient(host=server.host, port=server.port) as client:
            for name, build, codes in fuzz.FRAME_MUTATORS:
                for _ in range(3):
                    fuzz.check_wire_contract(client, build(rng), codes)

    @given(seed=st.integers(0, 2**32 - 1))
    @FUZZ_SETTINGS
    def test_random_malformed_frame_contract(self, server, seed):
        rng = np.random.default_rng(seed)
        name, frame, codes = fuzz.random_frame(rng)
        with ServeClient(host=server.host, port=server.port) as client:
            fuzz.check_wire_contract(client, frame, codes)

    @given(
        seed=st.integers(0, 2**32 - 1),
        payload=st.dictionaries(
            st.text(max_size=8),
            st.one_of(
                st.none(), st.booleans(), st.integers(-10, 10**6),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=12),
                st.lists(st.integers(0, 5), max_size=4),
            ),
            max_size=5,
        ),
    )
    @FUZZ_SETTINGS
    def test_random_json_objects_never_kill_the_connection(
        self, server, seed, payload
    ):
        """Arbitrary JSON objects (valid frames, arbitrary content) get
        a structured answer, echo scalar ids, and keep the line open."""
        rng = np.random.default_rng(seed)
        if rng.random() < 0.5:
            payload["op"] = [
                "ping", "hello", "stats", "top_stable", "nonsense"
            ][int(rng.integers(5))]
        frame = json.dumps(payload).encode()
        with ServeClient(host=server.host, port=server.port) as client:
            response = fuzz.check_wire_contract(client, frame)
            request_id = payload.get("id")
            if request_id is not None and isinstance(
                request_id, (str, int, bool)
            ):
                assert response.get("id") == request_id


class TestFraming:
    @given(seed=st.integers(0, 2**32 - 1))
    @FUZZ_SETTINGS
    def test_split_frames_answer_once(self, server, seed):
        """A valid frame written in arbitrary chunks (byte-dribbled
        TCP) still yields exactly one response."""
        rng = np.random.default_rng(seed)
        frame = json.dumps({"op": "ping", "id": int(seed % 1000)}).encode()
        cuts = sorted(
            int(c)
            for c in rng.integers(1, len(frame), size=int(rng.integers(1, 4)))
        )
        chunks, start = [], 0
        for cut in cuts + [len(frame)]:
            if cut > start:
                chunks.append(frame[start:cut])
                start = cut
        with ServeClient(host=server.host, port=server.port) as client:
            for chunk in chunks:
                client._file.write(chunk)
                client._file.flush()
            client._file.write(b"\n")
            client._file.flush()
            response = fuzz.strict_loads(client._file.readline())
            assert response["ok"] is True and response["id"] == seed % 1000
            assert client.ping()["ok"] is True

    @given(seed=st.integers(0, 2**32 - 1))
    @FUZZ_SETTINGS
    def test_interleaved_good_and_bad_frames_stay_ordered(self, server, seed):
        """A pipelined burst mixing valid and malformed frames answers
        one response per frame, in order, ids echoed where given."""
        rng = np.random.default_rng(seed)
        frames, expect_ids = [], []
        for i in range(int(rng.integers(2, 6))):
            if rng.random() < 0.5:
                frames.append(
                    json.dumps({"op": "ping", "id": i}).encode()
                )
                expect_ids.append(i)
            else:
                name, frame, _ = fuzz.random_frame(rng)
                # Oversized frames aside (they dominate the buffer),
                # any malformed frame can ride in the burst.
                if name == "oversized":
                    frame = b"not json"
                frames.append(frame)
                expect_ids.append(None)
        with ServeClient(host=server.host, port=server.port) as client:
            client._file.write(b"\n".join(frames) + b"\n")
            client._file.flush()
            for expected in expect_ids:
                response = fuzz.strict_loads(client._file.readline())
                assert isinstance(response, dict) and "ok" in response
                if expected is not None:
                    assert response["ok"] is True
                    assert response["id"] == expected
            assert client.ping()["ok"] is True


class TestRegressionFindings:
    """Wire-level regressions for the fuzzer findings fixed in-tree."""

    def test_nan_id_answers_strict_json_error(self, server):
        with ServeClient(host=server.host, port=server.port) as client:
            response = fuzz.check_wire_contract(
                client, b'{"op": "ping", "id": NaN}', ("bad_json",)
            )
            assert response["ok"] is False

    def test_overflow_id_never_echoes_infinity(self, server):
        with ServeClient(host=server.host, port=server.port) as client:
            client._file.write(b'{"op": "ping", "id": 1e999}\n')
            client._file.flush()
            line = client._file.readline()
            assert b"Infinity" not in line
            response = fuzz.strict_loads(line)
            assert response["error"]["code"] == "bad_request"
            assert client.ping()["ok"] is True

    def test_deep_nesting_keeps_connection(self, server):
        depth = 60_000
        frame = b"[" * depth + b"]" * depth
        with ServeClient(host=server.host, port=server.port) as client:
            fuzz.check_wire_contract(client, frame, ("bad_json",))
