"""Snapshot-container fuzzing: every mutation refuses typed or restores
byte-identically.

The corpus half (``fuzz.CORRUPTION_CORPUS``) pins each named corruption
class to its typed :class:`SnapshotError` subclass and message.  The
hypothesis half throws random byte damage and CRC-valid crafted headers
at restore and holds the oracle: typed refusal, or answers equal to the
undamaged baseline — never an untyped crash, never silently wrong state.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import StabilitySession
from repro.loadgen import WorkloadSpec, make_dataset
from repro.loadgen import fuzz

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

FUZZ_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def probe(session):
    """The observable answers a restored session must reproduce."""
    results = session.top_stable(2, kind="topk_set", k=5, budget=300)
    return tuple(
        (r.ranking.order, r.stability, r.sample_count) for r in results
    )


@pytest.fixture(scope="module")
def corpus_target(tmp_path_factory):
    """One good snapshot: ``(pristine bytes, dataset, baseline answers)``."""
    dataset = make_dataset(WorkloadSpec(dataset_items=250))
    path = tmp_path_factory.mktemp("snap") / "good.snap"
    with StabilitySession(dataset, seed=11, parallel=False) as session:
        session.top_stable(2, kind="topk_set", k=5, budget=300)
        session.get_next(backend="randomized", budget=300)
        session.save(path)
    with StabilitySession.restore(path, dataset, parallel=False) as session:
        baseline = probe(session)
    return path.read_bytes(), dataset, baseline


class TestCorruptionCorpus:
    @pytest.mark.parametrize(
        "case", fuzz.CORRUPTION_CORPUS, ids=lambda case: case.name
    )
    def test_corpus_entry_raises_typed(self, case, corpus_target, tmp_path):
        data, dataset, _ = corpus_target
        path = tmp_path / f"{case.name}.snap"
        path.write_bytes(case.mutate(data))
        with pytest.raises(case.raises, match=case.match):
            StabilitySession.restore(path, dataset, parallel=False)

    def test_corpus_covers_every_error_type(self):
        from repro.errors import (
            SnapshotFormatError,
            SnapshotIntegrityError,
            SnapshotVersionError,
        )

        raised = {case.raises for case in fuzz.CORRUPTION_CORPUS}
        assert {
            SnapshotFormatError, SnapshotIntegrityError, SnapshotVersionError
        } <= raised

    def test_corpus_names_are_unique(self):
        names = [case.name for case in fuzz.CORRUPTION_CORPUS]
        assert len(set(names)) == len(names)


class TestRandomMutations:
    @given(seed=st.integers(0, 2**32 - 1))
    @FUZZ_SETTINGS
    def test_random_mutation_refuses_or_restores_exactly(
        self, corpus_target, tmp_path_factory, seed
    ):
        data, dataset, baseline = corpus_target
        rng = np.random.default_rng(seed)
        name, mutated = fuzz.random_snapshot_mutation(data, rng)
        path = tmp_path_factory.mktemp("mut") / f"{name}-{seed}.snap"
        path.write_bytes(mutated)
        outcome = fuzz.check_restore_contract(path, dataset, probe, baseline)
        assert outcome in ("refused", "equal")

    @given(seed=st.integers(0, 2**32 - 1))
    @FUZZ_SETTINGS
    def test_crafted_headers_never_crash_untyped(
        self, corpus_target, tmp_path_factory, seed
    ):
        """CRC-valid lies are the hard case: integrity checks pass, so
        only header validation stands between the file and restore."""
        data, dataset, baseline = corpus_target
        rng = np.random.default_rng(seed)
        mutated = fuzz.SNAPSHOT_MUTATORS[-1][1](data, rng)
        path = tmp_path_factory.mktemp("crafted") / f"h{seed}.snap"
        path.write_bytes(mutated)
        outcome = fuzz.check_restore_contract(path, dataset, probe, baseline)
        assert outcome in ("refused", "equal")

    def test_pristine_snapshot_restores_equal(self, corpus_target, tmp_path):
        """The oracle's control arm: unmutated bytes restore "equal"."""
        data, dataset, baseline = corpus_target
        path = tmp_path / "pristine.snap"
        path.write_bytes(data)
        assert (
            fuzz.check_restore_contract(path, dataset, probe, baseline)
            == "equal"
        )
