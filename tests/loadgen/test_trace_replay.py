"""Trace record/replay: the answer-equivalence acceptance criterion."""

from __future__ import annotations

import json

import pytest

from repro.loadgen import (
    WorkloadSpec,
    generate_plan,
    read_trace,
    replay_trace,
    run_load,
    strip_response,
)
from repro.loadgen.runner import hosted_server
from repro.loadgen.trace import TraceError, compare_records


@pytest.fixture(scope="module")
def spec() -> WorkloadSpec:
    return WorkloadSpec(
        seed=11, requests=70, connections=4, arrival_rate=900.0,
        churn=0.1, pipeline=0.4, dataset_items=200,
    )


@pytest.fixture(scope="module")
def recorded(spec, tmp_path_factory):
    """One recorded run: the trace file plus its in-memory records."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    result = run_load(generate_plan(spec), trace_path=path)
    return path, result


class TestTraceFile:
    def test_round_trips(self, spec, recorded):
        path, result = recorded
        read_spec, records = read_trace(path)
        assert read_spec == spec
        assert records == result.records

    def test_rejects_non_traces(self, tmp_path):
        path = tmp_path / "nope.jsonl"
        path.write_text('{"kind": "something else"}\n')
        with pytest.raises(TraceError, match="not a loadgen trace"):
            read_trace(path)

    def test_rejects_bad_version(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text('{"kind": "repro.loadgen.trace", "version": 9}\n')
        with pytest.raises(TraceError, match="version"):
            read_trace(path)

    def test_rejects_missing_records(self, recorded, tmp_path):
        path, _ = recorded
        lines = path.read_text().splitlines()
        clipped = tmp_path / "clipped.jsonl"
        clipped.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(TraceError, match="truncated"):
            read_trace(clipped)

    def test_rejects_shuffled_duplicate_index(self, recorded, tmp_path):
        path, _ = recorded
        lines = path.read_text().splitlines()
        lines[2] = lines[1]  # duplicate record index
        bad = tmp_path / "dup.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="not 0..n-1"):
            read_trace(bad)

    def test_strip_response_removes_volatile_fields(self):
        response = {
            "ok": True, "result": [1], "seconds": 0.2, "cached": True,
            "cost": {}, "trace": {}, "id": 7,
        }
        assert strip_response(response) == {"ok": True, "result": [1]}


class TestReplayEquivalence:
    def test_recorded_trace_replays_equivalent(self, recorded):
        """The acceptance criterion: same build, same spec -> same
        answers, across fresh server state and fresh interleavings."""
        path, _ = recorded
        report = replay_trace(path)
        assert report.equivalent, report.to_dict()
        assert report.comparison.compared > 20
        assert report.comparison.total == 70

    def test_replay_against_external_server(self):
        """--address mode: an idempotent-only mix replays equivalent
        against one *shared live* server (get_next excluded: its cursor
        advances across runs by design)."""
        spec = WorkloadSpec(
            seed=4, requests=40, connections=3, arrival_rate=900.0,
            mix=(("top_stable", 0.6), ("stability_of", 0.3),
                 ("explain", 0.1)),
            dataset_items=200,
        )
        plan = generate_plan(spec)
        with hosted_server(plan) as handle:
            address = f"{handle.host}:{handle.port}"
            first = run_load(plan, address=address)
            second = run_load(plan, address=address)
        report = compare_records(first.records, second.records)
        assert report.equivalent, report.to_dict()

    def test_tampered_response_is_detected(self, recorded, tmp_path):
        """The oracle actually fires: flip one recorded answer and the
        replay must report a mismatch."""
        path, _ = recorded
        lines = path.read_text().splitlines()
        edited, target = [], None
        for line in lines:
            record = json.loads(line)
            if (
                target is None
                and record.get("op") == "top_stable"
                and record.get("response", {}).get("ok")
            ):
                record["response"]["result"][0]["stability"] = 0.123456789
                target = record["i"]
            edited.append(json.dumps(record))
        assert target is not None
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(edited) + "\n")
        report = replay_trace(tampered)
        assert not report.equivalent
        kinds = {m["kind"] for m in report.comparison.mismatches}
        assert "answer" in kinds, report.comparison.mismatches

    def test_tampered_request_is_refused(self, recorded, tmp_path):
        """Edited requests don't get compared — they fail fast: the
        spec in the header regenerates the true request stream."""
        path, _ = recorded
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["request"]["op"] = "ping"
        lines[1] = json.dumps(record)
        tampered = tmp_path / "edited.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="edited"):
            replay_trace(tampered)

    def test_load_dependent_errors_are_skipped_not_compared(self):
        left = [{"i": 0, "request": {"op": "top_stable"},
                 "response": {"ok": False,
                              "error": {"code": "busy", "message": "x"}}}]
        right = [{"i": 0, "request": {"op": "top_stable"},
                  "response": {"ok": True, "result": []}}]
        report = compare_records(left, right)
        assert report.equivalent
        assert report.skipped_load_dependent == 1
