"""Transport-layer chaos injection and the fault-tolerant oracle modes.

The headline acceptance criterion lives here: a fault-free trace
replayed under chaos *with retries* yields byte-identical answers for
every idempotent op, and the residual fault codes are exactly the
load-dependent vocabulary the oracle is allowed to skip.
"""

from __future__ import annotations

import pytest

from repro.loadgen import WorkloadSpec, generate_plan, replay_trace, run_load
from repro.loadgen.trace import LOAD_DEPENDENT_CODES, compare_records
from repro.server import RetryPolicy

CHAOS = "delay:p=0.1,ms=20;error:p=0.1;drop:p=0.05"


def _record(i, op, response, **request_fields):
    request = {"op": op, **request_fields}
    return {"i": i, "request": request, "op": op, "response": response}


def _ok(payload):
    return {"ok": True, **payload}


def _err(code):
    return {"ok": False, "error": {"code": code, "message": "x"}}


class TestOracleModes:
    """compare_records get_next handling under faults."""

    GN = {"kind": "topk_set", "k": 3, "backend": "randomized", "budget": 100}

    def test_subset_accepts_a_prefix_of_the_handout_sequence(self):
        expected = [
            _record(0, "get_next", _ok({"ranking": [1]}), **self.GN),
            _record(1, "get_next", _ok({"ranking": [2]}), **self.GN),
            _record(2, "get_next", _ok({"ranking": [3]}), **self.GN),
        ]
        observed = [
            _record(0, "get_next", _ok({"ranking": [1]}), **self.GN),
            _record(1, "get_next", _err("unavailable"), **self.GN),
            _record(2, "get_next", _ok({"ranking": [2]}), **self.GN),
        ]
        report = compare_records(expected, observed, get_next_mode="subset")
        assert report.equivalent, report.to_dict()
        assert report.compared == 2
        assert report.skipped_load_dependent == 1

    def test_subset_rejects_answers_outside_the_sequence(self):
        expected = [
            _record(0, "get_next", _ok({"ranking": [1]}), **self.GN),
        ]
        observed = [
            _record(0, "get_next", _ok({"ranking": [9]}), **self.GN),
        ]
        report = compare_records(expected, observed, get_next_mode="subset")
        assert not report.equivalent
        assert report.mismatches[0]["kind"] == "multiset_subset"
        assert report.mismatches[0]["excess"] == 1

    def test_skip_mode_never_compares_get_next(self):
        expected = [
            _record(0, "get_next", _ok({"ranking": [1]}), **self.GN),
            _record(1, "top_stable", _ok({"result": [1]}), m=1),
        ]
        observed = [
            _record(0, "get_next", _ok({"ranking": [7]}), **self.GN),
            _record(1, "top_stable", _ok({"result": [1]}), m=1),
        ]
        report = compare_records(expected, observed, get_next_mode="skip")
        assert report.equivalent, report.to_dict()
        assert report.skipped_get_next == 1
        assert report.compared == 1

    def test_strict_is_the_default_and_bad_mode_is_rejected(self):
        with pytest.raises(ValueError, match="get_next_mode"):
            compare_records([], [], get_next_mode="lenient")

    def test_exact_ops_still_compare_strictly_in_subset_mode(self):
        expected = [_record(0, "top_stable", _ok({"result": [1]}), m=1)]
        observed = [_record(0, "top_stable", _ok({"result": [2]}), m=1)]
        report = compare_records(expected, observed, get_next_mode="subset")
        assert not report.equivalent
        assert report.mismatches[0]["kind"] == "answer"


class TestChaosReplay:
    """End to end: record fault-free, replay under chaos with retries."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        spec = WorkloadSpec(
            seed=13, requests=60, connections=4, arrival_rate=900.0,
            churn=0.1, pipeline=0.4, dataset_items=200,
        )
        path = tmp_path_factory.mktemp("chaos") / "clean.jsonl"
        run_load(generate_plan(spec), trace_path=path)
        return path

    def test_chaos_with_retries_stays_equivalent(self, trace_path):
        """The acceptance criterion: answers under injected faults are
        byte-identical to the fault-free run once retries engage."""
        report = replay_trace(
            trace_path,
            chaos=CHAOS,
            chaos_seed=2,
            retry=RetryPolicy(
                max_attempts=6, base_delay=0.001, max_delay=0.02, seed=0
            ),
            time_scale=0.2,
        )
        assert report.equivalent, report.to_dict()
        assert report.comparison.compared > 10
        # Every residual error is in the load-dependent vocabulary —
        # nothing leaked an answer-changing failure.
        assert set(report.load.error_codes) <= LOAD_DEPENDENT_CODES | {
            "exhausted", "infeasible", "no_state_dir", "busy"
        }

    def test_chaos_requires_self_hosting(self, trace_path):
        with pytest.raises(ValueError, match="self-hosted"):
            replay_trace(trace_path, address="127.0.0.1:1", chaos=CHAOS)

    def test_retried_requests_are_counted(self, trace_path):
        report = replay_trace(
            trace_path,
            chaos="error:p=0.3",
            chaos_seed=5,
            retry=True,
            time_scale=0.2,
        )
        assert report.equivalent, report.to_dict()
        assert report.load.retried > 0
        assert report.to_dict()["load"]["retried"] == report.load.retried
