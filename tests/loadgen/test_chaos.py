"""Chaos drills: SIGKILL workers mid-observe and servers mid-checkpoint.

Two recovery contracts, asserted end to end:

- killing every process-pool worker while a served query is sampling
  must rescue the pass in-process with a **byte-identical** tally — the
  client sees the same answer a serial run produces, never an error;
- SIGKILLing the whole server while it is checkpointing after every
  request must leave the state dir restorable (atomic snapshot writes),
  and a warm restart must answer **byte-identically** to the killed
  server.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import StabilitySession
from repro.cli import load_csv_dataset
from repro.loadgen import WorkloadSpec, make_dataset
from repro.server import (
    ServeClient,
    ServerConfig,
    SessionRegistry,
    serve_in_thread,
)

pytestmark = pytest.mark.slow


QUERY = {
    "op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
    "backend": "randomized", "budget": 500,
}


class TestWorkerKill:
    def test_worker_sigkill_mid_observe_answers_identically(self):
        """SIGKILL the shared-memory pool's workers while a cold query
        observes; the engine rescues in-process and the served answer
        matches a serial session byte for byte."""
        spec = WorkloadSpec(dataset_items=3000, dataset_seed=3)
        dataset = make_dataset(spec)
        budget = 60_000
        # One worker: killing a process whose sibling is still mid-spawn
        # can wedge the broken executor's management thread at exit.
        registry = SessionRegistry(
            seed=7, parallel=True, executor="process", max_workers=1
        )
        registry.add_dataset("default", dataset)
        handle = serve_in_thread(registry, config=ServerConfig())
        box: dict = {}
        try:
            def drive():
                with ServeClient(
                    host=handle.host, port=handle.port, timeout=90.0
                ) as c:
                    box["response"] = c.request(
                        {"op": "top_stable", "m": 2, "kind": "topk_set",
                         "k": 3, "budget": budget}
                    )

            thread = threading.Thread(target=drive)
            thread.start()
            # The engine is lazy: wait for the pool to exist, then
            # SIGKILL every live worker while the pass is in flight.
            killed = 0
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not killed:
                managed = handle.server.registry._active.get("default")
                engine = (
                    managed.session._observer._proc if managed else None
                )
                pool = getattr(engine, "_pool", None)
                workers = [
                    process
                    for process in list((pool._processes or {}).values())
                    if process.is_alive()
                ] if pool is not None and pool._processes else []
                if workers:
                    for process in workers:
                        process.kill()
                        killed += 1
                else:
                    time.sleep(0.002)
            thread.join(timeout=120)
            assert not thread.is_alive(), "query never answered"
            assert killed > 0, "pool never spun up — no chaos injected"
        finally:
            handle.stop()

        response = box["response"]
        assert response["ok"] is True, response
        with StabilitySession(dataset, seed=7, parallel=False) as ref:
            expected = ref.top_stable(
                2, kind="topk_set", k=3, budget=budget
            )
        got = response["result"]
        assert [r["ranking"] for r in got] == [
            [int(i) for i in e.ranking.order] for e in expected
        ]
        assert [r["stability"] for r in got] == [
            e.stability for e in expected
        ]
        assert [r["sample_count"] for r in got] == [
            e.sample_count for e in expected
        ]


def _start_server(csv_path, state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(csv_path),
            "--tcp", "127.0.0.1:0", "--state-dir", str(state_dir),
            "--checkpoint-every", "1", "--seed", "7", "--no-parallel",
        ],
        cwd="/root/repo",
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    import selectors

    selector = selectors.DefaultSelector()
    selector.register(proc.stderr, selectors.EVENT_READ)
    if not selector.select(timeout=60):
        proc.kill()
        raise AssertionError("server produced no announcement within 60s")
    line = proc.stderr.readline().decode()
    try:
        announcement = json.loads(line)
        host, port = announcement["serving"].split(":")
    except (ValueError, KeyError):
        proc.kill()
        raise AssertionError(f"server never announced: {line!r}")
    return proc, host, int(port)


class TestServerKill:
    def test_sigkill_mid_checkpoint_recovers_warm_and_identical(
        self, tmp_path
    ):
        rows = np.random.default_rng(41).uniform(size=(120, 3))
        csv_path = tmp_path / "items.csv"
        csv_path.write_text(
            "\n".join(
                ",".join(f"{value:.9f}" for value in row) for row in rows
            )
        )
        state_dir = tmp_path / "state"
        state_dir.mkdir()

        proc, host, port = _start_server(csv_path, state_dir)
        try:
            with ServeClient(host=host, port=port) as client:
                first = client.request(dict(QUERY))
                assert first["ok"] is True, first
                # checkpoint-every=1: every request below lands a
                # snapshot write, so the SIGKILL races checkpointing.
                stop = threading.Event()

                def hammer():
                    try:
                        with ServeClient(host=host, port=port) as c:
                            k = 2
                            while not stop.is_set():
                                c.request(
                                    {"op": "top_stable", "m": 1,
                                     "kind": "topk_set", "k": 2 + (k % 4),
                                     "budget": 400}
                                )
                                k += 1
                    except Exception:
                        pass  # the kill severs this connection

                thread = threading.Thread(target=hammer)
                thread.start()
                time.sleep(0.4)
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)
                stop.set()
                thread.join(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # The state dir survived the kill: snapshots restore typed.
        snapshots = sorted(state_dir.glob("*.snap"))
        assert snapshots, "no snapshot survived --checkpoint-every 1"
        dataset = load_csv_dataset(csv_path)
        with StabilitySession.restore(
            snapshots[0], dataset, parallel=False
        ) as restored:
            assert len(restored.stats()["configs"]) > 0

        # A warm restart answers the original query byte-identically.
        proc2, host2, port2 = _start_server(csv_path, state_dir)
        try:
            with ServeClient(host=host2, port=port2) as client:
                again = client.request(dict(QUERY))
        finally:
            proc2.kill()
            proc2.wait(timeout=30)
        assert again["ok"] is True, again
        assert again["result"] == first["result"]
