"""Workload synthesis: determinism, skew, batching, spec round-trips."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.loadgen import WorkloadSpec, generate_plan, make_dataset
from repro.loadgen.workload import OPS


def spec_with(**overrides) -> WorkloadSpec:
    base = dict(
        seed=5, requests=400, connections=6, arrival_rate=800.0,
        churn=0.08, pipeline=0.35, dataset_items=200,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestDeterminism:
    def test_same_spec_same_plan(self):
        spec = spec_with()
        assert generate_plan(spec) == generate_plan(spec)

    def test_different_seed_different_plan(self):
        assert generate_plan(spec_with(seed=1)) != generate_plan(
            spec_with(seed=2)
        )

    def test_dataset_is_a_pure_function_of_the_spec(self):
        spec = spec_with()
        a, b = make_dataset(spec), make_dataset(spec)
        np.testing.assert_array_equal(a.values, b.values)

    def test_spec_round_trips_through_json_dict(self):
        spec = spec_with(mix=(("top_stable", 0.7), ("get_next", 0.3)))
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec


class TestVocabulary:
    def test_one_budget_per_config_key(self):
        """The answer-determinism invariant: every (kind, k, backend)
        appears with exactly one budget across the whole plan."""
        plan = generate_plan(spec_with(requests=600))
        budgets_by_key: dict = {}
        for event in plan.events:
            request = event.request
            if request["op"] == "checkpoint":
                continue
            query = request.get("query", request)
            key = (query.get("kind"), query.get("k"), query.get("backend"))
            budget = query.get("budget", query.get("min_samples"))
            budgets_by_key.setdefault(key, set()).add(budget)
        assert budgets_by_key, "no query requests generated"
        for key, budgets in budgets_by_key.items():
            assert len(budgets) == 1, (key, budgets)

    def test_config_keys_are_distinct(self):
        plan = generate_plan(spec_with(n_configs=10))
        keys = [(c["kind"], c["k"], c["backend"]) for c in plan.configs]
        assert len(set(keys)) == len(keys) == 10

    def test_zipf_skew_makes_hot_keys(self):
        plan = generate_plan(spec_with(requests=2000, config_skew=1.5))
        counts = Counter()
        for event in plan.events:
            request = event.request
            query = request.get("query", request)
            if "kind" in query:
                counts[(query["kind"], query.get("k"))] += 1
        ordered = counts.most_common()
        assert ordered[0][1] > 3 * ordered[-1][1], ordered


class TestScheduleAndBatches:
    def test_arrivals_are_increasing_and_roughly_at_rate(self):
        spec = spec_with(requests=1000, arrival_rate=500.0)
        plan = generate_plan(spec)
        times = [event.t for event in plan.events]
        assert times == sorted(times)
        assert times[0] > 0
        observed_rate = len(times) / times[-1]
        assert 500.0 / 3 < observed_rate < 500.0 * 3

    def test_burstiness_one_is_flat_poisson(self):
        plan = generate_plan(spec_with(burstiness=1.0, requests=500))
        assert len(plan.events) == 500

    def test_batches_are_consecutive_and_bounded(self):
        spec = spec_with(pipeline=0.6, max_batch=3)
        plan = generate_plan(spec)
        for conn_batches in plan.events_by_connection():
            seen: set = set()
            for batch in conn_batches:
                assert 1 <= len(batch) <= spec.max_batch
                ids = {event.batch for event in batch}
                assert len(ids) == 1
                assert not (ids & seen), "batch id reused non-consecutively"
                seen |= ids
                # A reconnect never lands mid-batch.
                for event in batch[1:]:
                    assert event.reconnect is False
                # Events inside a batch keep global arrival order.
                times = [event.t for event in batch]
                assert times == sorted(times)

    def test_all_events_partition_across_connections(self):
        spec = spec_with()
        plan = generate_plan(spec)
        indices = sorted(
            event.index
            for conn_batches in plan.events_by_connection()
            for batch in conn_batches
            for event in batch
        )
        assert indices == list(range(spec.requests))

    def test_churn_zero_never_reconnects(self):
        plan = generate_plan(spec_with(churn=0.0))
        assert not any(event.reconnect for event in plan.events)


class TestMixValidation:
    def test_requests_cover_the_mix(self):
        plan = generate_plan(spec_with(requests=800))
        ops = {event.request["op"] for event in plan.events}
        assert ops == set(OPS)

    def test_unknown_op_refused(self):
        with pytest.raises(ValueError, match="unknown op"):
            spec_with(mix=(("teleport", 1.0),))

    def test_negative_weight_refused(self):
        with pytest.raises(ValueError, match="negative"):
            spec_with(mix=(("top_stable", -0.5), ("get_next", 1.0)))

    def test_empty_mix_refused(self):
        with pytest.raises(ValueError, match="no positive weight"):
            spec_with(mix=(("top_stable", 0.0),))

    def test_bad_probabilities_refused(self):
        with pytest.raises(ValueError, match="probabilities"):
            spec_with(churn=1.5)

    def test_requests_must_be_positive(self):
        with pytest.raises(ValueError, match="requests"):
            spec_with(requests=0)
