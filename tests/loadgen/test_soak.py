"""Soak harness: short in-test soak plus the metrics-scrape plumbing.

The CI ``soak-smoke`` job runs the real 60-second / 32-connection soak
via ``python -m repro.loadgen.soak``; here a few-second soak exercises
the same code path end to end (warmup, baseline scrape, rounds, final
invariant checks) so regressions fail fast in the tier-1 suite.
"""

from __future__ import annotations

import pytest

from repro.loadgen import runner
from repro.loadgen.soak import (
    RSS_GAUGE,
    SHM_GAUGE,
    SoakReport,
    build_soak_spec,
    main,
    run_soak,
)


class TestParseExposition:
    def test_parses_gauges_and_skips_comments(self):
        text = (
            "# HELP repro_process_rss_bytes Resident set size.\n"
            "# TYPE repro_process_rss_bytes gauge\n"
            "repro_process_rss_bytes 123456789\n"
            "repro_shm_segments 0\n"
            'repro_requests_total{op="ping"} 7\n'
            "\n"
        )
        parsed = runner.parse_exposition(text)
        assert parsed[RSS_GAUGE] == 123456789.0
        assert parsed[SHM_GAUGE] == 0.0
        assert parsed['repro_requests_total{op="ping"}'] == 7.0

    def test_scrape_round_trips_against_a_live_server(self):
        from repro.loadgen import WorkloadSpec, generate_plan

        plan = generate_plan(WorkloadSpec(requests=1, dataset_items=120))
        with runner.hosted_server(plan, metrics_port=0) as handle:
            metrics = runner.scrape_metrics(
                handle.metrics_port, host=handle.host
            )
        assert RSS_GAUGE in metrics
        assert SHM_GAUGE in metrics


class TestSoak:
    @pytest.mark.slow
    def test_short_soak_passes_invariants(self):
        """A bounded version of the CI acceptance run: sustained skewed
        load, then flat-RSS / zero-shm asserted from the live scrape."""
        report = run_soak(seconds=3.0, connections=32, seed=0)
        assert report.passed, report.failures
        assert report.rounds >= 2  # warmup round is not counted alone
        assert report.requests >= 32 * 12 * 2
        assert report.rss_baseline > 0
        assert report.shm_segments == 0
        assert report.connections == 32

    def test_build_soak_spec_scales_with_connections(self):
        spec = build_soak_spec(connections=32)
        assert spec.connections == 32
        assert spec.requests >= 32 * 12
        small = build_soak_spec(connections=2)
        assert small.requests >= 200

    def test_report_shape_and_growth_math(self):
        report = SoakReport(seconds=1.0, connections=4)
        report.rss_baseline, report.rss_final = 100.0, 107.0
        assert report.rss_growth == pytest.approx(0.07)
        assert report.passed
        report.failures.append("boom")
        doc = report.to_dict()
        assert doc["passed"] is False
        assert doc["failures"] == ["boom"]
        assert doc["rss_growth"] == pytest.approx(0.07)
        # Failure-evidence fields always ship, even when empty.
        assert doc["metrics_final"] == {}
        assert doc["profile"] is None
        assert doc["diag_bundle"] is None

    @pytest.mark.slow
    def test_injected_failure_leaves_a_diag_bundle(self, tmp_path):
        """The acceptance path: a failing soak with the profiler on
        writes a diag bundle holding a metrics snapshot, the event
        ring, and non-empty collapsed stacks — and still embeds the
        final scrape in the report."""
        import json

        diag = tmp_path / "SOAK_DIAG.json"
        report = run_soak(
            seconds=1.5,
            connections=4,
            profile_hz=100.0,
            inject_failure=True,
            diag_path=str(diag),
        )
        assert report.passed is False
        assert "injected failure (--inject-failure)" in report.failures
        # Evidence in the report itself.
        assert report.metrics_final.get(RSS_GAUGE, 0) > 0
        assert "repro_slo_compliant{dataset=\"default\"}" in report.metrics_final
        assert report.profile is not None
        assert report.profile["stacks"], "profiler ran but caught nothing"
        # Evidence on disk.
        assert report.diag_bundle == str(diag)
        bundle = json.loads(diag.read_text())
        assert bundle["reason"] == "soak-failure"
        assert bundle["soak_failures"] == report.failures
        assert len(bundle["metrics"]) >= 1
        assert bundle["events"], "event ring empty in the bundle"
        assert bundle["profile"]["stacks"]
        assert bundle["slo"]["datasets"]["default"]["requests"] > 0

    @pytest.mark.slow
    def test_passing_soak_writes_no_diag_bundle(self, tmp_path):
        diag = tmp_path / "SOAK_DIAG.json"
        report = run_soak(
            seconds=1.0, connections=4, diag_path=str(diag)
        )
        assert report.passed, report.failures
        assert report.diag_bundle is None
        assert not diag.exists()
        assert report.metrics_final.get(RSS_GAUGE, 0) > 0

    def test_growth_with_no_baseline_is_zero(self):
        report = SoakReport(seconds=1.0, connections=4)
        assert report.rss_growth == 0.0

    @pytest.mark.slow
    def test_main_exit_codes_and_json_artifact(self, tmp_path, capsys):
        """The CLI entry point CI calls: exit 0 on pass, report JSON on
        stdout and at --json."""
        import json

        artifact = tmp_path / "soak.json"
        code = main(
            ["--seconds", "1.5", "--connections", "8",
             "--json", str(artifact)]
        )
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(artifact.read_text())
        assert code == 0
        assert printed == saved
        assert saved["passed"] is True
        assert saved["connections"] == 8
