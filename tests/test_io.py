"""Tests for JSON serialisation of analysis results."""

import json

import numpy as np
import pytest

from repro import Ranking, build_label, stability_similarity_tradeoff, verify_stability_2d
from repro.core.stability import AngularRegion, StabilityResult
from repro.geometry.halfspace import ConvexCone, Halfspace
from repro.io import (
    dump_json,
    label_to_dict,
    ranking_to_dict,
    stability_result_to_dict,
    tradeoff_to_dicts,
)


class TestRankingToDict:
    def test_complete(self):
        ranking = Ranking([2, 0, 1])
        d = ranking_to_dict(ranking)
        assert d == {"order": [2, 0, 1], "n_items": 3, "is_complete": True}

    def test_partial(self):
        ranking = Ranking([4, 2], n_items=10)
        d = ranking_to_dict(ranking)
        assert d["is_complete"] is False
        assert d["n_items"] == 10


class TestStabilityResultToDict:
    def test_angular_region(self, paper_dataset):
        f_ranking = Ranking([1, 3, 2, 4, 0])
        result = verify_stability_2d(paper_dataset, f_ranking)
        d = stability_result_to_dict(result)
        assert d["region"]["kind"] == "angular"
        assert d["region"]["lo"] < d["region"]["hi"]
        assert d["stability"] == pytest.approx(result.stability)

    def test_cone_region(self):
        cone = ConvexCone([Halfspace((1.0, -1.0, 0.0), +1)])
        result = StabilityResult(
            ranking=Ranking([0, 1, 2]), stability=0.25, region=cone
        )
        d = stability_result_to_dict(result)
        assert d["region"]["kind"] == "cone"
        assert d["region"]["halfspaces"] == [
            {"normal": [1.0, -1.0, 0.0], "sign": 1}
        ]

    def test_topk_set_sorted(self):
        result = StabilityResult(
            ranking=Ranking([5, 3], n_items=10),
            stability=0.5,
            top_k_set=frozenset({5, 3}),
        )
        assert stability_result_to_dict(result)["top_k_set"] == [3, 5]

    def test_round_trips_through_json(self, paper_dataset):
        result = verify_stability_2d(paper_dataset, Ranking([1, 3, 2, 4, 0]))
        text = json.dumps(stability_result_to_dict(result))
        assert json.loads(text)["ranking"]["order"] == [1, 3, 2, 4, 0]


class TestLabelToDict:
    def test_full_structure(self, paper_dataset, rng):
        label = build_label(
            paper_dataset, np.array([1.0, 1.0]), n_samples=1_000, k=3, rng=rng
        )
        d = label_to_dict(label)
        assert set(d) >= {
            "reference_weights",
            "reference_stability",
            "alternatives",
            "item_profiles",
            "bubble_items",
        }
        assert len(d["alternatives"]) == len(label.alternatives)
        for alt in d["alternatives"]:
            assert "displacement" in alt
        json.dumps(d)  # must be JSON-native throughout


class TestTradeoffToDicts:
    def test_frontier_rows(self, paper_dataset, rng):
        points = stability_similarity_tradeoff(
            paper_dataset, np.array([1.0, 1.0]), cosines=(0.999, 0.99), rng=rng
        )
        rows = tradeoff_to_dicts(points)
        assert [r["cosine"] for r in rows] == [0.999, 0.99]
        for row in rows:
            assert row["best"]["stability"] >= 0.0
            json.dumps(row)


class TestDumpJson:
    def test_writes_sorted_json(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"b": np.int64(2), "a": np.float64(1.5)}, path)
        loaded = json.loads(path.read_text())
        assert loaded == {"a": 1.5, "b": 2}
        # Stable key order in the raw text.
        assert path.read_text().index('"a"') < path.read_text().index('"b"')

    def test_numpy_array_payload(self, tmp_path):
        path = tmp_path / "arr.json"
        dump_json({"w": np.array([0.5, 0.5])}, path)
        assert json.loads(path.read_text()) == {"w": [0.5, 0.5]}

    def test_rejects_unserialisable(self, tmp_path):
        with pytest.raises(TypeError):
            dump_json({"x": object()}, tmp_path / "bad.json")
