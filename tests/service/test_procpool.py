"""Process-pool observe: byte-exact equivalence, lifecycle, crash safety.

The process pool must be an *optimisation*, never an approximation:
given the same seed, a pool grown out-of-process is byte-identical to
the serial (and thread-pool) tally — counts, totals, first-seen
tie-break order, rng stream, and GET-NEXT cursors — across ranking
kinds, start methods, worker crashes, and snapshot/restore cycles.
Shared-memory segments must be unlinked on every exit path (the
autouse ``no_shared_memory_leaks`` fixture in ``tests/conftest.py``
asserts it around every test in the suite).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Dataset, StabilitySession, parallel_observe
from repro.core.randomized import GetNextRandomized
from repro.service.parallel import (
    EXECUTOR_ENV_VAR,
    ObserveExecutor,
    resolve_executor_mode,
)
from repro.service.procpool import (
    ProcessObserveEngine,
    SharedArray,
    default_start_method,
    live_segments,
)


def _dataset(seed: int, n: int = 1_500, d: int = 3) -> Dataset:
    return Dataset(np.random.default_rng(seed).uniform(size=(n, d)))


def _op(dataset, seed, *, kind="full", k=None, scoring_chunk=64, **kw):
    return GetNextRandomized(
        dataset,
        kind=kind,
        k=k,
        rng=np.random.default_rng([seed, 7]),
        scoring_chunk=scoring_chunk,
        **kw,
    )


def _assert_identical(a: GetNextRandomized, b: GetNextRandomized) -> None:
    assert b.total_samples == a.total_samples
    assert b.tally.counts == a.tally.counts
    assert b.tally._first_seen == a.tally._first_seen
    assert b.rng.bit_generator.state == a.rng.bit_generator.state


class TestSharedArray:
    def test_roundtrip_and_unlink(self):
        src = np.arange(12, dtype=np.float64).reshape(3, 4)
        shared = SharedArray.create(src)
        assert shared.shm.name in live_segments()
        np.testing.assert_array_equal(shared.array, src)
        with pytest.raises((ValueError, RuntimeError)):
            shared.array[0, 0] = 99.0  # read-only view
        shared.unlink()
        assert live_segments() == ()
        shared.unlink()  # idempotent


class TestProcessObserveEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "kind,k", [("full", None), ("topk_ranked", 4), ("topk_set", 4)]
    )
    def test_property_grid_process_thread_serial(self, seed, kind, k):
        dataset = _dataset(seed)
        serial = _op(dataset, seed, kind=kind, k=k)
        threaded = _op(dataset, seed, kind=kind, k=k)
        proc = _op(dataset, seed, kind=kind, k=k)
        serial.observe(500)
        with ThreadPoolExecutor(max_workers=2) as pool:
            parallel_observe(threaded, 500, executor=pool, force=True)
        with ProcessObserveEngine(dataset, max_workers=2) as engine:
            assert engine.observe(proc, 500, force=True) > 0
        _assert_identical(serial, threaded)
        _assert_identical(serial, proc)

    def test_split_passes_match_one_pass(self):
        # Budgets are multiples of the chunk, so the split passes share
        # the one-pass chunk boundaries (first-seen order folds per
        # chunk — the same contract the serial path has).
        dataset = _dataset(5)
        serial = _op(dataset, 5, scoring_chunk=50)
        proc = _op(dataset, 5, scoring_chunk=50)
        serial.observe(400)
        with ProcessObserveEngine(dataset, max_workers=2) as engine:
            engine.observe(proc, 150, force=True)
            engine.observe(proc, 250, force=True)
        _assert_identical(serial, proc)

    def test_mid_get_next_cursor_matches(self):
        dataset = _dataset(6)
        serial = _op(dataset, 6, kind="topk_set", k=3)
        proc = _op(dataset, 6, kind="topk_set", k=3)
        a = serial.get_next(budget=400)
        serial.observe(200)
        with ProcessObserveEngine(dataset, max_workers=2) as engine:
            engine.observe(proc, 400, force=True)
            b = proc.next_from_pool()
            engine.observe(proc, 200, force=True)
        assert a.top_k_set == b.top_k_set
        assert a.stability == b.stability
        _assert_identical(serial, proc)

    def test_pruning_candidates_shared_with_workers(self):
        # prune_topk=True installs the k-skyband candidate matrix; the
        # workers must score the identical candidate subspace and map
        # rows back to dataset identifiers.
        dataset = _dataset(7, n=900)
        serial = _op(dataset, 7, kind="topk_set", k=3, prune_topk=True)
        proc = _op(dataset, 7, kind="topk_set", k=3, prune_topk=True)
        serial.observe(300)
        with ProcessObserveEngine(dataset, max_workers=2) as engine:
            engine.observe(proc, 300, force=True)
            assert (proc._candidates is None) == (serial._candidates is None)
            if proc._candidates is not None:
                # dataset values + candidate values + candidate ids
                assert len(live_segments()) == 3
        _assert_identical(serial, proc)

    def test_spawn_start_method(self):
        dataset = _dataset(8)
        serial = _op(dataset, 8, kind="topk_ranked", k=4)
        proc = _op(dataset, 8, kind="topk_ranked", k=4)
        serial.observe(300)
        with ProcessObserveEngine(
            dataset, max_workers=1, start_method="spawn"
        ) as engine:
            assert engine.observe(proc, 300, force=True) > 0
        _assert_identical(serial, proc)

    def test_auto_threshold_serial_fallback(self):
        dataset = _dataset(9, n=200)  # far below PARALLEL_MIN_ITEMS
        serial = _op(dataset, 9)
        proc = _op(dataset, 9)
        serial.observe(200)
        with ProcessObserveEngine(dataset, max_workers=2) as engine:
            assert engine.observe(proc, 200) == 0
        _assert_identical(serial, proc)


class TestCrashSafety:
    def test_worker_crash_rescues_in_process(self):
        dataset = _dataset(10)
        serial = _op(dataset, 10, kind="topk_set", k=4)
        proc = _op(dataset, 10, kind="topk_set", k=4)
        serial.observe(600)
        with ProcessObserveEngine(dataset, max_workers=1) as engine:
            engine.warm_up()
            # SIGKILL every live worker: the pending futures break, the
            # engine reduces the remaining chunks in-process from the
            # already-sampled weights, and the tally stays byte-exact.
            for process in list(engine._pool._processes.values()):
                process.kill()
            engine.observe(proc, 600, force=True)
            _assert_identical(serial, proc)
            # The pool was rebuilt lazily; a follow-up pass still works.
            serial.observe(200)
            engine.observe(proc, 200, force=True)
            _assert_identical(serial, proc)
        assert live_segments() == ()

    def test_close_is_idempotent_and_unlinks(self):
        dataset = _dataset(11)
        engine = ProcessObserveEngine(dataset, max_workers=1)
        assert len(live_segments()) == 1
        engine.close()
        engine.close()
        assert live_segments() == ()
        with pytest.raises(RuntimeError):
            engine.observe(_op(dataset, 11), 100, force=True)

    def test_rejects_foreign_dataset(self):
        engine = ProcessObserveEngine(_dataset(12), max_workers=1)
        try:
            with pytest.raises(ValueError):
                engine.observe(_op(_dataset(13), 13), 100, force=True)
        finally:
            engine.close()

    def test_rejects_exact_backend(self, paper_dataset):
        from repro import StabilityEngine

        engine = ProcessObserveEngine(paper_dataset, max_workers=1)
        try:
            exact = StabilityEngine(paper_dataset)  # twod_exact
            with pytest.raises(TypeError):
                engine.observe(exact.backend, 100, force=True)
        finally:
            engine.close()


class TestObserveExecutor:
    def test_modes_agree_byte_for_byte(self):
        dataset = _dataset(20, n=3_000)
        results = {}
        for mode in ("serial", "thread", "process"):
            op = _op(dataset, 20, kind="topk_set", k=4)
            with ObserveExecutor(mode, max_workers=2) as executor:
                used = executor.observe(op, 500)
                assert used == mode
            results[mode] = op
        _assert_identical(results["serial"], results["thread"])
        _assert_identical(results["serial"], results["process"])
        assert live_segments() == ()

    def test_auto_resolves_per_pass(self):
        dataset = _dataset(21, n=200)
        op = _op(dataset, 21)
        with ObserveExecutor("auto", max_workers=2) as executor:
            # Tiny dataset: auto must pick serial regardless of pools.
            assert executor.observe(op, 100) == "serial"

    def test_env_override_forces_mode(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        executor = ObserveExecutor("process", max_workers=2)
        assert executor.mode == "serial"
        executor.close()

    def test_env_override_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "gpu")
        with pytest.raises(ValueError):
            ObserveExecutor("auto")

    def test_default_start_method_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert default_start_method() == "spawn"
        monkeypatch.setenv("REPRO_START_METHOD", "bogus")
        with pytest.raises(ValueError):
            default_start_method()

    def test_resolve_uses_key_width(self):
        # Full rankings at large n have wide keys -> thread, not process.
        assert resolve_executor_mode(60_000, 4, 4, key_bytes=16) == "process"
        assert resolve_executor_mode(60_000, 4, 4, key_bytes=240_000) == "thread"


class TestSessionIntegration:
    def test_session_process_executor_matches_serial(self):
        dataset = _dataset(30, n=2_500)
        query = dict(kind="topk_set", k=4, backend="randomized", budget=600)
        with StabilitySession(dataset, seed=3, parallel=False) as serial:
            expected = serial.top_stable(3, **query)
            expected_next = serial.get_next(**query)
        with StabilitySession(
            dataset, seed=3, executor="process", max_workers=2
        ) as session:
            assert session.observer.mode == "process"
            got = session.top_stable(3, **query)
            got_next = session.get_next(**query)
        assert [r.stability for r in got] == [r.stability for r in expected]
        assert got_next.stability == expected_next.stability
        assert got_next.ranking.order == expected_next.ranking.order
        assert live_segments() == ()

    def test_session_close_unlinks_segments(self):
        dataset = _dataset(31, n=2_500)
        session = StabilitySession(
            dataset, seed=4, executor="process", max_workers=1
        )
        session.observe(400, kind="topk_set", k=4, backend="randomized")
        assert len(live_segments()) >= 1
        session.close()
        assert live_segments() == ()

    def test_snapshot_restore_of_process_grown_pool(self, tmp_path):
        dataset = _dataset(32, n=2_500)
        query = dict(kind="topk_ranked", k=4, backend="randomized", budget=500)
        path = tmp_path / "proc.snap"
        with StabilitySession(
            dataset, seed=5, executor="process", max_workers=2
        ) as grown:
            grown.get_next(**query)
            grown.save(path)
            # The uninterrupted continuation is the ground truth.
            expected = grown.get_next(**{**query, "budget": 900})
        restored = StabilitySession.restore(
            path, dataset, executor="process", max_workers=2
        )
        with restored:
            got = restored.get_next(**{**query, "budget": 900})
        assert got.stability == expected.stability
        assert got.ranking.order == expected.ranking.order
        assert live_segments() == ()

    def test_stats_reports_executor_mode(self):
        dataset = _dataset(33, n=300)
        with StabilitySession(dataset, seed=6, executor="serial") as session:
            assert session.stats()["executor"] == "serial"


class TestQuasiSamplingParity:
    """QMC streams sample on the caller in plan order, so the sharded
    paths stay byte-identical to serial — same contract as mc."""

    @pytest.mark.parametrize(
        "kind,k", [("full", None), ("topk_set", 4)]
    )
    def test_qmc_process_thread_serial(self, kind, k):
        dataset = _dataset(11)
        serial = _op(dataset, 11, kind=kind, k=k, sampling="qmc")
        threaded = _op(dataset, 11, kind=kind, k=k, sampling="qmc")
        proc = _op(dataset, 11, kind=kind, k=k, sampling="qmc")
        serial.observe(500)
        with ThreadPoolExecutor(max_workers=2) as pool:
            parallel_observe(threaded, 500, executor=pool, force=True)
        with ProcessObserveEngine(dataset, max_workers=2) as engine:
            assert engine.observe(proc, 500, force=True) > 0
        _assert_identical(serial, threaded)
        _assert_identical(serial, proc)
        assert serial._qmc.index == threaded._qmc.index == proc._qmc.index
