"""Unit tests for the keyed LRU result cache."""

import numpy as np
import pytest

from repro import Dataset
from repro.service.cache import (
    MISS,
    ResultCache,
    dataset_fingerprint,
    make_key,
)


class TestFingerprint:
    def test_identical_values_same_fingerprint(self, rng_factory):
        values = rng_factory(1).uniform(size=(20, 3))
        a = Dataset(values, item_labels=[f"a{i}" for i in range(20)])
        b = Dataset(values.copy())
        # Labels are display-only: they cannot change any result.
        assert dataset_fingerprint(a) == dataset_fingerprint(b)

    def test_value_change_changes_fingerprint(self, rng_factory):
        values = rng_factory(2).uniform(size=(20, 3))
        mutated = values.copy()
        mutated[7, 1] += 1e-12
        assert dataset_fingerprint(Dataset(values)) != dataset_fingerprint(
            Dataset(mutated)
        )

    def test_nan_payloads_fingerprint_identically(self, rng_factory):
        """Value equality, not bit equality: any NaN is *the* NaN.

        IEEE-754 has ~2^52 distinct NaN bit patterns and arithmetic can
        produce payload-carrying ones; a fingerprint that hashed raw
        bits would see a 'mutation' between value-identical matrices.
        """
        values = rng_factory(3).uniform(size=(12, 3))
        a, b = values.copy(), values.copy()
        a[4, 2] = np.float64("nan")
        # A different NaN bit pattern (payload bit set) in the same cell.
        b[4, 2] = np.frombuffer(
            np.uint64(0x7FF8000000000001).tobytes(), dtype=np.float64
        )[0]
        assert np.isnan(b[4, 2])
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        # And NaN still differs from any real value.
        assert dataset_fingerprint(a) != dataset_fingerprint(values)

    def test_negative_zero_fingerprints_like_positive_zero(self, rng_factory):
        values = rng_factory(4).uniform(size=(12, 3))
        a, b = values.copy(), values.copy()
        a[0, 0], b[0, 0] = 0.0, -0.0
        assert dataset_fingerprint(a) == dataset_fingerprint(b)

    def test_nan_position_still_detected(self, rng_factory):
        values = rng_factory(5).uniform(size=(12, 3))
        a, b = values.copy(), values.copy()
        a[1, 1] = np.nan
        b[2, 1] = np.nan
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


class TestRefreshWithNaN:
    """session.refresh() mutation detection over NaN-containing buffers.

    :class:`Dataset` rejects NaN at construction, but refresh() exists
    precisely because a service handing out array views cannot trust
    immutability — an upstream writer can push NaN into the buffer
    later.  Detection must fire once on the real mutation and must not
    flap when the same cell is rewritten with a different NaN payload.
    """

    def _writable(self, session):
        values = session.dataset.values
        values.setflags(write=True)
        return values

    def test_mutation_to_nan_detected_once_then_stable(self, rng_factory):
        from repro import StabilitySession

        ds = Dataset(rng_factory(6).uniform(size=(30, 3)))
        with StabilitySession(ds, seed=1, parallel=False) as session:
            session.top_stable(1, kind="topk_set", k=3, budget=200)
            values = self._writable(session)
            values[3, 1] = np.nan
            assert session.refresh() is True  # mutation detected, state dropped
            assert session.refresh() is False  # fingerprint is NaN-stable
            # Same cell, different NaN payload: still no spurious mutation.
            values[3, 1] = np.frombuffer(
                np.uint64(0xFFF8000000000F00).tobytes(), dtype=np.float64
            )[0]
            assert np.isnan(values[3, 1])
            assert session.refresh() is False
            # A genuine further change is still caught.
            values[5, 0] += 0.25
            assert session.refresh() is True

    def test_shape_disambiguated(self):
        flat = np.arange(12, dtype=np.float64)
        assert dataset_fingerprint(flat.reshape(3, 4)) != dataset_fingerprint(
            flat.reshape(4, 3)
        )

    def test_accepts_plain_arrays(self, rng_factory):
        values = rng_factory(3).uniform(size=(5, 2))
        assert dataset_fingerprint(values) == dataset_fingerprint(Dataset(values))


class TestMakeKey:
    def test_param_order_irrelevant(self):
        assert make_key("fp", "op", a=1, b=2) == make_key("fp", "op", b=2, a=1)

    def test_sequence_forms_normalised(self):
        assert make_key("fp", "op", ids=[1, 2, 3]) == make_key(
            "fp", "op", ids=(1, 2, 3)
        )

    def test_distinct_budgets_distinct_keys(self):
        assert make_key("fp", "op", budget=1000) != make_key(
            "fp", "op", budget=2000
        )

    def test_distinct_ops_distinct_keys(self):
        assert make_key("fp", "top_stable") != make_key("fp", "stability_of")

    def test_frozenset_canonical(self):
        assert make_key("fp", "op", s=frozenset({3, 1})) == make_key(
            "fp", "op", s=frozenset({1, 3})
        )

    def test_region_keyed_by_repr(self):
        from repro import Cone, FullSpace

        full = make_key("fp", "op", region=FullSpace(2))
        cone = make_key("fp", "op", region=Cone(np.array([1.0, 1.0]), 0.1))
        assert full != cone

    def test_keys_are_hashable(self):
        key = make_key("fp", "op", ids=(1, 2), arr=np.arange(3.0), x=None)
        assert hash(key) is not None


class TestResultCache:
    def test_get_put_roundtrip(self):
        cache = ResultCache(4)
        key = make_key("fp", "op", m=1)
        assert cache.get(key) is MISS
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put(("fp", "a", ()), 1)
        cache.put(("fp", "b", ()), 2)
        cache.get(("fp", "a", ()))  # refresh a; b becomes LRU
        cache.put(("fp", "c", ()), 3)
        assert cache.get(("fp", "b", ())) is MISS
        assert cache.get(("fp", "a", ())) == 1
        assert cache.stats.evictions == 1

    def test_invalidate_drops_only_one_fingerprint(self):
        cache = ResultCache(8)
        cache.put(("fp1", "op", ("a",)), 1)
        cache.put(("fp1", "op", ("b",)), 2)
        cache.put(("fp2", "op", ("a",)), 3)
        assert cache.invalidate("fp1") == 2
        assert cache.get(("fp1", "op", ("a",))) is MISS
        assert cache.get(("fp2", "op", ("a",))) == 3
        assert cache.stats.invalidations == 2

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(0)
        cache.put(("fp", "op", ()), 1)
        assert cache.get(("fp", "op", ())) is MISS
        assert len(cache) == 0

    def test_clear_resets_stats(self):
        cache = ResultCache(4)
        cache.put(("fp", "op", ()), 1)
        cache.get(("fp", "op", ()))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0

    def test_hit_rate(self):
        cache = ResultCache(4)
        assert cache.stats.hit_rate == 0.0
        cache.put(("fp", "op", ()), 1)
        cache.get(("fp", "op", ()))
        cache.get(("fp", "other", ()))
        assert cache.stats.hit_rate == pytest.approx(0.5)
