"""Parallel-vs-serial observe equality, property-tested.

The service's shard-parallel observe must be an *optimisation*, not an
approximation: given the same seed, the tally after a parallel pass is
byte-identical to the serial tally — counts, totals, and first-seen
tie-break order — across ranking kinds, chunk sizes (including the
``REPRO_SCORING_CHUNK`` environment override), and split passes.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Dataset, parallel_observe
from repro.core.randomized import GetNextRandomized
from repro.engine import kernel
from repro.service.parallel import (
    MAX_WORKERS_ENV_VAR,
    default_workers,
    resolve_executor_mode,
    should_parallelize,
)


def _pair(seed, n=300, d=3, *, kind="full", k=None, scoring_chunk=None):
    dataset = Dataset(np.random.default_rng(seed).uniform(size=(n, d)))
    make = lambda: GetNextRandomized(  # noqa: E731
        dataset,
        kind=kind,
        k=k,
        rng=np.random.default_rng([seed, 7]),
        scoring_chunk=scoring_chunk,
    )
    return make(), make()


def _assert_identical(serial, sharded):
    assert sharded.total_samples == serial.total_samples
    assert sharded.tally.counts == serial.tally.counts
    assert sharded.tally._first_seen == serial.tally._first_seen


class TestParallelObserveEquality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "kind,k", [("full", None), ("topk_ranked", 4), ("topk_set", 4)]
    )
    def test_property_identical_tallies(self, seed, kind, k):
        serial, sharded = _pair(seed, kind=kind, k=k, scoring_chunk=64)
        serial.observe(500)
        with ThreadPoolExecutor(max_workers=3) as pool:
            chunks = parallel_observe(sharded, 500, executor=pool, force=True)
        assert chunks > 0
        _assert_identical(serial, sharded)

    def test_split_passes_match_one_pass(self):
        serial, sharded = _pair(5, scoring_chunk=50)
        serial.observe(400)
        with ThreadPoolExecutor(max_workers=2) as pool:
            parallel_observe(sharded, 150, executor=pool, force=True)
            parallel_observe(sharded, 250, executor=pool, force=True)
        _assert_identical(serial, sharded)

    def test_chunk_env_override_pins_decomposition(self, monkeypatch):
        monkeypatch.setenv(kernel.CHUNK_ENV_VAR, "37")
        assert kernel.auto_chunk_size(10) == 37
        assert kernel.auto_chunk_size(10_000_000) == 37
        serial, sharded = _pair(6)  # scoring_chunk=None -> env-pinned 37
        assert serial.scoring_chunk == 37
        serial.observe(300)
        with ThreadPoolExecutor(max_workers=2) as pool:
            parallel_observe(sharded, 300, executor=pool, force=True)
        _assert_identical(serial, sharded)

    def test_chunk_env_override_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(kernel.CHUNK_ENV_VAR, "0")
        with pytest.raises(ValueError):
            kernel.auto_chunk_size(100)

    def test_auto_chunk_is_deterministic(self):
        assert kernel.auto_chunk_size(10_000) == kernel.auto_chunk_size(10_000)

    def test_pruning_state_matches_serial(self):
        # Force the k-skyband pruning index on both sides: the parallel
        # pass must trigger the same prepare_observe transitions.
        dataset = Dataset(np.random.default_rng(9).uniform(size=(600, 3)))
        make = lambda: GetNextRandomized(  # noqa: E731
            dataset,
            kind="topk_set",
            k=3,
            rng=np.random.default_rng(13),
            prune_topk=True,
            scoring_chunk=64,
        )
        serial, sharded = make(), make()
        serial.observe(300)
        with ThreadPoolExecutor(max_workers=2) as pool:
            parallel_observe(sharded, 300, executor=pool, force=True)
        assert (sharded._candidates is None) == (serial._candidates is None)
        _assert_identical(serial, sharded)

    def test_interleaves_with_get_next(self):
        serial, sharded = _pair(10, kind="topk_set", k=3, scoring_chunk=64)
        a = serial.get_next(budget=400)
        serial.observe(200)
        with ThreadPoolExecutor(max_workers=2) as pool:
            parallel_observe(sharded, 400, executor=pool, force=True)
            b = sharded.next_from_pool()
            parallel_observe(sharded, 200, executor=pool, force=True)
        assert a.top_k_set == b.top_k_set
        assert a.stability == b.stability
        _assert_identical(serial, sharded)


class TestFallbacks:
    def test_serial_fallback_below_threshold(self):
        serial, auto = _pair(20, n=100)
        serial.observe(200)
        # n=100 is far below PARALLEL_MIN_ITEMS: auto path must fall
        # back to serial observe (returns 0 chunks) and still match.
        assert parallel_observe(auto, 200, max_workers=8) == 0
        _assert_identical(serial, auto)

    def test_single_worker_falls_back(self):
        serial, auto = _pair(21, n=5000)
        serial.observe(64)
        assert parallel_observe(auto, 64, max_workers=1) == 0
        _assert_identical(serial, auto)

    def test_zero_samples_noop(self):
        op, _ = _pair(22)
        assert parallel_observe(op, 0) == 0
        assert op.total_samples == 0

    def test_rejects_non_randomized(self, paper_dataset):
        from repro import StabilityEngine

        engine = StabilityEngine(paper_dataset)  # twod_exact
        with pytest.raises(TypeError):
            parallel_observe(engine.backend, 100)

    def test_should_parallelize_thresholds(self):
        assert should_parallelize(10_000, 8, 4)
        assert not should_parallelize(10_000, 1, 4)  # one chunk
        assert not should_parallelize(100, 8, 4)  # tiny dataset
        assert not should_parallelize(10_000, 8, 1)  # one worker

    def test_injected_executor_short_circuits_tiny_passes(self):
        # A caller-owned pool no longer forces sharding: below the
        # item threshold the pass runs serially (0 chunks) — the warm
        # session pool must not pay chunk handoff for tiny top-ups.
        serial, sharded = _pair(30, n=300, scoring_chunk=64)
        serial.observe(300)
        with ThreadPoolExecutor(max_workers=2) as pool:
            assert parallel_observe(sharded, 300, executor=pool) == 0
        _assert_identical(serial, sharded)

    def test_force_overrides_short_circuit(self):
        serial, sharded = _pair(31, n=300, scoring_chunk=64)
        serial.observe(300)
        with ThreadPoolExecutor(max_workers=2) as pool:
            assert parallel_observe(sharded, 300, executor=pool, force=True) > 0
        _assert_identical(serial, sharded)


class TestDefaultWorkers:
    def test_respects_affinity_when_available(self):
        workers = default_workers()
        assert workers >= 1
        try:
            available = len(__import__("os").sched_getaffinity(0))
        except (AttributeError, OSError):
            available = __import__("os").cpu_count() or 1
        assert workers <= max(available - 1, 1)

    def test_env_cap_wins(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, "1")
        assert default_workers() == 1

    def test_env_cap_never_raises_above_derived(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, "4096")
        uncapped = default_workers()
        monkeypatch.delenv(MAX_WORKERS_ENV_VAR)
        assert uncapped == default_workers()

    def test_env_cap_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV_VAR, "0")
        with pytest.raises(ValueError):
            default_workers()


class TestResolveExecutorMode:
    def test_small_work_serial(self):
        assert resolve_executor_mode(100, 8, 4) == "serial"
        assert resolve_executor_mode(100_000, 1, 4) == "serial"
        assert resolve_executor_mode(100_000, 8, 1) == "serial"

    def test_mid_size_threads(self):
        assert resolve_executor_mode(10_000, 8, 4) == "thread"

    def test_large_narrow_keys_process(self):
        assert resolve_executor_mode(100_000, 8, 4, key_bytes=40) == "process"

    def test_wide_keys_stay_on_threads(self):
        # Full-ranking keys at n=100K are ~400KB per sample: IPC would
        # drown the process win, so auto keeps them on threads.
        assert (
            resolve_executor_mode(100_000, 8, 4, key_bytes=400_000) == "thread"
        )
