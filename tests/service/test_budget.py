"""Precision budgets: the spec grammar, the controller, and the session."""

import numpy as np
import pytest

from repro import Dataset
from repro.core.randomized import GetNextRandomized
from repro.errors import BudgetExceededError
from repro.sampling.montecarlo import confidence_error
from repro.service.batch import BatchPlanner, StabilityRequest, execute_batch
from repro.service.budget import (
    DEFAULT_PRECISION_CAP,
    PrecisionBudget,
    ensure_precision,
    parse_budget,
    precision_satisfied,
)
from repro.service.session import StabilitySession


def _dataset(seed=0, n=25, d=3):
    rng = np.random.default_rng(seed)
    return Dataset(rng.uniform(0.05, 1.0, size=(n, d)))


class TestParseBudget:
    def test_none_and_instances_pass_through(self):
        assert parse_budget(None) is None
        budget = PrecisionBudget(0.05)
        assert parse_budget(budget) is budget

    def test_plain_ints(self):
        assert parse_budget(5_000) == 5_000
        assert parse_budget("5000") == 5_000

    @pytest.mark.parametrize("bad", [0, -3, "0", True, False, 2.5, [5]])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_budget(bad)

    def test_ci_spec(self):
        budget = parse_budget("ci:0.02")
        assert budget == PrecisionBudget(0.02)
        assert budget.max_samples == DEFAULT_PRECISION_CAP

    def test_ci_spec_with_cap(self):
        assert parse_budget("ci:0.02@200000") == PrecisionBudget(0.02, 200_000)

    def test_spec_roundtrip(self):
        for budget in (PrecisionBudget(0.02), PrecisionBudget(0.1, 50_000)):
            assert parse_budget(budget.spec) == budget
            assert parse_budget(str(budget)) == budget

    @pytest.mark.parametrize(
        "bad", ["ci:", "ci:zero", "ci:0.02@", "ci:0.02@many", "soon", ""]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_budget(bad)

    @pytest.mark.parametrize("width", [0.0, 1.0, -0.5, 1.5])
    def test_width_bounds(self, width):
        with pytest.raises(ValueError):
            PrecisionBudget(width)

    def test_cap_bounds(self):
        with pytest.raises(ValueError):
            PrecisionBudget(0.1, 0)


class TestController:
    def test_converges_to_width(self):
        op = GetNextRandomized(_dataset(3), rng=np.random.default_rng(1))
        budget = PrecisionBudget(0.03)
        total = ensure_precision(op, budget, op.observe, confidence=0.95)
        assert total == op.total_samples
        assert precision_satisfied(op, budget, confidence=0.95)
        keys = op._tally.top_keys(1)
        stability = op._tally.count_of(keys[0]) / op.total_samples
        assert confidence_error(stability, op.total_samples) <= budget.width

    def test_satisfied_budget_observes_nothing(self):
        op = GetNextRandomized(_dataset(3), rng=np.random.default_rng(1))
        budget = PrecisionBudget(0.05)
        total = ensure_precision(op, budget, op.observe, confidence=0.95)

        def forbidden(n):
            raise AssertionError("a satisfied budget must not observe")

        assert (
            ensure_precision(op, budget, forbidden, confidence=0.95) == total
        )

    def test_cap_raises_budget_exceeded(self):
        op = GetNextRandomized(_dataset(3), rng=np.random.default_rng(1))
        with pytest.raises(BudgetExceededError):
            ensure_precision(
                op,
                PrecisionBudget(0.0001, max_samples=2_000),
                op.observe,
                confidence=0.95,
            )
        assert op.total_samples <= 2_000

    def test_empty_pool_not_satisfied(self):
        op = GetNextRandomized(_dataset(3), rng=np.random.default_rng(1))
        assert not precision_satisfied(
            op, PrecisionBudget(0.5), confidence=0.95
        )


class TestSessionPrecision:
    def test_top_stable_meets_width(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            results = session.top_stable(
                2, kind="topk_set", k=3, budget="ci:0.04"
            )
            assert results[0].confidence_error <= 0.04

    def test_session_default_budget_spec(self):
        with StabilitySession(_dataset(5), seed=3, budget="ci:0.05") as session:
            result = session.top_stable(1, kind="topk_set", k=3)[0]
            assert result.confidence_error <= 0.05

    def test_precision_query_is_idempotent_and_cached(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            first = session.top_stable(2, kind="topk_set", k=3, budget="ci:0.05")
            assert not session.last_query_cached
            pool = session.stats()["configs"]["topk_set:k=3@randomized"][
                "total_samples"
            ]
            second = session.top_stable(2, kind="topk_set", k=3, budget="ci:0.05")
            assert session.last_query_cached
            assert [r.stability for r in second] == [r.stability for r in first]
            assert (
                session.stats()["configs"]["topk_set:k=3@randomized"][
                    "total_samples"
                ]
                == pool
            )

    def test_tighter_width_grows_pool(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            session.top_stable(1, kind="topk_set", k=3, budget="ci:0.1")
            loose = session.stats()["configs"]["topk_set:k=3@randomized"][
                "total_samples"
            ]
            session.top_stable(1, kind="topk_set", k=3, budget="ci:0.02")
            tight = session.stats()["configs"]["topk_set:k=3@randomized"][
                "total_samples"
            ]
            assert tight > loose

    def test_warm_read_classification(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            assert not session.query_is_warm_read(
                "top_stable", kind="topk_set", k=3, budget="ci:0.05"
            )
            session.top_stable(1, kind="topk_set", k=3, budget="ci:0.05")
            assert session.query_is_warm_read(
                "top_stable", kind="topk_set", k=3, budget="ci:0.05"
            )
            # A tighter target over the same pool is a pool-growing write.
            assert not session.query_is_warm_read(
                "top_stable", kind="topk_set", k=3, budget="ci:0.001"
            )

    def test_observe_accepts_spec(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            session.observe("ci:0.06", kind="topk_set", k=3)
            assert session.query_is_warm_read(
                "top_stable", kind="topk_set", k=3, budget="ci:0.06"
            )

    def test_budget_exceeded_surfaces(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            with pytest.raises(BudgetExceededError):
                session.top_stable(
                    1, kind="topk_set", k=3, budget="ci:0.0001@1500"
                )


class TestBatchPrecision:
    def test_requests_parse_specs_eagerly(self):
        request = StabilityRequest(
            op="top_stable", kind="topk_set", k=3, budget="ci:0.05"
        )
        assert request.budget == PrecisionBudget(0.05)
        with pytest.raises(ValueError):
            StabilityRequest(op="top_stable", budget="ci:huh")

    def test_planner_separates_precision_targets(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            planner = BatchPlanner(session)
            plan = planner.plan(
                [
                    StabilityRequest(
                        op="top_stable", kind="topk_set", k=3, budget=2_000
                    ),
                    StabilityRequest(
                        op="top_stable", kind="topk_set", k=3, budget="ci:0.08"
                    ),
                    StabilityRequest(
                        op="top_stable", kind="topk_set", k=3, budget="ci:0.05"
                    ),
                ]
            )
            key = ("topk_set", 3, "randomized")
            assert plan == {key: 2_000}
            # Tightest width wins the precision prefill.
            assert planner.precision_targets == {key: PrecisionBudget(0.05)}

    def test_mixed_batch_executes(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            outcomes = execute_batch(
                session,
                [
                    {"op": "top_stable", "kind": "topk_set", "k": 3, "m": 1,
                     "budget": 1_500},
                    {"op": "top_stable", "kind": "topk_set", "k": 3, "m": 1,
                     "budget": "ci:0.05"},
                ],
            )
            assert all(outcome.ok for outcome in outcomes)
            assert outcomes[1].value[0].confidence_error <= 0.05

    def test_unreachable_precision_fails_only_its_request(self):
        with StabilitySession(_dataset(5), seed=3) as session:
            outcomes = execute_batch(
                session,
                [
                    {"op": "top_stable", "kind": "topk_set", "k": 3, "m": 1,
                     "budget": "ci:0.0001@1500"},
                    {"op": "top_stable", "kind": "topk_set", "k": 3, "m": 1,
                     "budget": 1_000},
                ],
            )
            assert not outcomes[0].ok
            assert isinstance(outcomes[0].error, BudgetExceededError)
            assert outcomes[1].ok


class TestSnapshotPrecisionHint:
    def test_budget_hint_roundtrips(self, tmp_path):
        path = tmp_path / "precision.snap"
        ds = _dataset(5)
        with StabilitySession(ds, seed=3, budget="ci:0.05") as session:
            session.top_stable(1, kind="topk_set", k=3)
            session.save(path)
        with StabilitySession.restore(path, ds) as restored:
            assert restored._budget_hint == PrecisionBudget(0.05)
            result = restored.top_stable(1, kind="topk_set", k=3)
            assert restored.last_query_cached
            assert result[0].confidence_error <= 0.05
