"""Golden-file conformance: committed snapshots must restore exactly.

The two fixtures under ``golden/`` were written by the snapshot code at
a known-good revision (regenerate intentionally via
``python tests/service/conftest.py --regenerate``).  Restoring them
with *current* code must reproduce the recorded probe answers — ranking
orders, stabilities, sample counts, regions — and the recorded pool
statistics.  A failure here means the format or the restore semantics
drifted; that is a compatibility break, not a fixture refresh.
"""

import json
import math

import pytest

from repro import StabilitySession
from repro.service.persist import SNAPSHOT_VERSION, read_snapshot_header

from golden_specs import (
    GOLDEN_DIR,
    GOLDEN_SPECS,
    build_golden_session,
    run_probes,
)

GOLDEN_NAMES = sorted(GOLDEN_SPECS)


def _load(name):
    snap = GOLDEN_DIR / f"{name}.snap"
    expected = json.loads((GOLDEN_DIR / f"{name}.expected.json").read_text())
    return snap, expected


def _assert_stats_match(got: dict, want: dict):
    """Recorded per-config stats must survive verbatim.

    ``stats()`` may *gain* informational keys over time (``kernel``,
    ``sampling``, ...) without invalidating old goldens — what a golden
    pins is that every recorded key still reads back identical, and that
    no recorded config appears or disappears.
    """
    assert set(got) == set(want)
    for config, recorded in want.items():
        entry = got[config]
        for key, value in recorded.items():
            assert entry[key] == value, (config, key)


def _assert_payloads_equal(got, want):
    """Exact comparison, with one documented concession.

    Everything a stability answer is made of is exact (integer ratios,
    deterministic enumeration, pinned rng streams); only
    ``confidence_error`` passes through ``scipy``'s normal quantile, so
    it is compared to 1e-12 relative — anything looser is a real drift.
    """
    if isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want)
        for g, w in zip(got, want):
            _assert_payloads_equal(g, w)
        return
    assert got["ranking"] == want["ranking"]
    assert got["stability"] == want["stability"]
    assert got["sample_count"] == want["sample_count"]
    assert got["top_k_set"] == want["top_k_set"]
    assert got["region"] == want["region"]
    assert math.isclose(
        got["confidence_error"], want["confidence_error"], rel_tol=1e-12,
        abs_tol=0.0,
    ) or got["confidence_error"] == want["confidence_error"]


@pytest.mark.parametrize("name", GOLDEN_NAMES)
class TestGoldenConformance:
    def test_fixture_files_are_committed(self, name):
        snap, expected = _load(name)
        assert snap.exists()
        assert expected["answers"], "expected file must record probe answers"

    def test_header_is_current_format(self, name):
        snap, _ = _load(name)
        header = read_snapshot_header(snap)
        assert header["format_version"] == SNAPSHOT_VERSION
        assert header["configs"], "golden snapshots must carry warm configs"

    def test_restores_to_recorded_answers(self, name):
        snap, expected = _load(name)
        spec = GOLDEN_SPECS[name]
        with StabilitySession.restore(
            snap, spec["dataset"](), parallel=False
        ) as session:
            got = run_probes(session, expected["probes"])
            _assert_payloads_equal(got, expected["answers"])
            # The probes grew the pools / advanced the cursors exactly
            # as recorded, too.
            _assert_stats_match(
                session.stats()["configs"],
                expected["stats_configs_after_probes"],
            )

    def test_restores_to_recorded_pool_stats(self, name):
        snap, expected = _load(name)
        spec = GOLDEN_SPECS[name]
        with StabilitySession.restore(
            snap, spec["dataset"](), parallel=False
        ) as session:
            _assert_stats_match(
                session.stats()["configs"], expected["stats_configs_at_save"]
            )

    def test_freshly_built_session_matches_golden_state(self, name):
        """The committed snapshot still matches what warmup produces today.

        Guards the *writer* half: if session/query semantics change so
        that the same warmup yields different pools, the golden must be
        regenerated consciously (and the format reviewed), not silently.
        """
        _, expected = _load(name)
        with build_golden_session(name) as session:
            _assert_stats_match(
                session.stats()["configs"], expected["stats_configs_at_save"]
            )
