"""Batch planner: amortization and batch-vs-sequential equivalence."""

import numpy as np
import pytest

from repro import Dataset, StabilityRequest, StabilitySession, execute_batch
from repro.service.batch import BatchPlanner


@pytest.fixture
def ds_md(rng_factory):
    return Dataset(rng_factory(40).uniform(size=(250, 3)))


def _mixed(budget=1_000):
    return [
        StabilityRequest(op="top_stable", m=2, kind="topk_set", k=4,
                         backend="randomized", budget=budget),
        StabilityRequest(op="get_next", kind="topk_set", k=4,
                         backend="randomized", budget=budget),
        StabilityRequest(op="top_stable", m=3, kind="topk_ranked", k=3,
                         backend="randomized", budget=budget),
        StabilityRequest(op="get_next", kind="topk_ranked", k=3,
                         backend="randomized", budget=budget),
    ]


def _flatten(outcomes):
    out = []
    for o in outcomes:
        assert o.ok, o.error
        values = o.value if isinstance(o.value, list) else [o.value]
        out.extend(
            (r.ranking.order, r.stability, r.sample_count) for r in values
        )
    return out


class TestEquivalence:
    def test_batch_matches_sequential_execution(self, ds_md):
        requests = _mixed()
        with StabilitySession(ds_md, seed=11, parallel=False) as batched:
            batch_out = execute_batch(batched, requests)
        with StabilitySession(ds_md, seed=11, parallel=False) as sequential:
            seq_out = []
            for req in requests:
                if req.op == "top_stable":
                    value = sequential.top_stable(
                        req.m, kind=req.kind, k=req.k,
                        backend=req.backend, budget=req.budget,
                    )
                else:
                    value = sequential.get_next(
                        kind=req.kind, k=req.k,
                        backend=req.backend, budget=req.budget,
                    )
                seq_out.append(value)
        flat_batch = _flatten(batch_out)
        flat_seq = []
        for value in seq_out:
            values = value if isinstance(value, list) else [value]
            flat_seq.extend(
                (r.ranking.order, r.stability, r.sample_count) for r in values
            )
        assert flat_batch == flat_seq

    def test_stability_of_in_batch_matches_direct(self, ds_md):
        with StabilitySession(ds_md, seed=12, parallel=False) as session:
            top = session.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_000
            )[0]
            ids = tuple(sorted(top.top_k_set))
        with StabilitySession(ds_md, seed=12, parallel=False) as direct:
            expected = direct.stability_of(
                ids, kind="topk_set", k=4, backend="randomized",
                min_samples=1_000,
            )
        with StabilitySession(ds_md, seed=12, parallel=False) as batched:
            (outcome,) = execute_batch(
                batched,
                [StabilityRequest(op="stability_of", kind="topk_set", k=4,
                                  backend="randomized", ranking=ids,
                                  min_samples=1_000)],
            )
        assert outcome.ok
        assert outcome.value.stability == expected.stability
        assert outcome.value.sample_count == expected.sample_count


class TestAmortization:
    def test_one_pool_fill_per_configuration(self, ds_md):
        requests = _mixed(budget=1_200)
        with StabilitySession(ds_md, seed=13, parallel=False) as session:
            execute_batch(session, requests)
            stats = session.stats()["configs"]
        # Two configurations, each filled once to the group maximum —
        # not once per request.
        assert stats["topk_set:k=4@randomized"]["total_samples"] == 1_200
        assert stats["topk_ranked:k=3@randomized"]["total_samples"] == 1_200

    def test_planner_groups_by_config_with_max_target(self, ds_md):
        with StabilitySession(ds_md, seed=14, parallel=False) as session:
            planner = BatchPlanner(session)
            targets = planner.plan([
                StabilityRequest(op="get_next", kind="topk_set", k=4,
                                 backend="randomized", budget=500),
                StabilityRequest(op="top_stable", m=2, kind="topk_set", k=4,
                                 backend="randomized", budget=2_000),
                StabilityRequest(op="top_stable", m=1, kind="full",
                                 backend="randomized", budget=800),
            ])
        assert targets == {
            ("topk_set", 4, "randomized"): 2_000,
            ("full", None, "randomized"): 800,
        }

    def test_exact_configs_excluded_from_prefill(self, paper_dataset):
        with StabilitySession(paper_dataset, seed=15) as session:
            planner = BatchPlanner(session)
            targets = planner.plan([
                StabilityRequest(op="top_stable", m=2),  # twod_exact
                StabilityRequest(op="top_stable", m=2, kind="topk_set", k=2),
            ])
            assert targets == {}
            outcomes = planner.execute([
                StabilityRequest(op="top_stable", m=2),
                StabilityRequest(op="top_stable", m=2, kind="topk_set", k=2),
            ])
        assert all(o.ok for o in outcomes)
        assert len(outcomes[0].value) == 2

    def test_default_budget_schedule_used_without_explicit_budget(self, ds_md):
        with StabilitySession(
            ds_md, seed=16, budget=1_000, parallel=False
        ) as session:
            execute_batch(session, [
                StabilityRequest(op="top_stable", m=3, kind="topk_set", k=4,
                                 backend="randomized"),
            ])
            raw = session.engine_for("topk_set", 4, "randomized").backend.raw
            # first + (m-1) * first/5 = 1000 + 2*200
            assert raw.total_samples == 1_400


class TestRobustness:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            StabilityRequest(op="teleport")
        with pytest.raises(ValueError):
            StabilityRequest(op="stability_of")  # no ranking
        with pytest.raises(ValueError):
            StabilityRequest(op="top_stable", m=0)
        with pytest.raises(ValueError):
            StabilityRequest.from_dict({"op": "get_next", "bogus": 1})

    def test_dict_requests_accepted(self, ds_md):
        with StabilitySession(ds_md, seed=17, parallel=False) as session:
            outcomes = execute_batch(session, [
                {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
                 "backend": "randomized", "budget": 500},
            ])
        assert outcomes[0].ok

    def test_failures_isolated_per_request(self, ds_md):
        with StabilitySession(ds_md, seed=18, parallel=False) as session:
            outcomes = execute_batch(session, [
                StabilityRequest(op="top_stable", m=1, kind="topk_set", k=3,
                                 backend="randomized", budget=500),
                # Wrong key length for the configuration: fails alone.
                StabilityRequest(op="stability_of", kind="topk_set", k=3,
                                 backend="randomized", ranking=(0, 1),
                                 min_samples=500),
                StabilityRequest(op="get_next", kind="topk_set", k=3,
                                 backend="randomized", budget=500),
            ])
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ValueError)

    def test_cached_flag_reported(self, ds_md):
        request = StabilityRequest(op="top_stable", m=1, kind="topk_set", k=3,
                                   backend="randomized", budget=500)
        with StabilitySession(ds_md, seed=19, parallel=False) as session:
            first = execute_batch(session, [request])
            second = execute_batch(session, [request])
        assert first[0].cached is False
        assert second[0].cached is True
        assert second[0].value[0].stability == first[0].value[0].stability

    def test_parseable_but_invalid_config_isolated(self, ds_md):
        # k=None is a legal *field* value but an invalid top-k config;
        # engine creation fails in the planner, which must skip it and
        # let execute() report the error per-request (code-review fix).
        with StabilitySession(ds_md, seed=23, parallel=False) as session:
            outcomes = execute_batch(session, [
                StabilityRequest(op="get_next", kind="full",
                                 backend="randomized", budget=300),
                StabilityRequest(op="top_stable", m=2, kind="topk_set",
                                 backend="randomized", budget=300),  # no k
            ])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ValueError)

    def test_unparseable_request_isolated(self, ds_md):
        with StabilitySession(ds_md, seed=24, parallel=False) as session:
            outcomes = execute_batch(session, [
                {"op": "teleport"},
                {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
                 "backend": "randomized", "budget": 300},
            ])
        assert not outcomes[0].ok and outcomes[0].request == {"op": "teleport"}
        assert outcomes[1].ok
