"""StabilitySession: state reuse, caching, invalidation, exact configs."""

import numpy as np
import pytest

from repro import Dataset, StabilityEngine, StabilitySession
from repro.errors import ExhaustedError
from repro.service.cache import ResultCache


@pytest.fixture
def ds_md(rng_factory):
    return Dataset(rng_factory(30).uniform(size=(300, 3)))


@pytest.fixture
def session(ds_md):
    with StabilitySession(ds_md, seed=7, budget=1_500, parallel=False) as s:
        yield s


class TestSessionReuse:
    def test_repeated_query_hits_cache_without_resampling(self, session):
        first = session.top_stable(3, kind="topk_set", k=4, backend="randomized")
        raw = session.engine_for("topk_set", 4, "randomized").backend.raw
        pool_after_first = raw.total_samples
        hits_before = session.cache.stats.hits
        second = session.top_stable(3, kind="topk_set", k=4, backend="randomized")
        assert session.cache.stats.hits == hits_before + 1
        assert raw.total_samples == pool_after_first  # no resampling
        assert [r.stability for r in second] == [r.stability for r in first]

    def test_pool_is_cumulative_across_queries(self, session):
        session.top_stable(1, kind="topk_set", k=4, backend="randomized",
                           budget=1_000)
        raw = session.engine_for("topk_set", 4, "randomized").backend.raw
        assert raw.total_samples == 1_000
        # A larger target only draws the difference.
        session.top_stable(1, kind="topk_set", k=4, backend="randomized",
                           budget=1_600)
        assert raw.total_samples == 1_600
        # A smaller target is already satisfied: pool untouched.
        session.stability_of(
            sorted(session.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_600
            )[0].top_k_set),
            kind="topk_set", k=4, backend="randomized", min_samples=500,
        )
        assert raw.total_samples == 1_600

    def test_skyband_index_shared_across_configs(self, session):
        set_raw = session.engine_for("topk_set", 4, "randomized").backend.raw
        ranked_raw = session.engine_for("topk_ranked", 4, "randomized").backend.raw
        assert set_raw._skyband is session.skyband_index
        assert ranked_raw._skyband is session.skyband_index

    def test_get_next_is_a_cursor_over_the_pool(self, session):
        a = session.get_next(kind="topk_set", k=4, backend="randomized",
                             budget=2_000)
        b = session.get_next(kind="topk_set", k=4, backend="randomized",
                             budget=2_000)
        assert a.stability >= b.stability
        key_a = a.top_k_set
        assert key_a != b.top_k_set
        raw = session.engine_for("topk_set", 4, "randomized").backend.raw
        assert raw.total_samples == 2_000  # one shared pool fill

    def test_top_stable_does_not_consume_get_next(self, session):
        top = session.top_stable(2, kind="topk_set", k=4, backend="randomized")
        nxt = session.get_next(kind="topk_set", k=4, backend="randomized")
        assert nxt.top_k_set == top[0].top_k_set

    def test_seeded_sessions_reproduce(self, ds_md):
        results = []
        for _ in range(2):
            with StabilitySession(ds_md, seed=99, parallel=False) as s:
                r = s.top_stable(3, kind="topk_set", k=4, backend="randomized",
                                 budget=1_000)
                results.append([(x.top_k_set, x.stability) for x in r])
        assert results[0] == results[1]

    def test_config_rng_streams_independent_of_creation_order(self, ds_md):
        with StabilitySession(ds_md, seed=5, parallel=False) as a, \
             StabilitySession(ds_md, seed=5, parallel=False) as b:
            # a touches ranked first, b touches set first.
            a.top_stable(1, kind="topk_ranked", k=3, backend="randomized",
                         budget=500)
            ra = a.top_stable(1, kind="topk_set", k=3, backend="randomized",
                              budget=500)
            rb = b.top_stable(1, kind="topk_set", k=3, backend="randomized",
                              budget=500)
            assert ra[0].top_k_set == rb[0].top_k_set
            assert ra[0].stability == rb[0].stability


class TestExactConfigs:
    def test_2d_top_stable_matches_engine(self, paper_dataset):
        with StabilitySession(paper_dataset, seed=1) as session:
            via_session = session.top_stable(3)
            via_engine = StabilityEngine(paper_dataset).top_stable(3)
            assert [r.stability for r in via_session] == [
                r.stability for r in via_engine
            ]

    def test_2d_top_stable_idempotent_despite_get_next(self, paper_dataset):
        with StabilitySession(paper_dataset, seed=1) as session:
            first = session.top_stable(2)
            session.get_next()
            session.get_next()
            assert [r.stability for r in session.top_stable(2)] == [
                r.stability for r in first
            ]

    def test_2d_get_next_exhausts(self):
        tiny = Dataset(np.array([[0.9, 0.9], [0.1, 0.1]]))
        with StabilitySession(tiny) as session:
            session.get_next()
            with pytest.raises(ExhaustedError):
                session.get_next()

    def test_2d_topk_exact_via_session(self, paper_dataset):
        with StabilitySession(paper_dataset, seed=1) as session:
            results = session.top_stable(10, kind="topk_set", k=2)
            assert session.engine_for("topk_set", 2).backend_name == "twod_topk"
            assert abs(sum(r.stability for r in results) - 1.0) < 1e-9

    def test_min_stability_cut(self, paper_dataset):
        with StabilitySession(paper_dataset, seed=1) as session:
            all_results = session.top_stable(10)
            cut = session.top_stable(10, min_stability=0.2)
            assert cut == [r for r in all_results[: len(cut)]]
            assert all(r.stability >= 0.2 for r in cut)

    def test_observe_rejected_for_exact_config(self, paper_dataset):
        with StabilitySession(paper_dataset) as session:
            with pytest.raises(ValueError):
                session.observe(1_000)


class TestInvalidation:
    def test_invalidate_clears_state_and_cache(self, session):
        session.top_stable(2, kind="topk_set", k=4, backend="randomized")
        assert len(session.cache) > 0
        dropped = session.invalidate()
        assert dropped > 0
        assert session.stats()["configs"] == {}
        # Next query misses and resamples.
        misses_before = session.cache.stats.misses
        session.top_stable(2, kind="topk_set", k=4, backend="randomized")
        assert session.cache.stats.misses == misses_before + 1

    def test_refresh_detects_mutation(self, rng_factory):
        values = rng_factory(31).uniform(size=(50, 3))
        ds = Dataset(values)
        with StabilitySession(ds, seed=3, parallel=False) as session:
            session.top_stable(1, backend="randomized", budget=500)
            assert session.refresh() is False  # untouched
            # Simulate out-of-band mutation of the underlying buffer.
            ds.values.flags.writeable = True
            ds.values[0, 0] += 0.5
            assert session.refresh() is True
            assert session.stats()["configs"] == {}

    def test_replace_dataset_invalidates_and_refingerprints(
        self, session, rng_factory
    ):
        old_fp = session.fingerprint
        session.top_stable(1, kind="topk_set", k=4, backend="randomized")
        session.replace_dataset(Dataset(rng_factory(32).uniform(size=(40, 4))))
        assert session.fingerprint != old_fp
        assert session.stats()["configs"] == {}
        assert session.region.dim == 4

    def test_shared_cache_across_sessions(self, ds_md):
        shared = ResultCache(64)
        with StabilitySession(ds_md, seed=7, cache=shared, parallel=False) as a:
            a.top_stable(2, kind="topk_set", k=4, backend="randomized",
                         budget=800)
        with StabilitySession(ds_md, seed=7, cache=shared, parallel=False) as b:
            hits_before = shared.stats.hits
            b.top_stable(2, kind="topk_set", k=4, backend="randomized",
                         budget=800)
            assert shared.stats.hits == hits_before + 1
            # The hit answered without drawing a single sample in b.
            raw = b.engine_for("topk_set", 4, "randomized").backend.raw
            assert raw.total_samples == 0


class TestValidation:
    def test_bad_parallel_flag(self, ds_md):
        with pytest.raises(ValueError):
            StabilitySession(ds_md, parallel="sometimes")

    def test_bad_m(self, session):
        with pytest.raises(ValueError):
            session.top_stable(0)

    def test_stats_shape(self, session):
        session.top_stable(1, kind="topk_set", k=4, backend="randomized")
        stats = session.stats()
        assert set(stats) == {
            "fingerprint", "uptime_seconds", "cache", "cache_session",
            "cost", "executor", "executor_workers", "kernel", "sampling",
            "pool_bytes", "cache_bytes", "configs", "skyband_bands",
        }
        (label,) = stats["configs"]
        assert label == "topk_set:k=4@randomized"


class TestCacheKeyPoolDepth:
    def test_key_tracks_actual_pool_not_target(self, ds_md):
        # A pool that outgrew the target must not serve (or poison)
        # target-depth entries across sessions (code-review fix).
        shared = ResultCache(64)
        with StabilitySession(ds_md, seed=44, cache=shared,
                              parallel=False) as deep:
            deep.observe(8_000, kind="topk_set", k=4, backend="randomized")
            from_deep = deep.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_000
            )[0]
            assert from_deep.sample_count <= 8_000
            raw = deep.engine_for("topk_set", 4, "randomized").backend.raw
            assert raw.total_samples == 8_000  # answered from the deep pool
        with StabilitySession(ds_md, seed=44, cache=shared,
                              parallel=False) as shallow:
            from_shallow = shallow.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_000
            )[0]
            raw = shallow.engine_for("topk_set", 4, "randomized").backend.raw
            # Miss (different pool depth): computed from its own 1K pool.
            assert raw.total_samples == 1_000
            assert from_shallow.stability != from_deep.stability or (
                from_shallow.sample_count != from_deep.sample_count
            )

    def test_repeat_at_same_depth_still_hits(self, ds_md):
        with StabilitySession(ds_md, seed=45, parallel=False) as session:
            session.observe(3_000, kind="topk_set", k=4, backend="randomized")
            first = session.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_000
            )
            assert session.last_query_cached is False
            second = session.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_000
            )
            assert session.last_query_cached is True
            assert [r.stability for r in first] == [r.stability for r in second]

    def test_stability_of_keyed_by_depth(self, ds_md):
        with StabilitySession(ds_md, seed=46, parallel=False) as session:
            top = session.top_stable(
                1, kind="topk_set", k=4, backend="randomized", budget=1_000
            )[0]
            ids = tuple(sorted(top.top_k_set))
            shallow = session.stability_of(
                ids, kind="topk_set", k=4, backend="randomized",
                min_samples=1_000,
            )
            session.observe(4_000, kind="topk_set", k=4, backend="randomized")
            deeper = session.stability_of(
                ids, kind="topk_set", k=4, backend="randomized",
                min_samples=1_000,
            )
            # Depth changed: recomputed (no stale hit), more samples.
            assert session.last_query_cached is False
            assert deeper.sample_count >= shallow.sample_count


class TestThreadLocalCachedFlag:
    def test_last_query_cached_is_per_thread(self):
        """Concurrent read-locked queries must not cross-attribute
        cache hits: the TCP server reports 'cached' per request from
        executor threads sharing one session."""
        import threading

        import numpy as np

        from repro import Dataset, StabilitySession

        dataset = Dataset(np.random.default_rng(31).uniform(size=(50, 3)))
        with StabilitySession(dataset, seed=32, parallel=False) as session:
            # Warm the pool and the cache for one query identity.
            session.top_stable(1, kind="topk_set", k=3,
                               backend="randomized", budget=200)
            errors = []
            ready = threading.Barrier(2)

            def guarded(worker):
                def run():
                    try:
                        ready.wait(timeout=30)
                        worker()
                    except BaseException as exc:  # re-raised on the main thread
                        errors.append(exc)
                return run

            def hitter():
                for _ in range(200):
                    session.top_stable(1, kind="topk_set", k=3,
                                       backend="randomized", budget=200)
                    assert session.last_query_cached is True

            def misser():
                for m in range(2, 202):
                    # A new m each time: always a cache miss.
                    session.top_stable(m, kind="topk_set", k=3,
                                       backend="randomized", budget=200)
                    assert session.last_query_cached is False

            threads = [threading.Thread(target=guarded(hitter)),
                       threading.Thread(target=guarded(misser))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            # The main thread never queried: its view stays False.
            assert session.last_query_cached is False
