"""Golden-snapshot fixtures for the durable-sessions conformance suite.

Two small committed snapshots under ``tests/service/golden/`` pin the
on-disk format: whatever the current code becomes, it must keep
restoring them to sessions that answer a fixed probe workload with the
recorded values.  Each golden is a pair of files:

- ``<name>.snap`` — a format-v1 snapshot written by
  :func:`repro.service.persist.save_session`;
- ``<name>.expected.json`` — the probe answers and pool statistics a
  correct restore must reproduce.

Everything needed to rebuild them lives here, next to the tests that
consume them.  After an *intentional* format-version bump, regenerate
with::

    PYTHONPATH=src python tests/service/conftest.py --regenerate

and commit both files; an unintentional diff in either is a format
regression, not a fixture refresh.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro import Dataset, StabilitySession

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The paper's 5-item HR example (Figure 1a) — exact literals, so the
#: golden dataset can never drift with a generator change.
_PAPER_VALUES = [
    [0.63, 0.71],
    [0.83, 0.65],
    [0.58, 0.78],
    [0.70, 0.68],
    [0.53, 0.82],
]


def _dataset_paper_2d() -> Dataset:
    return Dataset(np.array(_PAPER_VALUES))


def _dataset_topk_md() -> Dataset:
    # PCG64's raw stream is a frozen numpy compatibility guarantee, so
    # this matrix is bit-identical on every platform and version.
    return Dataset(np.random.default_rng(20180905).uniform(size=(40, 3)))


def _warm_paper_2d(session: StabilitySession) -> None:
    session.top_stable(2)  # twod_exact enumeration prefix + cache entry
    session.get_next()  # exact cursor at 1
    session.get_next(kind="topk_set", k=2, backend="twod_topk")
    session.top_stable(2, kind="full", backend="randomized", budget=300)
    session.get_next(kind="full", backend="randomized", budget=300)


def _warm_topk_md(session: StabilitySession) -> None:
    session.top_stable(3, kind="topk_set", k=5, budget=500)
    session.get_next(kind="topk_ranked", k=4, budget=400)
    session.get_next(kind="topk_ranked", k=4, budget=400)
    best = session.top_stable(1, kind="topk_set", k=5, budget=500)[0]
    session.stability_of(
        sorted(best.top_k_set), kind="topk_set", k=5, min_samples=500
    )


GOLDEN_SPECS = {
    "v1_paper_2d": {
        "dataset": _dataset_paper_2d,
        "seed": 2018,
        "warm": _warm_paper_2d,
        "probes": [
            {"op": "top_stable", "m": 3},
            {"op": "get_next"},
            {"op": "get_next", "kind": "topk_set", "k": 2,
             "backend": "twod_topk"},
            {"op": "top_stable", "m": 2, "kind": "full",
             "backend": "randomized", "budget": 300},
            {"op": "get_next", "kind": "full", "backend": "randomized",
             "budget": 450},
        ],
    },
    "v1_topk_md": {
        "dataset": _dataset_topk_md,
        "seed": 77,
        "warm": _warm_topk_md,
        "probes": [
            {"op": "top_stable", "m": 3, "kind": "topk_set", "k": 5,
             "budget": 500},
            {"op": "get_next", "kind": "topk_ranked", "k": 4, "budget": 400},
            {"op": "get_next", "kind": "topk_ranked", "k": 4, "budget": 650},
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 5,
             "budget": 800},
        ],
    },
}


def _result_payload(result) -> dict:
    """One StabilityResult as the exact JSON-safe record the goldens pin."""
    region = None
    if result.region is not None and hasattr(result.region, "lo"):
        region = [result.region.lo, result.region.hi]
    return {
        "ranking": [int(i) for i in result.ranking.order],
        "stability": result.stability,
        "confidence_error": result.confidence_error,
        "sample_count": result.sample_count,
        "top_k_set": (
            sorted(int(i) for i in result.top_k_set)
            if result.top_k_set is not None
            else None
        ),
        "region": region,
    }


def run_probes(session: StabilitySession, probes) -> list:
    """Execute the probe workload, returning exact JSON-safe payloads."""
    out = []
    for probe in probes:
        probe = dict(probe)
        op = probe.pop("op")
        if op == "top_stable":
            results = session.top_stable(probe.pop("m"), **probe)
            out.append([_result_payload(r) for r in results])
        elif op == "get_next":
            out.append(_result_payload(session.get_next(**probe)))
        else:
            raise ValueError(f"unknown probe op {op!r}")
    return out


def build_golden_session(name: str) -> StabilitySession:
    """A freshly warmed session exactly as the golden snapshot recorded it."""
    spec = GOLDEN_SPECS[name]
    session = StabilitySession(
        spec["dataset"](), seed=spec["seed"], parallel=False
    )
    spec["warm"](session)
    return session


def regenerate(golden_dir: Path = GOLDEN_DIR) -> list[str]:
    """(Re)write every golden snapshot and its expected-answer sidecar."""
    golden_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, spec in GOLDEN_SPECS.items():
        snap_path = golden_dir / f"{name}.snap"
        with build_golden_session(name) as session:
            session.save(snap_path)
        # Expected answers come from a *restored* session, so the golden
        # pins the full save -> restore -> answer pipeline.  Pool stats
        # are recorded both as-saved (what restore must reproduce) and
        # after the probes (which consume cursors and grow pools).
        with StabilitySession.restore(
            snap_path, spec["dataset"](), parallel=False
        ) as restored:
            at_save = restored.stats()["configs"]
            expected = {
                "probes": spec["probes"],
                "stats_configs_at_save": at_save,
                "answers": run_probes(restored, spec["probes"]),
                "stats_configs_after_probes": restored.stats()["configs"],
            }
        expected_path = golden_dir / f"{name}.expected.json"
        expected_path.write_text(json.dumps(expected, indent=1) + "\n")
        written += [str(snap_path), str(expected_path)]
    return written
