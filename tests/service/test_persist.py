"""Snapshot/restore: round-trip equality, cursors, corruption, refusal.

The durable-sessions contract has two halves, and both are tested hard:

- a restored session must answer every future query **byte-identically**
  to the session that never restarted (the property grid below sweeps
  kinds x backends x budgets, including mid-``get_next`` cursor state);
- a snapshot that cannot be trusted — truncated, bit-flipped, produced
  by a newer format, or taken over different data — must raise a typed
  :class:`~repro.errors.SnapshotError`, never restore silently wrong
  state.
"""

import json
import struct
import zlib

import numpy as np
import pytest

from repro import Dataset, StabilitySession
from repro.core.randomized import GetNextRandomized
from repro.engine.kernel import RankingTally
from repro.errors import (
    ExhaustedError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotMismatchError,
    SnapshotVersionError,
)
from repro.loadgen.fuzz import CORRUPTION_CORPUS
from repro.service.persist import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    read_snapshot_header,
)


@pytest.fixture
def ds_md(rng_factory):
    return Dataset(rng_factory(30).uniform(size=(250, 3)))


@pytest.fixture
def ds_2d(paper_dataset):
    return paper_dataset


def result_key(result):
    """The full observable payload of one StabilityResult."""
    return (
        result.ranking.order,
        result.stability,
        result.confidence_error,
        result.sample_count,
        result.top_k_set,
        result.region,
    )


class TestTallyStateRoundTrip:
    def test_tally_buffers_rebuild_exactly(self, rng_factory):
        op = GetNextRandomized(
            Dataset(rng_factory(3).uniform(size=(40, 3))),
            kind="topk_set",
            k=5,
            rng=rng_factory(9),
        )
        op.observe(700)
        state = op.tally.export_state()
        rebuilt = RankingTally.from_state(40, **state)
        assert rebuilt.counts == op.tally.counts
        assert rebuilt._first_seen == op.tally._first_seen
        assert rebuilt.total == op.tally.total
        assert rebuilt.best_unreturned() == op.tally.best_unreturned()

    def test_from_state_rejects_inconsistent_buffers(self, rng_factory):
        op = GetNextRandomized(
            Dataset(rng_factory(3).uniform(size=(40, 3))),
            kind="topk_set",
            k=5,
            rng=rng_factory(9),
        )
        op.observe(300)
        good = op.tally.export_state()
        bad = dict(good, total=good["total"] + 1)
        with pytest.raises(ValueError, match="sum"):
            RankingTally.from_state(40, **bad)
        bad = dict(good, keys=good["keys"][:-1])
        with pytest.raises(ValueError, match="blob"):
            RankingTally.from_state(40, **bad)
        bad = dict(good, dtype="uint32")
        with pytest.raises(ValueError, match="dtype"):
            RankingTally.from_state(40, **bad)

    def test_operator_state_resumes_rng_mid_stream(self, rng_factory):
        ds = Dataset(rng_factory(4).uniform(size=(60, 3)))
        a = GetNextRandomized(ds, kind="full", rng=rng_factory(5))
        a.observe(400)
        state = a.export_state()
        b = GetNextRandomized(ds, kind="full", rng=rng_factory(999))
        b.restore_state(state)
        a.observe(300)
        b.observe(300)
        assert a.tally.counts == b.tally.counts
        assert a.tally._first_seen == b.tally._first_seen

    def test_operator_state_rejects_wrong_config(self, rng_factory):
        ds = Dataset(rng_factory(4).uniform(size=(60, 3)))
        a = GetNextRandomized(ds, kind="topk_set", k=5, rng=rng_factory(5))
        a.observe(100)
        b = GetNextRandomized(ds, kind="topk_set", k=6, rng=rng_factory(5))
        with pytest.raises(ValueError, match="kind"):
            b.restore_state(a.export_state())

    def test_operator_state_rejects_wrong_region(self, rng_factory):
        """A pool sampled over one region must not blend into another."""
        from repro import Cone

        ds = Dataset(rng_factory(4).uniform(size=(60, 3)))
        a = GetNextRandomized(ds, kind="topk_set", k=5, rng=rng_factory(5))
        a.observe(100)
        b = GetNextRandomized(
            ds,
            kind="topk_set",
            k=5,
            region=Cone(np.ones(3), 0.3),
            rng=rng_factory(5),
        )
        with pytest.raises(ValueError, match="region"):
            b.restore_state(a.export_state())

    def test_save_to_unwritable_path_is_a_typed_error(self, ds_md, tmp_path):
        with StabilitySession(ds_md, seed=5, parallel=False) as session:
            session.observe(100, kind="topk_set", k=3)
            with pytest.raises(SnapshotError, match="cannot write"):
                session.save(tmp_path / "no" / "such" / "dir" / "p.snap")


def _grid_workload(kind, k, backend, budget):
    """A mixed future workload for one configuration."""

    def run(session):
        out = [
            result_key(r)
            for r in session.top_stable(
                3, kind=kind, k=k, backend=backend, budget=budget
            )
        ]
        for _ in range(2):
            try:
                out.append(
                    result_key(
                        session.get_next(
                            kind=kind, k=k, backend=backend, budget=budget
                        )
                    )
                )
            except ExhaustedError:
                out.append("exhausted")
        probe = session.top_stable(
            1, kind=kind, k=k, backend=backend, budget=budget
        )
        if probe:
            out.append(
                result_key(
                    session.stability_of(
                        list(probe[0].ranking.order),
                        kind=kind,
                        k=k,
                        backend=backend,
                        min_samples=budget,
                    )
                )
            )
        return out

    return run


class TestSaveRestoreProperty:
    """save -> restore -> query == uninterrupted query, across the grid."""

    @pytest.mark.parametrize(
        "kind,k,backend,budget",
        [
            ("full", None, "randomized", 400),
            ("full", None, "randomized", 1100),
            ("topk_set", 5, "randomized", 400),
            ("topk_set", 5, "randomized", 1100),
            ("topk_ranked", 4, "randomized", 700),
            ("full", None, "md_arrangement", None),
        ],
    )
    def test_grid(self, ds_md, rng_factory, tmp_path, kind, k, backend, budget):
        if backend == "md_arrangement":
            # The lazy arrangement is for small n; a 250-item instance
            # would dominate the suite's wall-clock.
            ds_md = Dataset(rng_factory(33).uniform(size=(18, 3)))
        path = tmp_path / "grid.snap"
        live = StabilitySession(ds_md, seed=17, parallel=False)
        # Interrupt mid-protocol: one consumed cursor entry, a warm
        # top_stable, then snapshot.
        live.top_stable(2, kind=kind, k=k, backend=backend, budget=budget)
        live.get_next(kind=kind, k=k, backend=backend, budget=budget)
        live.save(path)
        restored = StabilitySession.restore(path, ds_md, parallel=False)
        workload = _grid_workload(kind, k, backend, budget)
        with live, restored:
            assert workload(restored) == workload(live)
            assert restored.stats()["configs"] == live.stats()["configs"]

    @pytest.mark.parametrize("kind,k", [("full", None), ("topk_set", 2)])
    def test_exact_2d_cursor_survives(self, ds_2d, tmp_path, kind, k):
        backend = "twod_exact" if kind == "full" else "twod_topk"
        path = tmp_path / "2d.snap"
        live = StabilitySession(ds_2d, seed=3)
        live.get_next(kind=kind, k=k, backend=backend)
        live.get_next(kind=kind, k=k, backend=backend)
        live.save(path)
        restored = StabilitySession.restore(path, ds_2d)

        def step(session):
            try:
                return result_key(session.get_next(kind=kind, k=k, backend=backend))
            except ExhaustedError:
                return "exhausted"

        with live, restored:
            # The cursor resumes where it stopped — no rewind, no skip,
            # and exhaustion strikes at the same step.
            for _ in range(3):
                assert step(restored) == step(live)

    def test_mid_get_next_cursor_not_rewound(self, ds_md, tmp_path):
        """A consumed ranking stays consumed across the restart."""
        path = tmp_path / "cursor.snap"
        live = StabilitySession(ds_md, seed=23, parallel=False)
        first = live.get_next(kind="topk_set", k=4, budget=900)
        live.save(path)
        restored = StabilitySession.restore(path, ds_md, parallel=False)
        with live, restored:
            again = restored.get_next(kind="topk_set", k=4, budget=900)
            assert result_key(again) != result_key(first)
            assert result_key(again) == result_key(
                live.get_next(kind="topk_set", k=4, budget=900)
            )

    def test_restored_cache_is_warm(self, ds_md, tmp_path):
        path = tmp_path / "warm.snap"
        with StabilitySession(ds_md, seed=5, parallel=False) as live:
            live.top_stable(3, kind="topk_set", k=5, budget=800)
            live.save(path)
        with StabilitySession.restore(path, ds_md, parallel=False) as restored:
            restored.top_stable(3, kind="topk_set", k=5, budget=800)
            assert restored.last_query_cached

    def test_restore_with_fresh_runtime_knobs(self, ds_md, tmp_path):
        """parallel/workers are runtime choices, not snapshot state."""
        path = tmp_path / "knobs.snap"
        with StabilitySession(ds_md, seed=5, parallel=False) as live:
            live.observe(600, kind="topk_set", k=4)
            live.save(path)
            expected = [
                result_key(r)
                for r in live.top_stable(2, kind="topk_set", k=4, budget=1_000)
            ]
        restored = StabilitySession.restore(
            path, ds_md, parallel=True, max_workers=2
        )
        with restored:
            got = [
                result_key(r)
                for r in restored.top_stable(2, kind="topk_set", k=4, budget=1_000)
            ]
        assert got == expected

    def test_mixed_batch_workload_byte_identical(self, ds_md, tmp_path):
        """A restored session runs execute_batch exactly like the original."""
        from repro import execute_batch

        workload = [
            {"op": "top_stable", "m": 3, "kind": "topk_set", "k": 5,
             "backend": "randomized", "budget": 900},
            {"op": "get_next", "kind": "topk_set", "k": 5,
             "backend": "randomized", "budget": 900},
            {"op": "top_stable", "m": 2, "kind": "topk_ranked", "k": 4,
             "backend": "randomized", "budget": 700},
            {"op": "stability_of", "kind": "topk_set", "k": 3,
             "backend": "randomized", "ranking": [0, 1, 2],
             "min_samples": 500},
            {"op": "get_next", "kind": "topk_ranked", "k": 4,
             "backend": "randomized", "budget": 1000},
        ]
        path = tmp_path / "batch.snap"
        live = StabilitySession(ds_md, seed=41, parallel=False)
        live.run_batch(workload)  # warm pools mid-protocol
        live.save(path)
        restored = StabilitySession.restore(path, ds_md, parallel=False)

        def payloads(outcomes):
            out = []
            for o in outcomes:
                assert o.ok, o.error
                value = o.value if isinstance(o.value, list) else [o.value]
                out.append([result_key(r) for r in value])
            return out

        with live, restored:
            assert payloads(execute_batch(restored, workload)) == payloads(
                execute_batch(live, workload)
            )

    def test_snapshot_of_restored_session_round_trips(self, ds_md, tmp_path):
        """restore -> save -> restore is as good as the original."""
        first, second = tmp_path / "a.snap", tmp_path / "b.snap"
        with StabilitySession(ds_md, seed=29, parallel=False) as live:
            live.top_stable(2, kind="topk_set", k=5, budget=700)
            live.save(first)
            expected = result_key(live.get_next(kind="topk_set", k=5, budget=700))
        mid = StabilitySession.restore(first, ds_md, parallel=False)
        with mid:
            mid.save(second)
        with StabilitySession.restore(second, ds_md, parallel=False) as restored:
            assert result_key(
                restored.get_next(kind="topk_set", k=5, budget=700)
            ) == expected


@pytest.fixture
def snapshot_file(ds_md, tmp_path):
    path = tmp_path / "pool.snap"
    with StabilitySession(ds_md, seed=11, parallel=False) as session:
        session.top_stable(2, kind="topk_set", k=5, budget=600)
        session.get_next(backend="randomized", budget=500)
        session.save(path)
    return path


class TestCorruption:
    """Every way a snapshot can lie must raise a typed SnapshotError.

    The byte-mutation cases live in the shared corruption corpus
    (:data:`repro.loadgen.fuzz.CORRUPTION_CORPUS`) so this suite and
    the snapshot fuzzer pin the exact same refusals; only mutations
    that need a *different dataset or region* (not different bytes)
    stay as bespoke tests below.
    """

    @pytest.mark.parametrize(
        "case", CORRUPTION_CORPUS, ids=lambda case: case.name
    )
    def test_corrupted_bytes_refuse_typed(self, case, snapshot_file, ds_md):
        snapshot_file.write_bytes(case.mutate(snapshot_file.read_bytes()))
        with pytest.raises(case.raises, match=case.match):
            StabilitySession.restore(snapshot_file, ds_md, parallel=False)

    def test_header_reader_rejects_noise(self, tmp_path):
        """The cheap header probe refuses garbage too, not just restore."""
        path = tmp_path / "noise.snap"
        path.write_bytes(b"definitely not a snapshot file")
        with pytest.raises(SnapshotFormatError, match="magic"):
            read_snapshot_header(path)
        path.write_bytes(SNAPSHOT_MAGIC[:4])
        with pytest.raises(SnapshotFormatError, match="short"):
            read_snapshot_header(path)

    def test_wrong_dataset_fingerprint(self, snapshot_file, rng_factory):
        other = Dataset(rng_factory(31).uniform(size=(250, 3)))
        with pytest.raises(SnapshotMismatchError, match="fingerprint"):
            StabilitySession.restore(snapshot_file, other)

    def test_wrong_region(self, snapshot_file, ds_md):
        from repro import Cone

        with pytest.raises(SnapshotMismatchError, match="region"):
            StabilitySession.restore(
                snapshot_file, ds_md, region=Cone(np.ones(3), 0.3)
            )

    def test_region_identity_is_content_not_shape(self, ds_md, tmp_path):
        """Regions that sample differently must never be conflated.

        Guards the repr-keyed identity checks against lossy reprs: a
        constraint region with the *opposite* constraint, and a cone
        whose angle differs below 6 significant digits, both used to
        repr identically.
        """
        from repro import Cone
        from repro.core.region import ConstrainedRegion

        path = tmp_path / "region.snap"
        with StabilitySession(
            ds_md, region=ConstrainedRegion([[1.0, -1.0, 0.0]]), seed=3,
            parallel=False,
        ) as live:
            live.observe(100, kind="topk_set", k=3)
            live.save(path)
        with pytest.raises(SnapshotMismatchError, match="region"):
            StabilitySession.restore(
                path, ds_md, region=ConstrainedRegion([[-1.0, 1.0, 0.0]])
            )
        path2 = tmp_path / "cone.snap"
        with StabilitySession(
            ds_md, region=Cone(np.ones(3), 0.3000001), seed=3, parallel=False
        ) as live:
            live.observe(100, kind="topk_set", k=3)
            live.save(path2)
        with pytest.raises(SnapshotMismatchError, match="region"):
            StabilitySession.restore(
                path2, ds_md, region=Cone(np.ones(3), 0.3000004)
            )

    def test_all_corruption_errors_are_snapshot_errors(self):
        for exc in (
            SnapshotFormatError,
            SnapshotIntegrityError,
            SnapshotVersionError,
            SnapshotMismatchError,
        ):
            assert issubclass(exc, SnapshotError)


class TestHeaderInspection:
    def test_header_describes_the_snapshot(self, snapshot_file, ds_md):
        header = read_snapshot_header(snapshot_file)
        assert header["format_version"] == SNAPSHOT_VERSION
        assert header["n_items"] == ds_md.n_items
        assert header["n_attributes"] == ds_md.n_attributes
        assert len(header["configs"]) == 2
        names = {s["name"] for s in header["sections"]}
        assert "cache" in names
        assert any(n.startswith("tally/") for n in names)


class TestQuasiStreamPersistence:
    """A qmc pool must restore mid-sequence: the continuation after a
    save/load is the continuation the unsaved session would produce."""

    def test_qmc_session_roundtrip_continues_stream(self, ds_md, tmp_path):
        path = tmp_path / "qmc.snap"
        with StabilitySession(
            ds_md, seed=7, sampling="qmc", parallel=False
        ) as original:
            original.observe(800, kind="topk_set", k=4)
            original.save(path)
            original.observe(700, kind="topk_set", k=4)
            expected = [result_key(r) for r in original.top_stable(
                3, kind="topk_set", k=4, budget=1_500
            )]
        with StabilitySession.restore(path, ds_md, parallel=False) as restored:
            assert restored.sampling == "qmc"
            got = [result_key(r) for r in restored.top_stable(
                3, kind="topk_set", k=4, budget=1_500
            )]
        assert got == expected

    def test_mc_snapshot_restores_without_sampling_key(self, ds_md, tmp_path):
        """Old snapshots carry no sampling header/operator state."""
        path = tmp_path / "mc.snap"
        with StabilitySession(ds_md, seed=7, parallel=False) as original:
            original.observe(500, kind="topk_set", k=4)
            original.save(path)
        # Strip the new keys the way a pre-kernel writer would not have
        # written them, then restore.
        raw = path.read_bytes()
        magic, version, header_len = raw[:8], raw[8:10], raw[10:14]
        n = struct.unpack("<I", header_len)[0]
        header = json.loads(raw[14 : 14 + n].decode())
        header.pop("sampling", None)
        for record in header["configs"]:
            if "state" in record:
                record["state"].pop("sampling", None)
                record["state"].pop("qmc", None)
        body = json.dumps(header, separators=(",", ":")).encode()
        stripped = (
            magic
            + version
            + struct.pack("<I", len(body))
            + body
            + struct.pack("<I", zlib.crc32(body))
            + raw[14 + n + 4 :]
        )
        legacy = tmp_path / "legacy.snap"
        legacy.write_bytes(stripped)
        with StabilitySession.restore(legacy, ds_md, parallel=False) as restored:
            assert restored.sampling == "mc"
            restored.observe(200, kind="topk_set", k=4)
