"""Service-suite conftest: the golden-fixture regeneration entry point.

The golden snapshots under ``golden/`` pin the durable-session format;
their specs, builders, and probe runner live in
:mod:`tests.service.golden_specs` (importable by the tests).  After an
*intentional* format change, regenerate and commit both files per
golden with::

    PYTHONPATH=src python tests/service/conftest.py --regenerate

An unintentional diff in either file is a format regression, not a
fixture refresh.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from golden_specs import GOLDEN_DIR, GOLDEN_SPECS, regenerate  # noqa: E402,F401

if __name__ == "__main__":
    if "--regenerate" not in sys.argv:
        raise SystemExit(
            "golden fixtures are committed state; pass --regenerate to rewrite"
        )
    for path in regenerate():
        print(f"wrote {path}")
