"""Shared fixtures: the paper's running example and seeded generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset


@pytest.fixture
def paper_values() -> np.ndarray:
    """The 5-item HR example of Figure 1a (Example 2)."""
    return np.array(
        [
            [0.63, 0.71],  # t1
            [0.83, 0.65],  # t2
            [0.58, 0.78],  # t3
            [0.70, 0.68],  # t4
            [0.53, 0.82],  # t5
        ]
    )


@pytest.fixture
def paper_dataset(paper_values) -> Dataset:
    return Dataset(
        paper_values,
        item_labels=["t1", "t2", "t3", "t4", "t5"],
        attribute_names=["x1", "x2"],
    )


@pytest.fixture(autouse=True)
def no_shared_memory_leaks():
    """Every test must leave the shared-memory registry empty.

    A segment surviving its owning engine would pin RAM in ``/dev/shm``
    for the life of the machine; the owner-side registry makes the
    invariant cheap to assert after every single test.
    """
    from repro.service.procpool import live_segments

    assert live_segments() == (), "shared memory leaked into this test"
    yield
    assert live_segments() == (), "test leaked shared-memory segments"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20181218)


@pytest.fixture
def rng_factory():
    """Factory for independent, deterministic generators."""

    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
