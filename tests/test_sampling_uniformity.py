"""Statistical uniformity tests reproducing Figures 3-6 quantitatively.

The paper demonstrates sampler correctness visually (scatter plots); here
the same claims are chi-square / moment tests:

- Figure 3: naive angle sampling is *not* uniform on the 3-sphere orthant;
- Figure 4: Algorithm 9's output *is* uniform;
- Figure 6: cap samples around arbitrary rays stay in the cap and follow
  the correct colatitude law for both inverse-CDF backends.
"""

import math

import numpy as np
import pytest
from scipy import stats

from repro.geometry.angles import angles_to_weights, as_unit_vector
from repro.geometry.spherical import cap_cdf
from repro.sampling.cap import sample_cap
from repro.sampling.uniform import sample_angles_naive, sample_orthant


def _solid_angle_counts(points, bins=4):
    """Bucket orthant directions by their first two angular coordinates.

    Equal-area binning on the orthant is awkward; instead we compare
    against a high-count reference histogram, so any equal-measure
    partition works.  We use the z-value and azimuth quantile grid.
    """
    z = points[:, -1]
    azimuth = np.arctan2(points[:, 1], points[:, 0])
    # For a uniform sample on the orthant of S^2: z ~ uniform [0, 1]
    # (Archimedes), azimuth ~ uniform [0, pi/2].
    z_bins = np.clip((z * bins).astype(int), 0, bins - 1)
    a_bins = np.clip((azimuth / (np.pi / 2) * bins).astype(int), 0, bins - 1)
    counts = np.zeros((bins, bins))
    for zb, ab in zip(z_bins, a_bins):
        counts[zb, ab] += 1
    return counts.ravel()


class TestFigure4Uniformity:
    def test_z_coordinate_uniform_3d(self, rng):
        # Archimedes' hat-box: for uniform points on S^2, each coordinate
        # is uniform; folded to the orthant, z ~ U[0, 1].
        pts = sample_orthant(3, 40_000, rng)
        ks = stats.kstest(pts[:, 2], "uniform")
        assert ks.pvalue > 0.01

    def test_chi_square_solid_angles(self, rng):
        pts = sample_orthant(3, 64_000, rng)
        counts = _solid_angle_counts(pts)
        chi = stats.chisquare(counts)
        assert chi.pvalue > 0.001

    def test_symmetry_under_coordinate_permutation(self, rng):
        pts = sample_orthant(4, 40_000, rng)
        # All marginals identical: compare first and last coordinates.
        ks = stats.ks_2samp(pts[:, 0], pts[:, 3])
        assert ks.pvalue > 0.01


class TestFigure3Bias:
    def test_naive_sampler_fails_uniformity(self, rng):
        pts = sample_angles_naive(3, 40_000, rng)
        ks = stats.kstest(pts[:, 2], "uniform")
        assert ks.pvalue < 1e-6  # decisively non-uniform

    def test_naive_density_drops_towards_equator(self, rng):
        # "the density of the end points reduces moving from the top of
        # the figure to the bottom."
        pts = sample_angles_naive(3, 40_000, rng)
        top = np.sum(pts[:, 2] > 0.9)
        bottom = np.sum(pts[:, 2] < 0.1)
        assert top > 2 * bottom


class TestFigure6CapSamples:
    @pytest.mark.parametrize("method", ["exact", "riemann"])
    def test_green_configuration(self, method, rng):
        # Cap around polar angles (pi/3, pi/3) with theta = pi/20.
        ray = angles_to_weights(np.array([math.pi / 3, math.pi / 3]))
        pts = sample_cap(ray, math.pi / 20, 5000, rng, method=method)
        cosines = pts @ as_unit_vector(ray)
        assert np.all(cosines >= math.cos(math.pi / 20) - 1e-9)

    @pytest.mark.parametrize("method", ["exact", "riemann"])
    def test_red_configuration_colatitude_law(self, method, rng):
        # Cap around polar angles (pi/6, pi/4), theta = pi/20 (Figure 6's
        # red points use the closed-form Equation 15 in the paper).
        ray = angles_to_weights(np.array([math.pi / 6, math.pi / 4]))
        theta = math.pi / 20
        pts = sample_cap(ray, theta, 8000, rng, method=method)
        colat = np.arccos(np.clip(pts @ as_unit_vector(ray), -1, 1))
        grid = np.linspace(0.05 * theta, 0.95 * theta, 8)
        for x in grid:
            empirical = float(np.mean(colat <= x))
            assert abs(empirical - cap_cdf(x, theta, 3)) < 0.03

    def test_cap_mean_direction_matches_ray(self, rng):
        ray = np.array([0.2, 0.9, 0.4])
        pts = sample_cap(ray, math.pi / 30, 10_000, rng)
        mean_dir = as_unit_vector(pts.mean(axis=0))
        assert float(mean_dir @ as_unit_vector(ray)) > 0.9999
