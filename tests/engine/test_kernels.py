"""The pluggable kernel-backend registry and its byte-identity contract."""

import importlib.util

import numpy as np
import pytest

from repro import Dataset
from repro.core.randomized import GetNextRandomized
from repro.engine import kernel, kernels

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

KINDS = [("full", None), ("topk_ranked", 3), ("topk_set", 3), ("topk_ranked", 1)]


def _dataset(rng, n=30, d=3):
    return Dataset(rng.uniform(0.05, 1.0, size=(n, d)))


def _tally_fingerprint(op):
    tally = op._tally
    state = dict(tally.export_state())
    counts = state.pop("counts")
    return (
        state,
        counts.tobytes(),
        list(tally._first_seen),
        op.rng.bit_generator.state,
    )


class TestRegistry:
    def test_numpy_always_available(self):
        table = kernels.available_kernels()
        assert table["numpy"] is True
        assert "numba" in table

    def test_get_kernel_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_kernel("cuda")

    def test_get_kernel_returns_shared_instance(self):
        assert kernels.get_kernel("numpy") is kernels.get_kernel("numpy")

    def test_get_kernel_unavailable_is_strict(self):
        if HAVE_NUMBA:
            pytest.skip("numba importable here: nothing is unavailable")
        with pytest.raises(ValueError, match="not available"):
            kernels.get_kernel("numba")


class TestResolvePrecedence:
    def test_auto_without_env(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        backend = kernels.resolve_kernel(None)
        assert backend.name == ("numba" if HAVE_NUMBA else "numpy")

    def test_auto_name_matches_default(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        assert kernels.resolve_kernel("auto") is kernels.resolve_kernel(None)

    def test_env_beats_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        assert kernels.resolve_kernel(None).name == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "nonsense")
        assert kernels.resolve_kernel("numpy").name == "numpy"

    def test_empty_env_is_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "")
        assert kernels.resolve_kernel(None) is kernels.resolve_kernel("auto")

    def test_instance_passthrough(self):
        backend = kernels.get_kernel("numpy")
        assert kernels.resolve_kernel(backend) is backend

    def test_unknown_name_errors(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_kernel("cuda")

    def test_named_unavailable_degrades_with_warning(self):
        if HAVE_NUMBA:
            pytest.skip("numba importable here: nothing degrades")
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = kernels.resolve_kernel("numba")
        assert backend.name == "numpy"


class TestNumpyBackend:
    def test_reduce_chunk_matches_hand_pipeline(self, rng):
        values = rng.uniform(size=(25, 3))
        weights = rng.uniform(0.01, 1.0, size=(40, 3))
        dtype = kernel.key_dtype_for(25)
        backend = kernels.get_kernel("numpy")
        uniques, freqs, n_rows = backend.reduce_chunk(
            values, weights, kind="topk_set", k=4, key_dtype=dtype
        )
        rows = kernel.topk_rows(
            kernel.score_block(values, weights), 4, ranked=False
        )
        expected_u, expected_f = np.unique(
            kernel.pack_rows(rows, dtype), return_counts=True
        )
        assert n_rows == 40
        assert np.array_equal(uniques, expected_u)
        assert np.array_equal(freqs, expected_f)

    def test_out_buffer_changes_nothing(self, rng):
        values = rng.uniform(size=(25, 3))
        weights = rng.uniform(0.01, 1.0, size=(16, 3))
        dtype = kernel.key_dtype_for(25)
        backend = kernels.get_kernel("numpy")
        plain = backend.reduce_chunk(
            values, weights, kind="topk_ranked", k=3, key_dtype=dtype
        )
        buf = np.full((32, 25), np.nan)  # oversized, poisoned
        buffered = backend.reduce_chunk(
            values, weights, kind="topk_ranked", k=3, key_dtype=dtype, out=buf
        )
        assert np.array_equal(plain[0], buffered[0])
        assert np.array_equal(plain[1], buffered[1])
        assert plain[2] == buffered[2]

    def test_candidate_map_back(self, rng):
        values = rng.uniform(size=(8, 3))
        weights = rng.uniform(0.01, 1.0, size=(10, 3))
        candidates = np.array([3, 11, 27, 40, 41, 55, 56, 90])
        dtype = kernel.key_dtype_for(91)
        backend = kernels.get_kernel("numpy")
        uniques, _, _ = backend.reduce_chunk(
            values, weights, kind="topk_set", k=2, key_dtype=dtype,
            candidates=candidates,
        )
        for key in uniques:
            ids = kernel.unpack_key(key.tobytes(), dtype)
            assert set(ids) <= set(candidates.tolist())


class TestNumbaFallbackPaths:
    """The parts of NumbaKernel that run without numba installed."""

    def test_full_kind_uses_reference(self, rng):
        backend = kernels.NumbaKernel()
        scores = rng.uniform(-1, 1, size=(6, 9))
        assert np.array_equal(
            backend.rank_rows(scores, kind="full", k=None),
            kernel.full_ranking_rows(scores),
        )

    def test_chunk_scale_is_larger(self):
        assert kernels.NumbaKernel.chunk_scale > kernels.KernelBackend.chunk_scale


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaParity:
    """The jitted selection must match the reference bit for bit."""

    @pytest.mark.parametrize("kind,k", KINDS)
    def test_rank_rows_matches_reference(self, rng, kind, k):
        numba_backend = kernels.get_kernel("numba")
        numpy_backend = kernels.get_kernel("numpy")
        scores = rng.uniform(-1, 1, size=(64, 23))
        assert np.array_equal(
            numba_backend.rank_rows(scores, kind=kind, k=k),
            numpy_backend.rank_rows(scores, kind=kind, k=k),
        )

    def test_exact_ties_break_by_ascending_id(self):
        backend = kernels.get_kernel("numba")
        scores = np.array([[0.5, 0.7, 0.5, 0.7, 0.1]])
        assert backend.rank_rows(scores, kind="topk_ranked", k=3).tolist() == [
            [1, 3, 0]
        ]
        assert backend.rank_rows(scores, kind="topk_set", k=4).tolist() == [
            [0, 1, 2, 3]
        ]

    def test_all_equal_scores(self):
        backend = kernels.get_kernel("numba")
        scores = np.zeros((3, 7))
        assert backend.rank_rows(scores, kind="topk_ranked", k=4).tolist() == [
            [0, 1, 2, 3]
        ] * 3

    def test_k_bounds(self, rng):
        backend = kernels.get_kernel("numba")
        scores = rng.uniform(size=(2, 5))
        with pytest.raises(ValueError):
            backend.rank_rows(scores, kind="topk_set", k=0)
        with pytest.raises(ValueError):
            backend.rank_rows(scores, kind="topk_set", k=6)

    @pytest.mark.parametrize("kind,k", [("topk_ranked", 3), ("topk_set", 4)])
    @pytest.mark.parametrize("budget", [100, 1000])
    def test_operator_tallies_byte_identical(self, rng_factory, kind, k, budget):
        ops = []
        for name in ("numpy", "numba"):
            op = GetNextRandomized(
                _dataset(rng_factory(3)),
                kind=kind,
                k=k,
                rng=rng_factory(99),
                kernel_backend=name,
            )
            op.observe(budget)
            ops.append(op)
        assert _tally_fingerprint(ops[0]) == _tally_fingerprint(ops[1])


class TestOperatorKernelWiring:
    def test_default_backend_resolves(self, rng_factory, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        op = GetNextRandomized(_dataset(rng_factory(0)), rng=rng_factory(1))
        assert op.kernel_backend is kernels.resolve_kernel(None)

    def test_env_selects_operator_backend(self, rng_factory, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        op = GetNextRandomized(_dataset(rng_factory(0)), rng=rng_factory(1))
        assert op.kernel_backend.name == "numpy"

    def test_explicit_backend_matches_default_tallies(self, rng_factory):
        """The kernel dial is a pure speed knob: same bytes out."""
        reference = GetNextRandomized(
            _dataset(rng_factory(5)), kind="topk_set", k=4, rng=rng_factory(7)
        )
        explicit = GetNextRandomized(
            _dataset(rng_factory(5)),
            kind="topk_set",
            k=4,
            rng=rng_factory(7),
            kernel_backend="numpy",
        )
        reference.observe(600)
        explicit.observe(600)
        assert _tally_fingerprint(reference) == _tally_fingerprint(explicit)

    def test_chunk_plan_invariance_with_shared_buffer(self, rng_factory):
        """Many tiny chunks through one reused ``out=`` buffer must count
        exactly what one big chunk counts.

        First-seen *order* is plan-dependent by design (``np.unique``
        sorts within each chunk), so the invariant is the count map and
        the rng stream, not the key byte order.
        """
        def counts(op):
            state = op._tally.export_state()
            width = state["key_length"] * np.dtype(state["dtype"]).itemsize
            keys = [
                state["keys"][i * width : (i + 1) * width]
                for i in range(state["n_keys"])
            ]
            return dict(zip(keys, state["counts"].tolist()))

        tiny = GetNextRandomized(
            _dataset(rng_factory(2)),
            kind="topk_ranked",
            k=3,
            rng=rng_factory(11),
            scoring_chunk=7,
        )
        big = GetNextRandomized(
            _dataset(rng_factory(2)),
            kind="topk_ranked",
            k=3,
            rng=rng_factory(11),
            scoring_chunk=10_000,
        )
        tiny.observe(500)
        big.observe(500)
        assert counts(tiny) == counts(big)
        assert tiny.rng.bit_generator.state == big.rng.bit_generator.state


class TestBackendAwareChunking:
    def test_scale_grows_chunk_and_cap(self, monkeypatch):
        monkeypatch.delenv(kernel.CHUNK_ENV_VAR, raising=False)
        base = kernel.auto_chunk_size(5_000)
        scaled = kernel.auto_chunk_size(5_000, scale=4.0)
        assert scaled >= base
        # The ceiling scales too: tiny datasets may use bigger blocks.
        assert kernel.auto_chunk_size(1, scale=4.0) >= kernel.auto_chunk_size(1)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            kernel.auto_chunk_size(100, scale=0.0)

    def test_env_pin_overrides_scale(self, monkeypatch):
        monkeypatch.setenv(kernel.CHUNK_ENV_VAR, "123")
        assert kernel.auto_chunk_size(100, scale=4.0) == 123
        assert kernel.auto_chunk_size(1_000_000, scale=0.25) == 123

    def test_operator_chunk_uses_backend_scale(self, rng_factory, monkeypatch):
        monkeypatch.delenv(kernel.CHUNK_ENV_VAR, raising=False)
        op = GetNextRandomized(
            _dataset(rng_factory(0), n=5_000),
            rng=rng_factory(1),
            kernel_backend="numpy",
        )
        expected = kernel.auto_chunk_size(
            5_000, scale=op.kernel_backend.chunk_scale
        )
        assert op.scoring_chunk == expected


class TestPackBoundaries:
    """Round-trips at the dtype-width fenceposts."""

    @pytest.mark.parametrize("n_items", [255, 256, 257, 65535, 65536, 65537])
    def test_key_dtype_widths(self, n_items):
        dtype = kernel.key_dtype_for(n_items)
        # Ids run 0..n-1: 256 ids still fit uint8, 65536 still fit uint16.
        if n_items <= 256:
            assert dtype == np.dtype("<u1")
        elif n_items <= 65536:
            assert dtype == np.dtype("<u2")
        else:
            assert dtype == np.dtype("<u4")

    @pytest.mark.parametrize("n_items", [255, 256, 257, 65535, 65536, 65537])
    def test_pack_rows_roundtrip_at_extremes(self, n_items):
        dtype = kernel.key_dtype_for(n_items)
        rows = np.array(
            [
                [0, 1, n_items - 2, n_items - 1],
                [n_items - 1, n_items - 2, 1, 0],
            ]
        )
        packed = kernel.pack_rows(rows, dtype)
        for key, row in zip(packed, rows):
            assert kernel.unpack_key(key.tobytes(), dtype) == tuple(row)

    @pytest.mark.parametrize("n_items", [255, 256, 65535, 65536])
    def test_tally_pack_prefix_boundary_ids(self, n_items):
        tally = kernel.RankingTally(n_items, 3)
        ids = [n_items - 1, 0, n_items - 2]
        packed = tally.pack(ids)
        assert kernel.unpack_key(packed, tally.dtype) == tuple(ids)
        prefix = tally.pack_prefix(ids[:2])
        assert packed.startswith(prefix)
        # A boundary id must occupy exactly one dtype-width cell.
        assert len(packed) == 3 * tally.dtype.itemsize
