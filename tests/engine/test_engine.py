"""Tests for the StabilityEngine facade and backend registry."""

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    GetNext2D,
    GetNextMD,
    GetNextRandomized,
    StabilityEngine,
    available_backends,
    create_backend,
    resolve_backend,
)
from repro.errors import ExhaustedError


@pytest.fixture
def ds2(rng_factory):
    return Dataset(rng_factory(1).uniform(size=(8, 2)))


@pytest.fixture
def ds3(rng_factory):
    return Dataset(rng_factory(2).uniform(size=(10, 3)))


class TestRegistry:
    def test_four_backends_registered(self):
        assert set(available_backends()) == {
            "twod_exact",
            "twod_topk",
            "md_arrangement",
            "randomized",
        }

    def test_create_unknown_raises(self, ds2):
        with pytest.raises(ValueError):
            create_backend("quantum", ds2)

    def test_raw_engines_exposed(self, ds2, ds3, rng):
        assert isinstance(create_backend("twod_exact", ds2).raw, GetNext2D)
        assert isinstance(
            create_backend("md_arrangement", ds3, rng=rng, n_samples=500).raw,
            GetNextMD,
        )
        assert isinstance(
            create_backend("randomized", ds3, rng=rng).raw, GetNextRandomized
        )


class TestDispatch:
    def test_2d_goes_exact(self, ds2):
        assert resolve_backend(ds2) == "twod_exact"
        assert StabilityEngine(ds2).backend_name == "twod_exact"

    def test_small_md_goes_arrangement(self, ds3):
        assert resolve_backend(ds3) == "md_arrangement"

    def test_large_md_goes_randomized(self, rng_factory):
        big = Dataset(rng_factory(3).uniform(size=(1_500, 3)))
        assert resolve_backend(big) == "randomized"

    def test_topk_kind_2d_goes_exact_sweep(self, ds2):
        assert resolve_backend(ds2, kind="topk_set") == "twod_topk"
        engine = StabilityEngine(ds2, kind="topk_set", k=3)
        assert engine.backend_name == "twod_topk"

    def test_topk_kind_md_goes_randomized(self, ds3):
        assert resolve_backend(ds3, kind="topk_ranked") == "randomized"
        engine = StabilityEngine(ds3, kind="topk_ranked", k=3)
        assert engine.backend_name == "randomized"

    def test_budget_hint_goes_randomized(self, ds3):
        assert resolve_backend(ds3, budget=5_000) == "randomized"

    def test_explicit_override(self, ds3, rng):
        engine = StabilityEngine(ds3, backend="randomized", rng=rng)
        assert engine.backend_name == "randomized"

    def test_unknown_backend_raises(self, ds3):
        with pytest.raises(ValueError):
            StabilityEngine(ds3, backend="quantum")

    def test_topk_on_exact_backend_raises(self, ds2):
        with pytest.raises(ValueError):
            StabilityEngine(ds2, kind="topk_set", k=3, backend="twod_exact")


class TestFacade:
    def test_get_next_descending_2d(self, ds2):
        engine = StabilityEngine(ds2)
        results = [engine.get_next() for _ in range(3)]
        assert results[0].stability >= results[1].stability >= results[2].stability

    def test_iteration_exhausts(self, ds2):
        results = list(StabilityEngine(ds2))
        assert len(results) >= 1
        assert abs(sum(r.stability for r in results) - 1.0) < 1e-9

    def test_stability_of_matches_get_next_2d(self, ds2):
        engine = StabilityEngine(ds2)
        best = engine.get_next()
        again = engine.stability_of(best.ranking)
        assert again.stability == pytest.approx(best.stability)

    def test_stability_of_accepts_sequence(self, ds2):
        engine = StabilityEngine(ds2)
        best = engine.get_next()
        assert engine.stability_of(list(best.ranking)).stability == pytest.approx(
            best.stability
        )

    def test_stability_of_md_uses_shared_pool(self, ds3, rng):
        engine = StabilityEngine(ds3, rng=rng, n_samples=2_000)
        best = engine.get_next()
        verified = engine.stability_of(best.ranking)
        assert verified.stability == pytest.approx(best.stability, abs=0.05)

    def test_randomized_get_next_default_budget(self, rng_factory):
        big = Dataset(rng_factory(5).uniform(size=(1_200, 3)))
        engine = StabilityEngine(big, rng=rng_factory(6))
        assert engine.backend_name == "randomized"
        result = engine.get_next(budget=500)
        assert 0.0 < result.stability <= 1.0
        assert result.confidence_error > 0.0

    def test_top_stable_2d(self, ds2):
        results = StabilityEngine(ds2).top_stable(4)
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_top_stable_respects_min_stability(self, ds2):
        results = StabilityEngine(ds2).top_stable(100, min_stability=0.05)
        assert all(r.stability >= 0.05 for r in results)

    def test_top_stable_rejects_bad_m(self, ds2):
        with pytest.raises(ValueError):
            StabilityEngine(ds2).top_stable(0)

    def test_topk_set_workflow(self, ds3, rng_factory):
        engine = StabilityEngine(ds3, kind="topk_set", k=3, rng=rng_factory(7))
        result = engine.get_next(budget=2_000)
        assert result.top_k_set is not None and len(result.top_k_set) == 3
        again = engine.stability_of(result.top_k_set)
        assert again.stability == pytest.approx(result.stability, abs=0.05)

    def test_error_mode_passthrough(self, ds3, rng_factory):
        engine = StabilityEngine(ds3, backend="randomized", rng=rng_factory(8))
        result = engine.get_next(error=0.05)
        assert result.confidence_error <= 0.05

    def test_exhaustion_raises(self, rng_factory):
        tiny = Dataset(np.array([[0.9, 0.9], [0.1, 0.1]]))
        engine = StabilityEngine(tiny)
        engine.get_next()
        with pytest.raises(ExhaustedError):
            engine.get_next()

    def test_region_forwarded(self, ds2):
        cone = Cone(np.array([1.0, 1.0]), 0.1)
        engine = StabilityEngine(ds2, region=cone)
        results = list(engine)
        assert abs(sum(r.stability for r in results) - 1.0) < 1e-9

    def test_repr_mentions_backend(self, ds2):
        assert "twod_exact" in repr(StabilityEngine(ds2))

    def test_engine_subpackage_importable(self):
        import importlib

        module = importlib.import_module("repro.engine")
        for name in module.__all__:
            assert hasattr(module, name), name


class TestTwoDTopkBackend:
    def test_exact_enumeration_sums_to_one(self, ds2):
        engine = StabilityEngine(ds2, kind="topk_set", k=3)
        results = list(engine)
        assert abs(sum(r.stability for r in results) - 1.0) < 1e-9
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)
        assert all(r.confidence_error == 0.0 for r in results)
        assert all(len(r.top_k_set) == 3 for r in results)

    def test_matches_enumerate_topk_2d(self, ds2):
        from repro import enumerate_topk_2d

        engine = StabilityEngine(ds2, kind="topk_ranked", k=2)
        via_engine = [r.ranking.order for r in engine]
        direct = [r.ranking.order for r in enumerate_topk_2d(ds2, 2, kind="ranked")]
        assert via_engine == direct

    def test_stability_of_agrees_with_get_next(self, ds2):
        engine = StabilityEngine(ds2, kind="topk_set", k=3)
        best = engine.get_next()
        verified = engine.stability_of(best.top_k_set)
        assert verified.stability == pytest.approx(best.stability)

    def test_randomized_override_still_available(self, ds2, rng_factory):
        engine = StabilityEngine(
            ds2, kind="topk_set", k=3, backend="randomized", rng=rng_factory(4)
        )
        exact = StabilityEngine(ds2, kind="topk_set", k=3)
        mc = engine.get_next(budget=4_000)
        assert exact.stability_of(mc.top_k_set).stability == pytest.approx(
            mc.stability, abs=0.05
        )

    def test_requires_two_attributes(self, ds3):
        with pytest.raises(ValueError):
            StabilityEngine(ds3, kind="topk_set", k=3, backend="twod_topk")

    def test_requires_valid_k(self, ds2):
        with pytest.raises(ValueError):
            StabilityEngine(ds2, kind="topk_set", k=0)

    def test_exhausts_after_all_outcomes(self, ds2):
        engine = StabilityEngine(ds2, kind="topk_set", k=3)
        list(engine)
        with pytest.raises(ExhaustedError):
            engine.get_next()

    def test_full_kind_rejected(self, ds2):
        with pytest.raises(ValueError):
            StabilityEngine(ds2, kind="full", backend="twod_topk")


class TestPrunedTopkParity:
    def test_pruning_does_not_change_distribution(self, rng_factory):
        # Forced pruning and disabled pruning must agree statistically
        # (same region, independent streams) and exactly in key space.
        ds = Dataset(rng_factory(9).uniform(size=(400, 3)))
        on = GetNextRandomized(
            ds, kind="topk_set", k=5, rng=rng_factory(10), prune_topk=True
        )
        off = GetNextRandomized(
            ds, kind="topk_set", k=5, rng=rng_factory(10), prune_topk=False
        )
        a = on.get_next(budget=3_000)
        b = off.get_next(budget=3_000)
        # Same rng stream and same semantics: identical results.
        assert a.top_k_set == b.top_k_set
        assert a.stability == b.stability
