"""Property test: backends agree through the StabilityEngine facade.

For small 2D instances the exact sweep is ground truth; the randomized
backend must agree with it — on every ranking's stability (within the
reported confidence half-width, scaled for multiplicity) and on the
GET-NEXT emission order wherever consecutive exact stabilities are
separated by more than the Monte-Carlo noise.
"""

import numpy as np
import pytest

from repro import Dataset, StabilityEngine
from repro.errors import ExhaustedError

BUDGET = 12_000
SEEDS = [11, 23, 37, 59]


def _exact_table(dataset):
    """ranking -> exact stability via the twod_exact backend."""
    return {r.ranking: r.stability for r in StabilityEngine(dataset)}


@pytest.mark.parametrize("seed", SEEDS)
class TestStabilityAgreement:
    def test_randomized_estimates_within_confidence(self, seed, rng_factory):
        dataset = Dataset(rng_factory(seed).uniform(size=(7, 2)))
        exact = _exact_table(dataset)
        engine = StabilityEngine(
            dataset, backend="randomized", rng=rng_factory(seed + 1000)
        )
        for _ in range(3):
            try:
                estimate = engine.get_next(budget=BUDGET // 3)
            except ExhaustedError:
                break
            assert estimate.ranking in exact, "randomized produced an infeasible ranking"
            # 4 half-widths ~ a 1-in-16000 event per comparison.
            tolerance = max(4 * estimate.confidence_error, 1e-6)
            assert estimate.stability == pytest.approx(
                exact[estimate.ranking], abs=tolerance
            )

    def test_top_ranking_agrees(self, seed, rng_factory):
        dataset = Dataset(rng_factory(seed).uniform(size=(7, 2)))
        exact_results = StabilityEngine(dataset).top_stable(2)
        engine = StabilityEngine(
            dataset, backend="randomized", rng=rng_factory(seed + 2000)
        )
        estimate = engine.get_next(budget=BUDGET)
        gap = exact_results[0].stability - (
            exact_results[1].stability if len(exact_results) > 1 else 0.0
        )
        if gap > 2 * estimate.confidence_error:
            # The leader is separated beyond noise: order must agree.
            assert estimate.ranking == exact_results[0].ranking
        else:
            # Near-tie: the randomized winner must still be one of the
            # statistically indistinguishable leaders.
            contenders = {
                r.ranking
                for r in exact_results
                if exact_results[0].stability - r.stability
                <= 2 * estimate.confidence_error
            }
            assert estimate.ranking in contenders

    def test_stability_of_agrees_across_backends(self, seed, rng_factory):
        dataset = Dataset(rng_factory(seed).uniform(size=(7, 2)))
        exact_engine = StabilityEngine(dataset)
        best = exact_engine.get_next()
        randomized = StabilityEngine(
            dataset, backend="randomized", rng=rng_factory(seed + 3000)
        )
        estimate = randomized.stability_of(best.ranking, min_samples=BUDGET)
        tolerance = max(4 * estimate.confidence_error, 1e-6)
        assert estimate.stability == pytest.approx(best.stability, abs=tolerance)


def test_discovered_mass_sums_below_one(rng_factory):
    dataset = Dataset(rng_factory(101).uniform(size=(8, 2)))
    engine = StabilityEngine(dataset, backend="randomized", rng=rng_factory(102))
    total = 0.0
    try:
        for _ in range(10):
            total += engine.get_next(budget=1_000).stability
    except ExhaustedError:
        pass
    assert total <= 1.0 + 1e-9
