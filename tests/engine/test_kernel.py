"""Unit tests for the vectorized ranking kernel."""

import numpy as np
import pytest

from repro.core.ranking import _top_k_order
from repro.engine import kernel


class TestAutoChunkSize:
    def test_bounds(self):
        assert kernel.auto_chunk_size(1) == 8192
        assert kernel.auto_chunk_size(10_000_000) == 16

    def test_scales_inversely_with_n(self):
        assert kernel.auto_chunk_size(100) >= kernel.auto_chunk_size(100_000)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            kernel.auto_chunk_size(0)


class TestScoreBlock:
    def test_matches_matmul(self, rng):
        values = rng.uniform(size=(50, 3))
        weights = rng.uniform(size=(7, 3))
        assert np.allclose(kernel.score_block(values, weights), weights @ values.T)

    def test_single_weight_row(self, rng):
        values = rng.uniform(size=(10, 2))
        w = rng.uniform(size=2)
        out = kernel.score_block(values, w)
        assert out.shape == (1, 10)


class TestFullRankingRows:
    def test_matches_stable_argsort(self, rng):
        scores = rng.uniform(-1, 1, size=(20, 37))
        expected = np.argsort(-scores, axis=1, kind="stable")
        assert np.array_equal(kernel.full_ranking_rows(scores), expected)

    def test_exact_ties_break_by_id(self):
        scores = np.array([[0.5, 0.7, 0.5, 0.7, 0.1]])
        assert kernel.full_ranking_rows(scores).tolist() == [[1, 3, 0, 2, 4]]

    def test_all_equal_scores(self):
        scores = np.zeros((3, 6))
        expected = np.tile(np.arange(6), (3, 1))
        assert np.array_equal(kernel.full_ranking_rows(scores), expected)

    def test_signed_zero(self):
        scores = np.array([[-0.0, 0.0, 1.0]])
        assert kernel.full_ranking_rows(scores).tolist() == [[2, 0, 1]]

    def test_truncation_collision_repaired(self, rng):
        # Scores that differ far below the stolen id bits must still
        # order by the exact float64 comparison.
        base = rng.uniform(0.5, 1.0, size=12)
        scores = np.tile(base, (4, 1))
        # Higher id gets the infinitesimally larger score: the truncated
        # keys collide and would order by id, so the repair must kick in.
        scores[:, 7] = scores[:, 3] + 1e-15
        expected = np.argsort(-scores, axis=1, kind="stable")
        assert np.array_equal(kernel.full_ranking_rows(scores), expected)
        ranked = kernel.topk_rows(scores, 12, ranked=True)
        assert np.array_equal(ranked, expected)

    def test_negative_scores(self, rng):
        scores = -rng.uniform(1, 2, size=(5, 9))
        expected = np.argsort(-scores, axis=1, kind="stable")
        assert np.array_equal(kernel.full_ranking_rows(scores), expected)


class TestTopkRows:
    @pytest.mark.parametrize("k", [1, 3, 8, 11, 12])
    def test_ranked_matches_scalar(self, rng, k):
        scores = rng.uniform(size=(15, 12))
        rows = kernel.topk_rows(scores, k, ranked=True)
        for i in range(15):
            assert list(rows[i]) == _top_k_order(scores[i], k)

    def test_set_is_sorted_ids(self, rng):
        scores = rng.uniform(size=(8, 20))
        rows = kernel.topk_rows(scores, 5, ranked=False)
        for i in range(8):
            assert list(rows[i]) == sorted(_top_k_order(scores[i], 5))

    def test_boundary_ties_take_lowest_ids(self):
        scores = np.array([[1.0, 0.5, 0.5, 0.5, 0.2]])
        assert kernel.topk_rows(scores, 2, ranked=True).tolist() == [[0, 1]]
        assert kernel.topk_rows(scores, 3, ranked=True).tolist() == [[0, 1, 2]]

    def test_heavy_ties_match_scalar(self, rng):
        scores = np.round(rng.uniform(size=(10, 30)), 1)
        rows = kernel.topk_rows(scores, 7, ranked=True)
        for i in range(10):
            assert list(rows[i]) == _top_k_order(scores[i], 7)

    def test_k_bounds(self, rng):
        scores = rng.uniform(size=(2, 5))
        with pytest.raises(ValueError):
            kernel.topk_rows(scores, 0, ranked=True)
        with pytest.raises(ValueError):
            kernel.topk_rows(scores, 6, ranked=True)

    def test_batch_topk_single_row(self, rng):
        scores = rng.uniform(size=40)
        assert list(kernel.batch_topk_indices(scores, 4)) == _top_k_order(scores, 4)


class TestPackedKeys:
    def test_dtype_selection(self):
        assert kernel.key_dtype_for(200) == np.uint8
        assert kernel.key_dtype_for(60_000) == np.uint16
        assert kernel.key_dtype_for(1_000_000) == np.uint32

    def test_pack_unpack_roundtrip(self, rng):
        rows = rng.integers(0, 500, size=(6, 9))
        dtype = kernel.key_dtype_for(500)
        packed = kernel.pack_rows(rows, dtype)
        for i in range(6):
            assert kernel.unpack_key(packed[i].tobytes(), dtype) == tuple(
                int(x) for x in rows[i]
            )


class TestRankingTally:
    def test_counts_and_total(self):
        tally = kernel.RankingTally(10, 3)
        rows = np.array([[0, 1, 2], [0, 1, 2], [3, 4, 5]])
        tally.observe_rows(rows)
        assert tally.total == 3
        assert len(tally) == 2
        assert tally.count_of(tally.pack([0, 1, 2])) == 2

    def test_best_unreturned_is_most_frequent(self):
        tally = kernel.RankingTally(10, 2)
        tally.observe_rows(np.array([[0, 1]] * 3 + [[2, 3]] * 5 + [[4, 5]]))
        best = tally.best_unreturned()
        assert tally.unpack(best) == (2, 3)
        tally.mark_returned(best)
        assert tally.unpack(tally.best_unreturned()) == (0, 1)

    def test_tie_breaks_by_first_seen(self):
        tally = kernel.RankingTally(10, 2)
        tally.observe_rows(np.array([[7, 8]]))
        tally.observe_rows(np.array([[1, 2]]))
        # Both counts are 1; the first-observed key wins.
        assert tally.unpack(tally.best_unreturned()) == (7, 8)

    def test_counts_grow_across_batches(self):
        tally = kernel.RankingTally(10, 2)
        tally.observe_rows(np.array([[0, 1], [2, 3]]))
        tally.observe_rows(np.array([[2, 3], [2, 3]]))
        assert tally.count_of(tally.pack([2, 3])) == 3
        assert tally.unpack(tally.best_unreturned()) == (2, 3)

    def test_exhaustion_returns_none(self):
        tally = kernel.RankingTally(4, 2)
        tally.observe_rows(np.array([[0, 1]]))
        tally.mark_returned(tally.best_unreturned())
        assert tally.best_unreturned() is None
