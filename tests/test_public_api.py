"""Surface tests: the public API advertised in README and __init__."""

import importlib

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.engine",
            "repro.engine.kernel",
            "repro.engine.backends",
            "repro.engine.engine",
            "repro.geometry",
            "repro.sampling",
            "repro.operators",
            "repro.datasets",
            "repro.errors",
        ):
            importlib.import_module(module)

    def test_geometry_all_exports(self):
        geometry = importlib.import_module("repro.geometry")
        for name in geometry.__all__:
            assert hasattr(geometry, name), name

    def test_sampling_all_exports(self):
        sampling = importlib.import_module("repro.sampling")
        for name in sampling.__all__:
            assert hasattr(sampling, name), name

    def test_error_hierarchy(self):
        from repro import errors

        for name in (
            "InvalidDatasetError",
            "InvalidWeightsError",
            "InvalidRankingError",
            "InfeasibleRankingError",
            "InfeasibleRegionError",
            "ExhaustedError",
            "BudgetExceededError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.StableRankingsError)
            assert issubclass(cls, Exception)

    def test_readme_quickstart_snippet_runs(self):
        # The exact code from README's Quickstart section.
        from repro import Dataset, GetNext2D, ScoringFunction, verify_stability_2d

        candidates = Dataset(
            np.array(
                [
                    [0.63, 0.71],
                    [0.83, 0.65],
                    [0.58, 0.78],
                    [0.70, 0.68],
                    [0.53, 0.82],
                ]
            )
        )
        f = ScoringFunction.equal_weights(2)
        ranking = f.rank(candidates)
        verdict = verify_stability_2d(candidates, ranking)
        assert 0.0 < verdict.stability < 1.0
        results = list(GetNext2D(candidates))
        assert len(results) == 11

    def test_module_docstring_doctest(self):
        import doctest

        failures, _ = doctest.testmod(repro, verbose=False)
        assert failures == 0
