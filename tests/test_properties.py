"""Hypothesis property-based tests on the core invariants.

The invariants exercised here are the paper's load-bearing facts:

1. Ranking regions tile the function space (stabilities sum to 1).
2. SV2D's region is exactly the set of angles inducing the ranking.
3. Exchange-hyperplane halfspaces predict pairwise order everywhere.
4. The MD ranking-region cone contains precisely the functions that
   induce the ranking (Theorem 1's one-to-one mapping).
5. Rotations used by the cap sampler are isometries.
6. Dominance implies order under every weight vector.
"""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import Dataset, rank_items, ranking_region_md, ray_sweep, verify_stability_2d
from repro.errors import InfeasibleRankingError
from repro.geometry.angles import angles_to_weights, weights_to_angles
from repro.geometry.dual import dominates, exchange_hyperplane
from repro.geometry.rotation import rotation_matrix_to_ray
from repro.geometry.spherical import cap_cdf, inverse_cap_cdf

VALUE = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)


def _values(n_min=2, n_max=10, d_min=2, d_max=2):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(n_min, n_max), st.integers(d_min, d_max)
        ),
        elements=VALUE,
    )


@st.composite
def _weights(draw, d_min=2, d_max=6):
    dim = draw(st.integers(d_min, d_max))
    w = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=dim,
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        )
    )
    assume(float(np.sum(w)) > 1e-6)
    return w


class TestSweepTiling:
    @given(values=_values())
    @settings(max_examples=60, deadline=None)
    def test_stabilities_sum_to_one(self, values):
        ds = Dataset(values)
        regions = ray_sweep(ds)
        assert math.isclose(sum(s for s, _ in regions), 1.0, rel_tol=1e-9)

    @given(values=_values())
    @settings(max_examples=40, deadline=None)
    def test_regions_are_contiguous(self, values):
        ds = Dataset(values)
        spans = sorted((r.lo, r.hi) for _, r in ray_sweep(ds))
        for (_, prev_hi), (next_lo, _) in zip(spans, spans[1:]):
            assert math.isclose(prev_hi, next_lo, rel_tol=1e-9)

    @given(values=_values(), angle=st.floats(0.01, math.pi / 2 - 0.01))
    @settings(max_examples=60, deadline=None)
    def test_every_function_lands_in_its_verified_region(self, values, angle):
        # SV2D on the ranking induced at `angle` must return a region
        # containing `angle`.
        ds = Dataset(values)
        w = np.array([math.cos(angle), math.sin(angle)])
        ranking = rank_items(values, w)
        try:
            result = verify_stability_2d(ds, ranking)
        except InfeasibleRankingError:
            # Possible only when `angle` sits exactly on an exchange and
            # float tie-breaking produced a boundary ranking.
            return
        assert result.region.lo - 1e-9 <= angle <= result.region.hi + 1e-9


@st.composite
def _pair_and_weights(draw):
    """Two items and a weight vector sharing one dimension."""
    dim = draw(st.integers(2, 5))
    elem = st.floats(0.0, 1.0, allow_nan=False, width=64)
    t_i = np.array(draw(st.lists(elem, min_size=dim, max_size=dim)))
    t_j = np.array(draw(st.lists(elem, min_size=dim, max_size=dim)))
    w = np.array(draw(st.lists(st.floats(0.001, 1.0, width=64), min_size=dim, max_size=dim)))
    return t_i, t_j, w


class TestExchangeHalfspaces:
    @given(data=_pair_and_weights())
    @settings(max_examples=150, deadline=None)
    def test_halfspace_sign_predicts_order(self, data):
        t_i, t_j, weights = data
        h = exchange_hyperplane(t_i, t_j)
        margin = float(h @ weights)
        assume(abs(margin) > 1e-12)
        si, sj = float(t_i @ weights), float(t_j @ weights)
        assert (margin > 0) == (si > sj)

    @given(data=_pair_and_weights(), shrink=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_dominance_fixes_order_everywhere(self, data, shrink):
        # Construct a dominated copy rather than filtering for one.
        t_i, _, _ = data
        assume(float(t_i.sum()) > 1e-9)
        t_j = t_i * shrink
        assume(dominates(t_i, t_j))
        rng = np.random.default_rng(0)
        for _ in range(20):
            w = rng.uniform(0.001, 1.0, size=t_i.shape[0])
            assert float(t_i @ w) >= float(t_j @ w)


class TestMDRegionCharacterisation:
    @given(
        values=_values(n_min=3, n_max=8, d_min=3, d_max=4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_cone_membership_equals_ranking_equality(self, values, seed):
        ds = Dataset(values)
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.01, 1.0, size=values.shape[1])
        ranking = rank_items(values, w)
        try:
            cone = ranking_region_md(ds, ranking)
        except InfeasibleRankingError:
            return
        for _ in range(15):
            probe = rng.uniform(0.001, 1.0, size=values.shape[1])
            same = rank_items(values, probe) == ranking
            inside = cone.contains(probe)
            if inside != same:
                # Boundary flukes: the probe scores two items equally.
                scores = values @ probe
                diffs = np.abs(np.subtract.outer(scores, scores))
                np.fill_diagonal(diffs, 1.0)
                assume(diffs.min() > 1e-12)
            assert inside == same


class TestAngleRoundTrip:
    @given(weights=_weights())
    @settings(max_examples=150, deadline=None)
    def test_round_trip_is_unit_ray(self, weights):
        u = angles_to_weights(weights_to_angles(weights))
        expected = weights / np.linalg.norm(weights)
        assert np.allclose(u, expected, atol=1e-8)

    @given(weights=_weights())
    @settings(max_examples=100, deadline=None)
    def test_angles_within_quadrant(self, weights):
        angles = weights_to_angles(weights)
        assert np.all(angles >= -1e-12)
        assert np.all(angles <= math.pi / 2 + 1e-12)


class TestRotationIsometry:
    @given(weights=_weights(d_min=2, d_max=6), seed=st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_rotation_preserves_norms(self, weights, seed):
        m = rotation_matrix_to_ray(weights)
        v = np.random.default_rng(seed).normal(size=weights.shape[0])
        assert math.isclose(
            float(np.linalg.norm(m @ v)), float(np.linalg.norm(v)), rel_tol=1e-9
        )

    @given(weights=_weights(d_min=2, d_max=6))
    @settings(max_examples=100, deadline=None)
    def test_rotation_maps_pole_to_ray(self, weights):
        m = rotation_matrix_to_ray(weights)
        e_d = np.zeros(weights.shape[0])
        e_d[-1] = 1.0
        assert np.allclose(m @ e_d, weights / np.linalg.norm(weights), atol=1e-9)


class TestCapCdfProperties:
    @given(
        dim=st.integers(2, 8),
        theta=st.floats(0.01, math.pi / 2),
        y=st.floats(0.0, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_inverse_round_trip(self, dim, theta, y):
        x = inverse_cap_cdf(y, theta, dim)
        assert -1e-12 <= x <= theta + 1e-9
        assert math.isclose(cap_cdf(x, theta, dim), y, abs_tol=1e-7)

    @given(
        dim=st.integers(2, 8),
        theta=st.floats(0.01, math.pi / 2),
        xs=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)),
    )
    @settings(max_examples=150, deadline=None)
    def test_cdf_monotone(self, dim, theta, xs):
        a, b = sorted(x * theta for x in xs)
        assert cap_cdf(a, theta, dim) <= cap_cdf(b, theta, dim) + 1e-12


class TestRankingDeterminism:
    @given(values=_values(n_min=2, n_max=12, d_min=2, d_max=4), seed=st.integers(0, 999))
    @settings(max_examples=80, deadline=None)
    def test_rank_items_total_and_deterministic(self, values, seed):
        w = np.random.default_rng(seed).uniform(0.01, 1.0, size=values.shape[1])
        a = rank_items(values, w)
        b = rank_items(values, w)
        assert a == b
        assert sorted(a.order) == list(range(values.shape[0]))

    @given(values=_values(n_min=2, n_max=10, d_min=2, d_max=3), seed=st.integers(0, 999))
    @settings(max_examples=60, deadline=None)
    def test_top_k_prefix_consistency(self, values, seed):
        w = np.random.default_rng(seed).uniform(0.01, 1.0, size=values.shape[1])
        full = rank_items(values, w)
        for k in range(1, values.shape[0] + 1):
            assert rank_items(values, w, k=k).order == full.order[:k]
