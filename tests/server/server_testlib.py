"""Helpers for the network front-end suite (importable by its tests).

Servers run on a background thread with a real TCP socket (port 0 —
the OS picks), so these tests exercise the exact production stack:
asyncio framing, executor dispatch, session locks, drain.  Budgets are
kept small; the whole directory must stay fast-tier.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro import Dataset
from repro.server import ServerConfig, SessionRegistry, serve_in_thread


def make_dataset(n: int = 120, d: int = 3, seed: int = 20180905) -> Dataset:
    return Dataset(np.random.default_rng(seed).uniform(size=(n, d)))


@contextlib.contextmanager
def running_server(
    dataset: Dataset,
    *,
    state_dir=None,
    seed: int = 7,
    datasets: dict | None = None,
    max_active: int = 8,
    registry_fields: dict | None = None,
    **config_fields,
):
    """A served registry; yields the :class:`~repro.server.ServerHandle`.

    ``datasets`` maps extra names to datasets; ``dataset`` is always
    registered as ``"default"``.  ``registry_fields`` override the
    registry's session parameters (e.g. ``executor="process"``).  The
    server is drained on exit.
    """
    registry = SessionRegistry(
        state_dir=state_dir,
        seed=seed,
        max_active=max_active,
        **{"parallel": False, **(registry_fields or {})},
    )
    registry.add_dataset("default", dataset)
    for name, extra in (datasets or {}).items():
        registry.add_dataset(name, extra)
    handle = serve_in_thread(registry, config=ServerConfig(**config_fields))
    try:
        yield handle
    finally:
        if handle.thread.is_alive():
            handle.stop()
