"""Off-loop observe: reads stay responsive while a cold pool grows.

The server claim behind ``executor="process"`` (and the dedicated
write-dispatch thread pool): a long cold observe on one dataset must
not freeze the event loop or starve warm reads on another dataset.
These tests drive a real TCP server with one deliberately slow cold
write in flight and assert that concurrent warm reads (a different
dataset) and control ops keep completing *during* the write — plus
that the drain path tears the worker processes down and unlinks every
shared-memory segment.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server import ServeClient
from repro.service.procpool import live_segments
from server_testlib import make_dataset, running_server

#: Big enough that the cold observe takes a macroscopic slice of time
#: even on one core, small enough for the fast tier.
COLD_BUDGET = 60_000


def _cold_write(n: int = 2_600) -> dict:
    return {
        "op": "top_stable",
        "m": 2,
        "kind": "topk_set",
        "k": 5,
        "backend": "randomized",
        "budget": COLD_BUDGET,
        "dataset": "cold",
    }


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_reads_interleave_with_cold_observe(executor):
    cold = make_dataset(n=2_600, seed=1)
    warm = make_dataset(n=150, seed=2)
    with running_server(
        warm,
        datasets={"cold": cold},
        registry_fields={"executor": executor, "max_workers": 2},
    ) as handle:
        with ServeClient(host=handle.host, port=handle.port) as reader:
            # Warm the read dataset so its queries classify as reads.
            warmup = {
                "op": "top_stable", "m": 2, "kind": "topk_set", "k": 4,
                "backend": "randomized", "budget": 400,
            }
            assert reader.request(dict(warmup))["ok"] is True

            write_done = threading.Event()
            write_result: dict = {}

            def writer():
                with ServeClient(host=handle.host, port=handle.port) as w:
                    write_result.update(w.request(_cold_write()))
                write_done.set()

            thread = threading.Thread(target=writer)
            thread.start()
            reads_during_write = 0
            latencies = []
            try:
                while not write_done.is_set() and reads_during_write < 200:
                    start = time.perf_counter()
                    response = reader.request(dict(warmup))
                    latencies.append(time.perf_counter() - start)
                    assert response["ok"] is True, response
                    if not write_done.is_set():
                        reads_during_write += 1
            finally:
                thread.join(timeout=120)
            assert write_result.get("ok") is True, write_result
            # The load was real (the write outlived many reads) and the
            # loop kept serving: reads completed while the cold observe
            # was still in flight.
            assert reads_during_write >= 3, (
                f"only {reads_during_write} reads completed during the "
                f"cold observe — the loop blocked on the write"
            )
    assert live_segments() == ()


def test_drain_shuts_worker_pools_down(tmp_path):
    dataset = make_dataset(n=2_600, seed=3)
    with running_server(
        dataset,
        state_dir=tmp_path,
        registry_fields={"executor": "process", "max_workers": 2},
    ) as handle:
        with ServeClient(host=handle.host, port=handle.port) as client:
            response = client.request(
                {
                    "op": "top_stable", "m": 2, "kind": "topk_set", "k": 4,
                    "backend": "randomized", "budget": 4_096,
                }
            )
            assert response["ok"] is True
        # The session grew its pool out-of-process: segments are live.
        assert len(live_segments()) >= 1
        report = handle.stop()
    # Graceful drain checkpointed the dirty session AND released the
    # process pool + shared memory (the acceptance-criteria invariant).
    assert [entry["dataset"] for entry in report] == ["default"]
    assert live_segments() == ()
