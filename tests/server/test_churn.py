"""Connection-churn edge cases: rude disconnects, drain races, bursts.

The loadgen harness (``repro.loadgen``) drives these paths statistically;
this file pins each one deterministically:

- a client that pipelines a batch and vanishes without reading must not
  corrupt server state — and the work it queued still grows each pool
  exactly once;
- a connection racing a drain gets a prompt structured refusal
  (``shutting_down``) or a clean close, never a hang;
- a burst of one-shot connections against a full admission window is
  shed with ``busy`` errors, promptly, and capacity comes back.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.server import ServeClient, ServerClosedError
from server_testlib import make_dataset, running_server


@pytest.fixture(scope="module")
def dataset():
    return make_dataset()


QUERY = {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
         "backend": "randomized", "budget": 300}


class TestRudeDisconnect:
    def test_disconnect_mid_pipelined_batch_leaves_server_consistent(
        self, dataset
    ):
        with running_server(dataset) as handle:
            frame = json.dumps(QUERY).encode() + b"\n"
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=10
            )
            # Pipeline a batch, then vanish without reading a byte.
            sock.sendall(frame * 4)
            sock.close()

            with ServeClient(host=handle.host, port=handle.port) as client:
                # The server survived the rude close...
                assert client.ping()["pong"] is True
                # ...and the abandoned batch's work still lands: the
                # pool reaches its budget, exactly once, even though
                # four identical queries raced on a dead connection.
                deadline = time.monotonic() + 30
                label = "topk_set:k=3@randomized"
                while time.monotonic() < deadline:
                    configs = client.stats()["stats"]["configs"]
                    if label in configs:
                        break
                    time.sleep(0.01)
                assert configs[label]["total_samples"] == QUERY["budget"]
                # The answer a well-behaved client gets now matches a
                # fresh request — no torn pool state.
                answer = client.request(dict(QUERY))
                assert answer["ok"] is True

    def test_disconnect_between_batches_then_reconnect(self, dataset):
        """Loadgen's churn knob in miniature: close, reconnect, resume."""
        with running_server(dataset) as handle:
            for _ in range(3):
                with ServeClient(
                    host=handle.host, port=handle.port
                ) as client:
                    first = client.request(dict(QUERY))
                    assert first["ok"] is True
            with ServeClient(host=handle.host, port=handle.port) as client:
                configs = client.stats()["stats"]["configs"]
            # Three sessions of the same query: the pool still grew once.
            assert (
                configs["topk_set:k=3@randomized"]["total_samples"]
                == QUERY["budget"]
            )


class TestDrainRace:
    def test_request_during_drain_is_refused_promptly(self, dataset):
        with running_server(dataset, drain_grace=5.0) as handle:
            survivor = ServeClient(host=handle.host, port=handle.port)
            try:
                assert survivor.ping()["pong"] is True
                with ServeClient(
                    host=handle.host, port=handle.port
                ) as trigger:
                    assert trigger.request({"op": "shutdown"})["ok"] is True
                deadline = time.monotonic() + 10
                while (
                    not handle.server._draining
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.002)
                assert handle.server._draining
                # The pre-existing connection now races the drain: it
                # must resolve fast — a structured shutting_down error
                # or a clean close — never a hang.
                start = time.monotonic()
                try:
                    response = survivor.request(dict(QUERY))
                    assert response["ok"] is False
                    assert response["error"]["code"] == "shutting_down"
                except (ServerClosedError, ConnectionError, OSError):
                    pass  # the drain cancelled the idle reader first
                assert time.monotonic() - start < 10
            finally:
                survivor.close()
            handle.thread.join(timeout=30)
            assert not handle.thread.is_alive()
            # Reconnecting after the drain fails fast: the listening
            # socket is gone, not black-holed.
            with pytest.raises(OSError):
                socket.create_connection(
                    (handle.host, handle.port), timeout=5
                )


class TestBurstShedding:
    def test_burst_of_one_shot_connections_is_shed_with_busy(self):
        slow = make_dataset(4000, 3, seed=3)
        with running_server(slow, max_inflight=1) as handle:
            done: list = []

            def hold_the_slot():
                with ServeClient(host=handle.host, port=handle.port) as c:
                    done.append(
                        c.top_stable(1, kind="topk_set", k=8,
                                     backend="randomized", budget=60_000)
                    )

            holder = threading.Thread(target=hold_the_slot)
            holder.start()
            try:
                deadline = time.monotonic() + 30
                while (
                    handle.server._inflight < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                assert handle.server._inflight >= 1

                # An open-loop burst: 8 one-shot connections arriving
                # together, none willing to queue.
                codes: list = []
                lock = threading.Lock()

                def one_shot():
                    with ServeClient(
                        host=handle.host, port=handle.port
                    ) as c:
                        response = c.ping()
                        with lock:
                            codes.append(
                                response.get("error", {}).get("code")
                                if response["ok"] is False
                                else "ok"
                            )

                burst = [
                    threading.Thread(target=one_shot) for _ in range(8)
                ]
                start = time.monotonic()
                for thread in burst:
                    thread.start()
                for thread in burst:
                    thread.join(timeout=30)
                # Every arrival was answered promptly with a structured
                # busy error — shed, not queued behind the slow query.
                assert time.monotonic() - start < 15
                assert codes.count("busy") == 8, codes
            finally:
                holder.join(timeout=120)
            assert done and done[0]["ok"] is True
            with ServeClient(host=handle.host, port=handle.port) as c:
                assert c.ping()["pong"] is True
                metrics = c.stats()["server"]["metrics"]
                assert metrics["busy_shed_total"] >= 8
