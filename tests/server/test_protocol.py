"""Protocol-layer unit tests: framing, structured errors, dispatch."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Dataset, StabilitySession
from repro.errors import ExhaustedError
from repro.server import protocol
from repro.server.metrics import LatencyHistogram, ServerMetrics

from server_testlib import make_dataset


class TestParseRequest:
    def test_valid_request_round_trips(self):
        payload = protocol.parse_request(b'{"op": "ping", "id": 3}\n')
        assert payload == {"op": "ping", "id": 3}

    def test_accepts_str_lines(self):
        assert protocol.parse_request('{"op": "hello"}')["op"] == "hello"

    def test_bad_json_is_structured(self):
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(b"not json\n")
        assert err.value.code == "bad_json"

    def test_non_object_is_bad_request(self):
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(b"[1, 2]\n")
        assert err.value.code == "bad_request"

    def test_missing_op_is_bad_request(self):
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(b'{"m": 3}\n')
        assert err.value.code == "bad_request"

    def test_unknown_op_has_its_own_code(self):
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(b'{"op": "teleport"}\n')
        assert err.value.code == "unknown_op"
        assert "teleport" in err.value.message

    def test_oversized_line_reports_limit(self):
        line = b'{"op": "ping", "pad": "' + b"x" * 128 + b'"}'
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(line, max_bytes=64)
        assert err.value.code == "line_too_long"

    def test_newline_does_not_count_toward_limit(self):
        line = b'{"op": "ping"}'
        protocol.parse_request(line + b"\n", max_bytes=len(line))

    def test_error_codes_are_closed_vocabulary(self):
        with pytest.raises(ValueError):
            protocol.RequestError("made_up_code", "nope")

    # --- fuzzer findings (regressions) --------------------------------
    # json.loads accepts the NaN/Infinity extensions by default; a
    # request like {"op": "ping", "id": NaN} would then echo NaN into
    # the response, which json.dumps emits verbatim — an invalid JSON
    # frame on the wire.  Found by the loadgen protocol fuzzer.
    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_nonfinite_literals_are_bad_json(self, literal):
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(f'{{"op": "ping", "id": {literal}}}')
        assert err.value.code == "bad_json"
        # The broken id must never be echoed into the error either.
        assert err.value.request_id is None

    def test_overflowing_number_id_is_rejected(self):
        # 1e999 parses to float inf without hitting the constant hook,
        # so it needs the id-validation path, not parse_constant.
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(b'{"op": "ping", "id": 1e999}')
        assert err.value.code == "bad_request"
        assert err.value.request_id is None

    @pytest.mark.parametrize(
        "bad_id", ['[1, 2]', '{"a": 1}'], ids=["array", "object"]
    )
    def test_composite_ids_are_bad_request(self, bad_id):
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(
                ('{"op": "ping", "id": %s}' % bad_id).encode()
            )
        assert err.value.code == "bad_request"
        assert err.value.request_id is None

    @pytest.mark.parametrize(
        "good_id", ["x", 0, 17, True, 2.5], ids=type
    )
    def test_scalar_ids_still_echo(self, good_id):
        line = json.dumps({"op": "ping", "id": good_id})
        assert protocol.parse_request(line)["id"] == good_id

    def test_deeply_nested_json_is_bad_json(self):
        # 60k brackets fit well inside one MAX_LINE_BYTES frame but
        # blow the recursion limit inside json.loads; the fuzzer found
        # this escaping as a RecursionError that killed the connection
        # task instead of answering a structured error.
        depth = 60_000
        line = ("[" * depth + "]" * depth).encode()
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(line)
        assert err.value.code == "bad_json"
        # The wrapped-in-an-object variant too.
        line = b'{"op": "ping", "x": ' + b"[" * depth + b"]" * depth + b"}"
        with pytest.raises(protocol.RequestError) as err:
            protocol.parse_request(line)
        assert err.value.code == "bad_json"


class TestClassifyException:
    def test_known_exceptions_map_to_codes(self):
        cases = [
            (ExhaustedError("done"), "exhausted"),
            (ValueError("bad"), "bad_request"),
            (RuntimeError("boom"), "internal"),
        ]
        for exc, expected in cases:
            code, message = protocol.classify_exception(exc)
            assert code == expected
            assert type(exc).__name__ in message

    def test_request_error_passes_through(self):
        code, message = protocol.classify_exception(
            protocol.RequestError("busy", "later")
        )
        assert (code, message) == ("busy", "later")


class TestEncodeResponse:
    def test_plain_response_round_trips(self):
        response = {"ok": True, "id": 4, "result": {"stability": 0.25}}
        line = protocol.encode_response(response)
        assert json.loads(line) == response

    def test_nonfinite_value_becomes_internal_error(self):
        # The read side rejects NaN/Infinity; the write side must never
        # emit them, however deep in the payload they hide.
        for poison in (float("nan"), float("inf"), float("-inf")):
            response = {"ok": True, "id": 9, "result": {"rate": poison}}
            line = protocol.encode_response(response)
            assert "NaN" not in line and "Infinity" not in line
            replaced = json.loads(line)
            assert replaced["ok"] is False
            assert replaced["error"]["code"] == "internal"
            assert replaced["id"] == 9

    def test_fallback_without_id(self):
        line = protocol.encode_response({"ok": True, "x": float("nan")})
        replaced = json.loads(line)
        assert replaced["ok"] is False and "id" not in replaced


class TestDispatch:
    @pytest.fixture
    def session(self, dataset):
        with StabilitySession(dataset, seed=3, parallel=False) as s:
            yield s

    def test_ping(self, session, dataset):
        handled = protocol.dispatch(session, dataset, {"op": "ping"})
        assert handled.response == {"pong": True, "ok": True}
        assert not handled.advanced and not handled.mutated

    def test_hello_reports_protocol_and_extras(self, session, dataset):
        handled = protocol.dispatch(
            session, dataset, {"op": "hello"}, hello_extra={"transport": "t"}
        )
        assert handled.response["protocol"] == protocol.PROTOCOL_VERSION
        assert handled.response["transport"] == "t"
        assert set(protocol.QUERY_OPS) <= set(handled.response["ops"])

    def test_id_is_echoed(self, session, dataset):
        handled = protocol.dispatch(
            session, dataset, {"op": "ping", "id": "abc"}
        )
        assert handled.response["id"] == "abc"

    def test_query_success_shape(self, session, dataset):
        handled = protocol.dispatch(
            session,
            dataset,
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 300},
        )
        response = handled.response
        assert response["ok"] is True and len(response["result"]) == 2
        assert handled.mutated  # cold pool growth
        # The idempotent repeat answers from cache and is clean.
        again = protocol.dispatch(
            session,
            dataset,
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 300},
        )
        assert again.response["cached"] is True
        assert not again.mutated

    def test_query_failure_is_structured(self, session, dataset):
        handled = protocol.dispatch(
            session, dataset, {"op": "top_stable", "m": 0}
        )
        assert handled.response["ok"] is False
        assert handled.response["error"]["code"] == "bad_request"

    def test_meta_fields_are_stripped_from_queries(self, session, dataset):
        # "id"/"dataset" are protocol fields, not request fields; the
        # service request parser rejects unknown keys, so leaking them
        # through would fail every addressed query.
        handled = protocol.dispatch(
            session,
            dataset,
            {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 200, "id": 9,
             "dataset": "default"},
        )
        assert handled.response["ok"] is True
        assert handled.response["id"] == 9

    def test_checkpoint_without_state_dir(self, session, dataset):
        handled = protocol.dispatch(session, dataset, {"op": "checkpoint"})
        assert handled.response["error"]["code"] == "no_state_dir"

    def test_checkpoint_with_callback(self, session, dataset, tmp_path):
        def checkpoint():
            info = session.save(tmp_path / "s.snap")
            return {"path": info.path, "bytes": info.file_bytes}

        handled = protocol.dispatch(
            session, dataset, {"op": "checkpoint"}, checkpoint=checkpoint
        )
        assert handled.response["ok"] is True
        assert handled.response["checkpoint"]["path"].endswith(".snap")
        assert not handled.advanced  # does not count toward the cadence

    def test_shutdown_sets_stop(self, session, dataset):
        handled = protocol.dispatch(session, dataset, {"op": "shutdown"})
        assert handled.response["shutting_down"] is True
        assert handled.stop

    def test_exhausted_maps_to_exhausted_code(self, dataset):
        small = Dataset(np.array([[0.9, 0.1], [0.1, 0.9]]))
        with StabilitySession(small, seed=1, parallel=False) as session:
            responses = [
                protocol.dispatch(session, small, {"op": "get_next"})
                for _ in range(4)
            ]
        codes = [
            r.response.get("error", {}).get("code") for r in responses
        ]
        assert "exhausted" in codes


class TestNeedsWrite:
    @pytest.fixture
    def session(self, dataset):
        with StabilitySession(dataset, seed=3, parallel=False) as s:
            yield s

    def test_control_reads(self, session):
        assert not protocol.needs_write(session, {"op": "stats"})
        assert not protocol.needs_write(session, {"op": "ping"})
        assert not protocol.needs_write(session, {"op": "hello"})

    def test_mutators_are_writes(self, session):
        assert protocol.needs_write(session, {"op": "get_next"})
        assert protocol.needs_write(session, {"op": "invalidate"})
        assert protocol.needs_write(session, {"op": "checkpoint"})

    def test_cold_config_is_a_write(self, session):
        assert protocol.needs_write(
            session,
            {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 200},
        )

    def test_warm_pool_read_vs_growth_write(self, session):
        request = {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
                   "backend": "randomized", "budget": 200}
        session.top_stable(1, kind="topk_set", k=3, backend="randomized",
                           budget=200)
        assert not protocol.needs_write(session, request)
        assert protocol.needs_write(session, dict(request, budget=500))

    def test_malformed_requests_classify_as_writes(self, session):
        assert protocol.needs_write(session, {"op": "top_stable", "m": "x"})

    def test_full_prefix_stability_classifies_via_randomized(self, session):
        request = {"op": "stability_of", "kind": "full",
                   "ranking": [0, 1, 2], "min_samples": 250}
        assert protocol.needs_write(session, request)  # cold
        session.stability_of([0, 1, 2], kind="full", min_samples=250)
        assert not protocol.needs_write(session, request)  # warm pool


class TestMetrics:
    def test_histogram_buckets_and_quantiles(self):
        hist = LatencyHistogram()
        for value in (0.0002, 0.0002, 0.002, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["p50_seconds"] <= snap["p99_seconds"]

    def test_render_text_is_prometheus_shaped(self):
        metrics = ServerMetrics()
        metrics.observe_request("top_stable", 0.004)
        metrics.observe_request("get_next", 0.2, error_code="exhausted")
        metrics.connection_opened()
        metrics.shed()
        text = metrics.render_text()
        assert 'repro_server_requests_total{op="top_stable"} 1' in text
        assert 'repro_server_errors_total{code="exhausted"} 1' in text
        assert 'le="+Inf"' in text
        assert text.endswith("\n")
        snap = metrics.snapshot()
        assert snap["requests_total"] == {"top_stable": 1, "get_next": 1}
        assert snap["busy_shed_total"] == 1

    def test_value_to_json_lists_and_labels(self):
        dataset = make_dataset(6, 2)
        with StabilitySession(dataset, seed=0, parallel=False) as session:
            results = session.top_stable(2)
        encoded = protocol.value_to_json(dataset, results)
        assert isinstance(encoded, list) and len(encoded) == 2
        assert encoded[0]["labels"][0].startswith("item-")
        json.dumps(encoded)  # JSON-safe end to end
