"""End-to-end TCP server tests: hardening, concurrency, drain, restart.

Every test talks to a real server over a real socket.  The three
acceptance properties of the subsystem live here:

(a) answers under N concurrent clients are byte-identical to a serial
    single-session run;
(b) a pool observed concurrently grows exactly once (the write lock
    serializes growth; late writers find the pool at target);
(c) a graceful drain checkpoints every dirty session, and the
    restarted server answers warm.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import Dataset, StabilitySession
from repro.server import (
    ServeClient,
    ServerClosedError,
    SessionRegistry,
    parse_hostport,
    serve_in_thread,
)
from repro.server import protocol

from server_testlib import make_dataset, running_server

#: The mixed warm/cold workload every concurrency test replays: two
#: randomized configurations, idempotent ops only (so answers are
#: comparable across clients), with warm repeats.
WORKLOAD = [
    {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
     "backend": "randomized", "budget": 300},
    {"op": "top_stable", "m": 2, "kind": "topk_ranked", "k": 3,
     "backend": "randomized", "budget": 300},
    {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
     "backend": "randomized", "budget": 300},
    {"op": "stability_of", "kind": "full", "ranking": [0, 1],
     "min_samples": 300},
]


def serial_answers(dataset: Dataset, seed: int, requests=WORKLOAD) -> list:
    """The single-session ground truth for ``requests`` (result payloads)."""
    answers = []
    with StabilitySession(dataset, seed=seed, parallel=False) as session:
        for request in requests:
            handled = protocol.dispatch(session, dataset, request)
            assert handled.response["ok"] is True, handled.response
            answers.append(json.dumps(handled.response["result"]))
    return answers


class TestHardening:
    def test_bad_input_never_kills_the_connection(self, dataset):
        with running_server(dataset, max_line_bytes=4096) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                bad = client.request_raw(b"}{ not json\n")
                assert bad["error"]["code"] == "bad_json"
                unknown = client.request({"op": "teleport"})
                assert unknown["error"]["code"] == "unknown_op"
                not_object = client.request_raw(b"[1, 2, 3]\n")
                assert not_object["error"]["code"] == "bad_request"
                oversized = client.request_raw(
                    b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n'
                )
                assert oversized["error"]["code"] == "line_too_long"
                # The same connection still serves real work.
                assert client.ping()["pong"] is True
                result = client.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=200
                )
                assert result["ok"] is True

    def test_oversized_line_does_not_corrupt_next_frame(self, dataset):
        with running_server(dataset, max_line_bytes=1024) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                # Oversized frame and a valid frame written together:
                # the discard must stop exactly at the newline.
                client._file.write(
                    b'{"pad": "' + b"y" * 4096 + b'"}\n{"op": "ping"}\n'
                )
                client._file.flush()
                first = json.loads(client._file.readline())
                second = json.loads(client._file.readline())
                assert first["error"]["code"] == "line_too_long"
                assert second == {"ok": True, "pong": True}

    def test_unknown_dataset_is_structured(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.request(
                    {"op": "stats", "dataset": "missing"}
                )
                assert response["error"]["code"] == "unknown_dataset"
                assert "default" in response["error"]["message"]

    def test_request_errors_echo_ids(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.request(
                    {"op": "top_stable", "m": 0, "id": "q-17"}
                )
                assert response["ok"] is False and response["id"] == "q-17"


class TestProtocolOverTcp:
    def test_hello_stats_invalidate(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                hello = client.hello()
                assert hello["protocol"] == protocol.PROTOCOL_VERSION
                assert hello["datasets"] == ["default"]
                client.top_stable(1, kind="topk_set", k=3,
                                  backend="randomized", budget=200)
                stats = client.stats()
                assert stats["stats"]["configs"]
                assert stats["server"]["registry"]["active"]
                assert stats["server"]["metrics"]["requests_total"]
                assert client.invalidate()["invalidated"] >= 0

    def test_pipelined_responses_stay_ordered(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                lines = b"".join(
                    json.dumps({"op": "ping", "id": i}).encode() + b"\n"
                    for i in range(10)
                )
                client._file.write(lines)
                client._file.flush()
                ids = [
                    json.loads(client._file.readline())["id"]
                    for i in range(10)
                ]
                assert ids == list(range(10))

    def test_multiple_named_datasets(self, dataset):
        other = make_dataset(40, 2, seed=11)
        with running_server(dataset, datasets={"other": other}) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                default = client.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=200
                )
                named = client.top_stable(
                    1, kind="topk_set", k=3, backend="randomized",
                    budget=200, dataset="other",
                )
                assert default["ok"] and named["ok"]
                assert default["result"] != named["result"]

    def test_parse_hostport_forms(self):
        assert parse_hostport("0.0.0.0:7701") == ("0.0.0.0", 7701)
        assert parse_hostport(":7701") == ("127.0.0.1", 7701)
        assert parse_hostport("7701") == ("127.0.0.1", 7701)
        with pytest.raises(ValueError):
            parse_hostport("nope")


class TestConcurrency:
    N_CLIENTS = 6

    def test_concurrent_clients_match_serial_and_grow_pool_once(self, dataset):
        seed = 7
        expected = serial_answers(dataset, seed)
        with running_server(dataset, seed=seed) as handle:
            results: dict[int, list] = {}
            errors: list = []
            barrier = threading.Barrier(self.N_CLIENTS)

            def worker(idx: int):
                try:
                    with ServeClient(
                        host=handle.host, port=handle.port
                    ) as client:
                        barrier.wait(timeout=30)
                        answers = []
                        for request in WORKLOAD:
                            response = client.request(dict(request))
                            assert response["ok"] is True, response
                            answers.append(json.dumps(response["result"]))
                        results[idx] = answers
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(self.N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            # (a) every client saw the serial single-session answers.
            assert len(results) == self.N_CLIENTS
            for answers in results.values():
                assert answers == expected
            # (b) each pool grew exactly once to its target — no
            # duplicated observe work under the write lock.
            with ServeClient(host=handle.host, port=handle.port) as client:
                configs = client.stats()["stats"]["configs"]
            by_label = {
                label: pool["total_samples"]
                for label, pool in configs.items()
            }
            assert by_label == {
                "topk_set:k=3@randomized": 300,
                "topk_ranked:k=3@randomized": 300,
                "full@randomized": 300,
            }

    def test_busy_shedding_under_admission_cap(self, dataset):
        slow = make_dataset(4000, 3, seed=3)
        with running_server(slow, max_inflight=1) as handle:
            release: list = []

            def slow_request():
                with ServeClient(host=handle.host, port=handle.port) as c:
                    release.append(
                        c.top_stable(1, kind="topk_set", k=8,
                                     backend="randomized", budget=60_000)
                    )

            thread = threading.Thread(target=slow_request)
            thread.start()
            try:
                deadline = time.monotonic() + 30
                while (
                    handle.server._inflight < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                assert handle.server._inflight >= 1
                with ServeClient(host=handle.host, port=handle.port) as c:
                    shed = c.ping()
                assert shed["ok"] is False
                assert shed["error"]["code"] == "busy"
            finally:
                thread.join(timeout=120)
            assert release and release[0]["ok"] is True
            with ServeClient(host=handle.host, port=handle.port) as c:
                assert c.ping()["pong"] is True  # capacity is back
                assert c.stats()["server"]["metrics"]["busy_shed_total"] >= 1


class TestDrainAndRestart:
    def test_graceful_drain_checkpoints_and_restarts_warm(
        self, dataset, tmp_path
    ):
        seed = 13
        request = {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
                   "backend": "randomized", "budget": 400}
        with running_server(dataset, state_dir=tmp_path, seed=seed) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                first = client.request(dict(request))
                assert first["ok"] is True and first["cached"] is False
            report = handle.stop()
        assert [entry["dataset"] for entry in report] == ["default"]
        snaps = list(tmp_path.glob("*.snap"))
        assert len(snaps) == 1
        # The restarted server answers the same query warm: from the
        # restored result cache, without growing any pool.
        with running_server(dataset, state_dir=tmp_path, seed=seed) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                warm = client.request(dict(request))
                assert warm["ok"] is True
                assert warm["cached"] is True
                assert warm["result"] == first["result"]
                stats = client.stats()
                assert stats["server"]["registry"]["active"]["default"][
                    "restored"
                ]
                pools = stats["stats"]["configs"]
                assert pools["topk_set:k=3@randomized"]["total_samples"] == 400

    def test_shutdown_op_drains_and_checkpoints(self, dataset, tmp_path):
        with running_server(dataset, state_dir=tmp_path) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                assert client.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=200
                )["ok"]
                assert client.shutdown()["shutting_down"] is True
                # The server closes the connection after draining.
                with pytest.raises((ServerClosedError, OSError)):
                    for _ in range(5):
                        client.ping()
                        time.sleep(0.1)
            handle.thread.join(timeout=30)
            assert not handle.thread.is_alive()
        assert list(tmp_path.glob("*.snap"))

    def test_drain_completes_while_an_idle_client_stays_connected(
        self, dataset
    ):
        """Since Python 3.12.1 Server.wait_closed() blocks until every
        client connection is gone; the drain must cancel idle handlers
        first or a single keep-alive connection parks it forever."""
        with running_server(dataset) as handle:
            idle = ServeClient(host=handle.host, port=handle.port)
            try:
                assert idle.ping()["pong"] is True
                handle.stop(timeout=30)  # must not hang
            finally:
                idle.close()
        assert not handle.thread.is_alive()

    def test_sigterm_during_load_checkpoints_every_dirty_session(
        self, tmp_path
    ):
        """The acceptance drill: SIGTERM mid-request loses nothing."""
        dataset = make_dataset(2000, 3, seed=9)
        other = make_dataset(500, 3, seed=10)
        registry = SessionRegistry(state_dir=tmp_path, seed=3, parallel=False)
        registry.add_dataset("default", dataset)
        registry.add_dataset("other", other)
        handle = serve_in_thread(registry)
        responses: list = []

        def load():
            with ServeClient(host=handle.host, port=handle.port) as client:
                responses.append(
                    client.top_stable(2, kind="topk_set", k=5,
                                      backend="randomized", budget=20_000)
                )

        with ServeClient(host=handle.host, port=handle.port) as client:
            assert client.top_stable(
                1, kind="topk_set", k=3, backend="randomized",
                budget=300, dataset="other",
            )["ok"]
        thread = threading.Thread(target=load)
        thread.start()
        deadline = time.monotonic() + 30
        while handle.server._inflight < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        # request_shutdown is exactly what the SIGTERM handler calls.
        report = handle.stop(timeout=120)
        thread.join(timeout=120)
        # The in-flight request finished (drain waited for it)...
        assert responses and responses[0]["ok"] is True
        # ...and *both* dirty sessions reached disk.
        assert sorted(entry["dataset"] for entry in report) == [
            "default", "other",
        ]
        assert len(list(tmp_path.glob("*.snap"))) == 2
        # A restarted registry answers the heavy query warm.
        fresh = SessionRegistry(state_dir=tmp_path, seed=3, parallel=False)
        fresh.add_dataset("default", dataset)
        fresh.add_dataset("other", other)
        h2 = serve_in_thread(fresh)
        try:
            with ServeClient(host=h2.host, port=h2.port) as client:
                warm = client.top_stable(2, kind="topk_set", k=5,
                                         backend="randomized", budget=20_000)
                assert warm["cached"] is True
                assert warm["result"] == responses[0]["result"]
        finally:
            h2.stop()


class TestMetricsEndpoint:
    def test_text_endpoint_serves_prometheus(self, dataset):
        import urllib.request

        with running_server(dataset, metrics_port=0) as handle:
            # port 0 resolved by the OS; read it off the bound socket.
            mport = handle.server._metrics_server.sockets[0].getsockname()[1]
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.ping()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{mport}/metrics", timeout=10
            ) as response:
                body = response.read().decode()
                content_type = response.headers["Content-Type"]
        assert "text/plain" in content_type
        assert 'repro_server_requests_total{op="ping"} 1' in body


class TestMisbehavingClients:
    def test_unknown_op_echoes_id(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.request({"op": "teleport", "id": "x9"})
                assert response["error"]["code"] == "unknown_op"
                assert response["id"] == "x9"

    def test_config_rejects_zero_admission_knobs(self):
        from repro.server import ServerConfig

        with pytest.raises(ValueError):
            ServerConfig(max_pending_per_connection=0)
        with pytest.raises(ValueError):
            ServerConfig(max_inflight=0)

    def test_pipelining_disconnector_does_not_leak_the_handler(self, dataset):
        """A client that floods requests and vanishes without reading
        must tear down cleanly: the read loop unblocks when the sender
        dies, instead of parking forever on the full response queue."""
        import socket

        with running_server(dataset, max_pending_per_connection=2) as handle:
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=10
            )
            # More pings than the response queue can hold, never read.
            sock.sendall(b'{"op": "ping"}\n' * 200)
            sock.close()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with ServeClient(host=handle.host, port=handle.port) as c:
                    active = c.stats()["server"]["metrics"]["connections"][
                        "active"
                    ]
                # Only the probing client itself should be connected.
                if active <= 1:
                    break
                time.sleep(0.1)
            assert active <= 1, f"handler leaked: {active} active"
            # And the server still serves.
            with ServeClient(host=handle.host, port=handle.port) as c:
                assert c.ping()["pong"] is True
