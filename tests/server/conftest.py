"""Fixtures for the network front-end suite (see server_testlib)."""

from __future__ import annotations

import pytest

from server_testlib import make_dataset


@pytest.fixture
def dataset():
    return make_dataset()
