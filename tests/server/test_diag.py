"""Diagnosability over the wire: the ``diag`` and ``profile`` ops, the
slow-query/trace join, SLO surfacing in ``stats`` and ``/metrics``,
file-based diag dumps, and gauge re-registration across server cycles."""

from __future__ import annotations

import json
import threading
import time

from server_testlib import make_dataset, running_server

from repro.obs.flight import DIAG_SCHEMA
from repro.obs.promlint import lint
from repro.server import (
    ServeClient,
    ServerConfig,
    SessionRegistry,
    serve_in_thread,
)
from repro.server.metrics import ServerMetrics

QUERY = {
    "op": "top_stable", "m": 3, "kind": "topk_set", "k": 5,
    "backend": "randomized", "budget": 800,
}


class TestDiagOp:
    def test_bundle_carries_all_rings_and_a_metrics_snapshot(self, dataset):
        with running_server(dataset, flight_metrics_interval=0.2) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.request(dict(QUERY))
                response = client.diag()
        assert response["ok"] is True
        assert response["flight"] is True
        bundle = response["diag"]
        assert bundle["schema"] == DIAG_SCHEMA
        assert bundle["reason"] == "wire"
        # The diag handler injects the live metrics snapshot, so even a
        # bundle taken before the periodic sampler ticks has >= 1.
        assert len(bundle["metrics"]) >= 1
        assert bundle["metrics"][-1]["requests_total"]["top_stable"] >= 1
        assert "slo" not in bundle  # no --slo configured
        json.dumps(bundle)

    def test_slow_query_ring_joins_with_the_wire_trace(self, dataset):
        """With a zero slow-query threshold every request is 'slow';
        a traced request's ring record must carry its trace_id."""
        with running_server(dataset, slow_query_seconds=0.0) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                traced = client.request(
                    dict(QUERY, trace=True, trace_id="join-me")
                )
                bundle = client.diag()["diag"]
        assert traced["trace"]["trace_id"] == "join-me"
        slow = bundle["slow_queries"]
        assert slow, "zero threshold but no slow-query records"
        record = next(r for r in slow if r.get("trace_id") == "join-me")
        assert record["op"] == "top_stable"
        assert record["threshold"] == 0.0
        assert record["dataset"] == "default"
        # The same trace's stage report landed in the traces ring too.
        assert any(
            t.get("trace_id") == "join-me" for t in bundle["traces"]
        )

    def test_diag_without_flight_reports_disabled(self, dataset):
        with running_server(dataset, flight=False) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.diag()
        assert response["ok"] is True
        assert response["flight"] is False
        assert response["diag"] is None


class TestProfileOp:
    def test_start_work_stop_yields_stacks(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                started = client.profile("start", hz=250)
                assert started["ok"] is True
                assert started["profile"]["running"] is True
                deadline = time.monotonic() + 5.0
                budget = 2_000
                while time.monotonic() < deadline:
                    client.request(dict(QUERY, budget=budget))
                    budget += 100  # cache-busting: keep the server busy
                    if client.profile("status")["profile"]["samples"] >= 5:
                        break
                stopped = client.profile("stop")
                bundle = client.diag()["diag"]
        profile = stopped["profile"]
        assert profile["running"] is False
        assert profile["samples"] >= 5
        assert profile["stacks"], "busy server produced no stacks"
        # The stopped profiler's stacks persist into later diag bundles.
        assert bundle["profile"]["stacks"] == profile["stacks"]

    def test_bad_profile_requests_are_rejected(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                for payload in (
                    {"op": "profile", "action": "dance"},
                    {"op": "profile", "action": "start", "hz": "fast"},
                    {"op": "profile", "action": "start", "hz": True},
                    {"op": "profile", "action": "start", "hz": 1e9},
                ):
                    response = client.request(payload)
                    assert response["ok"] is False
                    assert response["error"]["code"] == "bad_request"
                assert client.ping()["ok"] is True

    def test_status_when_never_started(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.profile("status")
        assert response["ok"] is True
        assert response["profile"]["running"] is False


class TestSloSurface:
    def test_stats_and_metrics_carry_slo_scores(self, dataset):
        with running_server(
            dataset, slo="p99:10s,err:50%", metrics_port=0
        ) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.request(dict(QUERY))
                stats = client.stats()
            text = handle.server.metrics.render_text()
        slo = stats["server"]["metrics"]["slo"]
        assert slo["spec"]["source"] == "p99:10s,err:50%"
        score = slo["datasets"]["default"]
        assert score["requests"] >= 1
        assert score["compliant"] is True  # generous objectives
        assert slo["compliant"] is True
        assert lint(text) == [], lint(text)
        assert 'repro_slo_burn_rate{dataset="default",objective="p99"}' in text
        assert 'repro_slo_compliant{dataset="default"} 1' in text

    def test_diag_bundle_embeds_the_slo_section(self, dataset):
        with running_server(dataset, slo="p99:10s") as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.request(dict(QUERY))
                bundle = client.diag()["diag"]
        assert bundle["slo"]["datasets"]["default"]["compliant"] is True


class TestDumpDiag:
    def test_dump_writes_a_valid_bundle_file(self, dataset, tmp_path):
        """The path SIGUSR2 takes, minus the signal plumbing (the CI
        server-smoke job exercises the actual signal end to end)."""
        with running_server(dataset, diag_dir=str(tmp_path)) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.request(dict(QUERY))
            path = handle.server.dump_diag("test-dump")
        assert path is not None and path.startswith(str(tmp_path))
        bundle = json.loads(open(path).read())
        assert bundle["schema"] == DIAG_SCHEMA
        assert bundle["reason"] == "test-dump"
        assert len(bundle["metrics"]) >= 1
        # The dump itself logs diag.dump; flight captured it or an
        # earlier event — either way the ring is live.
        assert isinstance(bundle["events"], list)

    def test_dump_without_flight_returns_none(self, dataset, tmp_path):
        with running_server(
            dataset, flight=False, diag_dir=str(tmp_path)
        ) as handle:
            assert handle.server.dump_diag("nope") is None
        assert list(tmp_path.iterdir()) == []


class TestGaugeReRegistration:
    def test_two_server_cycles_share_one_metrics_object_cleanly(self):
        """Regression: resource gauges re-register idempotently, so a
        second serve_in_thread cycle against the same ServerMetrics
        renders each gauge once and lints clean."""
        metrics = ServerMetrics()
        for _ in range(2):
            registry = SessionRegistry(seed=7, parallel=False)
            registry.add_dataset("default", make_dataset())
            handle = serve_in_thread(
                registry, config=ServerConfig(), metrics=metrics
            )
            try:
                with ServeClient(
                    host=handle.host, port=handle.port
                ) as client:
                    assert client.ping()["ok"] is True
            finally:
                handle.stop()
        text = metrics.render_text()
        assert lint(text) == [], lint(text)
        for gauge in ("repro_process_rss_bytes", "repro_pool_bytes",
                      "repro_shm_segments", "repro_cache_bytes"):
            samples = [
                line for line in text.splitlines()
                if line.startswith(f"{gauge} ")
            ]
            assert len(samples) == 1, samples
