"""Registry-layer tests: RW lock semantics, lifecycle, LRU eviction."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.registry import (
    AsyncRWLock,
    SessionRegistry,
    snapshot_path_for,
)

from server_testlib import make_dataset


def run(coro):
    return asyncio.run(coro)


class TestAsyncRWLock:
    def test_readers_interleave(self):
        async def scenario():
            lock = AsyncRWLock()
            inside = asyncio.Event()
            release = asyncio.Event()

            async def reader():
                async with lock.read():
                    inside.set()
                    await release.wait()

            task = asyncio.create_task(reader())
            await inside.wait()
            # A second reader gets in while the first still holds it.
            await asyncio.wait_for(lock.acquire_read(), timeout=1.0)
            await lock.release_read()
            release.set()
            await task
            assert lock.idle

        run(scenario())

    def test_writer_excludes_readers_and_writers(self):
        async def scenario():
            lock = AsyncRWLock()
            order: list[str] = []

            async def writer(tag):
                async with lock.write():
                    order.append(f"{tag}:in")
                    await asyncio.sleep(0.01)
                    order.append(f"{tag}:out")

            async def reader():
                async with lock.read():
                    order.append("r:in")
                    order.append("r:out")

            await asyncio.gather(writer("w1"), writer("w2"), reader())
            # No interleaving: every :in is immediately followed by its
            # own :out.
            for i in range(0, len(order), 2):
                assert order[i].split(":")[0] == order[i + 1].split(":")[0]
            assert lock.idle

        run(scenario())

    def test_waiting_writer_blocks_new_readers(self):
        async def scenario():
            lock = AsyncRWLock()
            await lock.acquire_read()
            writer_started = asyncio.Event()

            async def writer():
                writer_started.set()
                async with lock.write():
                    pass

            task = asyncio.create_task(writer())
            await writer_started.wait()
            await asyncio.sleep(0)  # let the writer reach the wait
            assert not lock.idle
            # A new reader must now queue behind the waiting writer.
            second = asyncio.create_task(lock.acquire_read())
            await asyncio.sleep(0.01)
            assert not second.done()
            await lock.release_read()
            await task  # writer ran
            await asyncio.wait_for(second, timeout=1.0)
            await lock.release_read()
            assert lock.idle

        run(scenario())


class TestSessionRegistry:
    def test_unknown_dataset_raises_keyerror(self, dataset):
        async def scenario():
            registry = SessionRegistry(parallel=False)
            registry.add_dataset("default", dataset)
            with pytest.raises(KeyError):
                await registry.get("nope")

        run(scenario())

    def test_default_dataset_is_first_registered(self, dataset):
        async def scenario():
            registry = SessionRegistry(parallel=False)
            registry.add_dataset("alpha", dataset)
            registry.add_dataset("beta", make_dataset(30, 2, seed=1))
            managed = await registry.get(None)
            assert managed.name == "alpha"
            assert registry.names() == ("alpha", "beta")

        run(scenario())

    def test_duplicate_name_rejected(self, dataset):
        registry = SessionRegistry(parallel=False)
        registry.add_dataset("default", dataset)
        with pytest.raises(ValueError):
            registry.add_dataset("default", dataset)

    def test_sessions_are_shared_across_gets(self, dataset):
        async def scenario():
            registry = SessionRegistry(parallel=False)
            registry.add_dataset("default", dataset)
            first = await registry.get("default")
            second = await registry.get("default")
            assert first is second

        run(scenario())

    def test_lru_eviction_checkpoints_and_restores(self, tmp_path):
        ds_a = make_dataset(40, 2, seed=1)
        ds_b = make_dataset(40, 2, seed=2)

        async def scenario():
            registry = SessionRegistry(
                state_dir=tmp_path, max_active=1, seed=5, parallel=False
            )
            registry.add_dataset("a", ds_a)
            registry.add_dataset("b", ds_b)
            managed_a = await registry.get("a")
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None,
                lambda: managed_a.session.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=200
                ),
            )
            managed_a.mark_dirty()
            samples_before = managed_a.session.stats()["configs"]
            # Activating b evicts idle, dirty a — checkpointing it first.
            await registry.get("b")
            assert registry.evictions == 1
            path_a = snapshot_path_for(tmp_path, ds_a, managed_a.region)
            assert path_a.exists()
            # b is now the resident session; a restores warm on demand.
            restored = await registry.get("a")
            assert restored is not managed_a
            assert restored.restored
            assert restored.session.stats()["configs"] == samples_before
            assert registry.restores == 1

        run(scenario())

    def test_busy_sessions_are_not_evicted(self, tmp_path):
        ds_a = make_dataset(30, 2, seed=1)
        ds_b = make_dataset(30, 2, seed=2)

        async def scenario():
            registry = SessionRegistry(
                state_dir=tmp_path, max_active=1, parallel=False
            )
            registry.add_dataset("a", ds_a)
            registry.add_dataset("b", ds_b)
            managed_a = await registry.get("a")
            async with managed_a.lock.read():  # a is in use
                await registry.get("b")
                assert registry.evictions == 0  # over cap rather than evict
            assert "a" in registry.stats()["active"]

        run(scenario())

    def test_close_sync_checkpoints_only_dirty_durable(self, tmp_path, dataset):
        async def scenario():
            registry = SessionRegistry(
                state_dir=tmp_path, seed=5, parallel=False
            )
            registry.add_dataset("default", dataset)
            managed = await registry.get("default")
            managed.session.top_stable(
                1, kind="topk_set", k=3, backend="randomized", budget=150
            )
            managed.mark_dirty()
            report = registry.close_sync()
            assert [entry["dataset"] for entry in report] == ["default"]
            assert managed.state_path.exists()
            assert registry.stats()["active"] == {}
            # Nothing dirty on a second pass.
            assert registry.close_sync() == []

        run(scenario())

    def test_untrusted_snapshot_starts_cold(self, tmp_path, dataset):
        async def scenario():
            registry = SessionRegistry(
                state_dir=tmp_path, seed=5, parallel=False
            )
            registry.add_dataset("default", dataset)
            managed = await registry.get("default")
            managed.session.top_stable(
                1, kind="topk_set", k=3, backend="randomized", budget=150
            )
            managed.mark_dirty()
            registry.close_sync()
            managed.state_path.write_bytes(
                b"garbage" + managed.state_path.read_bytes()
            )
            fresh = SessionRegistry(
                state_dir=tmp_path, seed=5, parallel=False
            )
            fresh.add_dataset("default", dataset)
            reopened = await fresh.get("default")
            assert not reopened.restored  # cold, but serving

        run(scenario())

    def test_snapshot_path_is_region_and_data_qualified(self, tmp_path):
        from repro.core.region import Cone, FullSpace

        ds = make_dataset(10, 2)
        other = make_dataset(10, 2, seed=99)
        full = FullSpace(2)
        paths = {
            snapshot_path_for(tmp_path, ds, full),
            snapshot_path_for(tmp_path, ds, Cone([1.0, 1.0], 0.3)),
            snapshot_path_for(tmp_path, other, full),
        }
        assert len(paths) == 3
        assert snapshot_path_for(tmp_path, ds, full) == snapshot_path_for(
            tmp_path, ds, full
        )

    def test_prewarm_restores_before_traffic(self, tmp_path, dataset):
        async def warm_then_restart():
            registry = SessionRegistry(
                state_dir=tmp_path, seed=5, parallel=False
            )
            registry.add_dataset("default", dataset)
            assert await registry.prewarm() == []  # nothing on disk yet
            managed = await registry.get("default")
            managed.session.top_stable(
                1, kind="topk_set", k=3, backend="randomized", budget=150
            )
            managed.mark_dirty()
            registry.close_sync()
            fresh = SessionRegistry(
                state_dir=tmp_path, seed=5, parallel=False
            )
            fresh.add_dataset("default", dataset)
            assert await fresh.prewarm() == ["default"]
            resident = fresh.stats()["active"]["default"]
            assert resident["restored"] and resident["configs"] == 1

        run(warm_then_restart())

    def test_eviction_hook_fires(self, tmp_path):
        ds_a = make_dataset(30, 2, seed=1)
        ds_b = make_dataset(30, 2, seed=2)

        async def scenario():
            registry = SessionRegistry(
                state_dir=tmp_path, max_active=1, parallel=False
            )
            fired = []
            registry.on_evict = lambda: fired.append(1)
            registry.add_dataset("a", ds_a)
            registry.add_dataset("b", ds_b)
            await registry.get("a")
            await registry.get("b")
            assert registry.evictions == 1 and fired == [1]

        run(scenario())

    def test_failed_eviction_checkpoint_cannot_livelock(self, tmp_path):
        """Unsaveable victims are skipped in one pass, never re-tried
        in a loop that can starve every request."""
        ds_a = make_dataset(30, 2, seed=1)
        ds_b = make_dataset(30, 2, seed=2)

        async def scenario():
            registry = SessionRegistry(
                state_dir=tmp_path, max_active=1, parallel=False
            )
            registry.add_dataset("a", ds_a)
            registry.add_dataset("b", ds_b)
            managed_a = await registry.get("a")
            managed_a.mark_dirty()
            managed_a.session.save = None  # any checkpoint attempt raises
            # Must return (over cap) instead of spinning on the victim.
            await asyncio.wait_for(registry.get("b"), timeout=5.0)
            assert registry.evictions == 0
            assert set(registry.stats()["active"]) == {"a", "b"}

        run(scenario())
