"""Server observability: opt-in wire traces, the ``explain`` op, the
extended ``stats`` surface, metrics-endpoint lint, and the hardened
``ServerMetrics`` / ``LatencyHistogram`` edge cases."""

from __future__ import annotations

import math
import threading
import urllib.request

from server_testlib import make_dataset, running_server

from repro.obs.promlint import lint
from repro.server import ServeClient
from repro.server.metrics import (
    LATENCY_BOUNDS,
    LatencyHistogram,
    ServerMetrics,
)

QUERY = {
    "op": "top_stable", "m": 3, "kind": "topk_set", "k": 5,
    "backend": "randomized", "budget": 800,
}


class TestWireTrace:
    def test_traced_request_returns_cost_and_stage_breakdown(self, dataset):
        # A budget large enough that sampling dominates the fixed
        # dispatch overhead — the coverage floor is about the work,
        # not the framing.
        query = dict(QUERY, budget=20_000, trace=True, trace_id="t-42")
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.request(query)
        assert response["ok"] is True
        cost = response["cost"]
        assert cost["op"] == "top_stable"
        assert cost["samples_drawn"] == 20_000
        assert cost["cached"] is False
        trace = response["trace"]
        assert trace["trace_id"] == "t-42"
        assert trace["total_seconds"] > 0
        assert trace["coverage"] >= 0.9, trace
        names = [stage["name"] for stage in trace["stages"]]
        assert "server.lock_wait" in names

    def test_untraced_response_is_unchanged(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                plain = client.request(dict(QUERY))
                traced = client.request(dict(QUERY, trace=True))
        assert "trace" not in plain and "cost" not in plain
        # Tracing must not change the answer, only annotate it.
        assert traced["result"] == plain["result"]
        assert traced["cost"]["cached"] is True
        assert traced["cost"]["samples_drawn"] == 0

    def test_generated_trace_ids_are_unique(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                a = client.request(dict(QUERY, trace=True))
                b = client.request(dict(QUERY, trace=True))
        assert a["trace"]["trace_id"] != b["trace"]["trace_id"]


class TestExplainOp:
    def test_explain_predicts_without_materializing(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                cold = client.explain(QUERY)
                assert cold["ok"] is True
                plan = cold["explain"]
                assert plan["materialized"] is False
                assert plan["warm_read"] is False
                assert plan["pool_samples"] == 0
                client.request(dict(QUERY))
                warm = client.explain(QUERY)["explain"]
        assert warm["materialized"] is True
        assert warm["pool_samples"] == QUERY["budget"]
        assert warm["warm_read"] is True

    def test_explain_rejects_non_dict_query(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.request({"op": "explain", "query": 7})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"


class TestStatsSurface:
    def test_per_dataset_registry_stats(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.request(dict(QUERY))
                client.request(dict(QUERY))  # warm: a session cache hit
                stats = client.stats()
        entry = stats["server"]["registry"]["active"]["default"]
        assert entry["executor"] == "serial"
        assert entry["kernel"] in ("auto", "numpy", "numba")
        assert entry["cache_hit_rate"] == 0.5
        assert entry["pool_samples"] == QUERY["budget"]
        assert entry["pool_bytes"] > 0
        assert entry["uptime_seconds"] >= 0.0

    def test_metrics_endpoint_lints_clean(self, dataset):
        with running_server(dataset, metrics_port=0) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.request(dict(QUERY))
            mport = handle.server._metrics_server.sockets[0].getsockname()[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{mport}/metrics", timeout=10
            ) as response:
                text = response.read().decode()
        assert lint(text) == [], lint(text)
        assert "repro_process_rss_bytes" in text
        assert "repro_pool_bytes" in text


class TestServerMetricsHardening:
    def test_connection_close_clamps_at_zero(self):
        metrics = ServerMetrics()
        metrics.connection_opened()
        metrics.connection_closed()
        metrics.connection_closed()  # double-close race must not go negative
        assert metrics.connections_active == 0
        assert metrics.connections_opened == 1

    def test_concurrent_updates_stay_consistent(self):
        """Satellite check: many threads hammering the hot paths leave
        exact totals and a non-negative gauge."""
        metrics = ServerMetrics()
        threads_n, per_thread = 8, 500

        def worker(idx: int) -> None:
            op = f"op{idx % 3}"
            for i in range(per_thread):
                metrics.connection_opened()
                metrics.observe_request(
                    op, 0.001 * (i % 7),
                    error_code="boom" if i % 50 == 0 else None,
                )
                metrics.connection_closed()
                if i % 100 == 0:
                    metrics.connection_closed()  # racing double-close

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = threads_n * per_thread
        assert sum(metrics.requests_total.values()) == total
        assert sum(h.count for h in metrics.latency.values()) == total
        assert metrics.errors_total["boom"] == threads_n * (per_thread // 50)
        assert metrics.connections_opened == total
        assert metrics.connections_active >= 0
        snap = metrics.snapshot()
        assert snap["connections"]["active"] >= 0
        assert lint(metrics.render_text()) == []


class TestLatencyHistogramQuantiles:
    def test_empty_histogram_reports_zero(self):
        hist = LatencyHistogram()
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["mean_seconds"] == 0.0

    def test_all_observations_past_the_last_bound(self):
        hist = LatencyHistogram()
        for _ in range(5):
            hist.observe(LATENCY_BOUNDS[-1] * 10)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == math.inf

    def test_q0_and_q1_snap_to_occupied_buckets(self):
        hist = LatencyHistogram()
        hist.observe(0.0008)   # bucket le=0.001
        hist.observe(0.3)      # bucket le=0.5
        assert hist.quantile(0.0) == 0.001
        assert hist.quantile(1.0) == 0.5

    def test_observation_on_bucket_bound_counts_as_le(self):
        """Prometheus ``le`` is inclusive: a value exactly on a bound
        belongs to that bound's bucket, not the next one."""
        bound = LATENCY_BOUNDS[3]  # 0.001
        hist = LatencyHistogram()
        hist.observe(bound)
        assert hist.buckets[3] == 1
        assert hist.quantile(0.5) == bound

    def test_median_of_a_spread(self):
        hist = LatencyHistogram()
        for value in (0.0002, 0.0002, 0.004, 0.004, 0.004, 8.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 0.005
        assert hist.quantile(1.0) == 10.0
