"""The resilient request path: deadlines, retries, overload, chaos.

Four contracts, unit-tested where the machinery is deterministic and
end-to-end where the stack must compose:

- deadlines fast-fail expired requests without doing work, bound lock
  waits, cooperatively cancel long observes *between* chunk groups
  (completed samples stay pooled — a retry resumes warm and answers
  byte-identically), and win over ``shutting_down`` during a drain;
- the retry machinery (backoff, token budget, circuit breaker) retries
  idempotent ops on pre-execution rejections and connection loss, and
  never retries ``get_next``;
- the overload guard degrades instead of growing past the watermark:
  cold observes shed ``overloaded`` (with a retry hint) while warm
  reads keep answering;
- the chaos injector is seeded and deterministic, and every new metric
  family stays promlint-clean.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import StabilitySession, execute_batch
from repro.server import protocol
from repro.server.client import RequestTimeoutError, ServeClient
from repro.server.resilience import (
    CHAOS_INJECTED,
    DEADLINE_EXCEEDED,
    RETRIES,
    ChaosInjector,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    OverloadGuard,
    RetryPolicy,
    RetryState,
    current_deadline,
    deadline_scope,
    parse_chaos,
    parse_size,
    reset_breakers,
)
from server_testlib import make_dataset, running_server

COLD_QUERY = {
    "op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
    "backend": "randomized", "budget": 400,
}


@pytest.fixture(autouse=True)
def _fresh_breakers():
    reset_breakers()
    yield
    reset_breakers()


# ======================================================================
# Deadline primitives
# ======================================================================
class TestDeadline:
    def test_from_request_parses_and_anchors(self):
        deadline = Deadline.from_request({"op": "ping", "deadline_ms": 50})
        assert deadline is not None
        assert deadline.deadline_ms == 50.0
        assert 0.0 < deadline.remaining() <= 0.05

    @pytest.mark.parametrize(
        "value", [None, True, "50", float("nan"), 0, -1]
    )
    def test_from_request_ignores_garbage(self, value):
        payload = {"op": "ping"}
        if value is not None:
            payload["deadline_ms"] = value
        assert Deadline.from_request(payload) is None

    def test_check_raises_once_expired(self):
        deadline = Deadline(0.01)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceededError, match="0.01 ms"):
            deadline.check("unit test")
        assert deadline.expired()

    def test_scope_is_ambient_and_none_is_noop(self):
        assert current_deadline() is None
        deadline = Deadline(1000)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            with deadline_scope(None):
                assert current_deadline() is deadline
        assert current_deadline() is None

    def test_classify_exception_maps_to_deadline_exceeded(self):
        code, message = protocol.classify_exception(
            DeadlineExceededError("deadline of 5 ms exceeded: test")
        )
        assert code == "deadline_exceeded"
        assert "5 ms" in message

    def test_protocol_rejects_garbage_deadline_on_the_wire(self):
        for bad in ("soon", True, -3, 0):
            with pytest.raises(protocol.RequestError) as err:
                protocol.parse_request(
                    json.dumps({"op": "ping", "deadline_ms": bad})
                )
            assert err.value.code == "bad_request"

    def test_dispatch_fast_fails_expired_request_without_work(self):
        session = StabilitySession(make_dataset(60), seed=7, parallel=False)
        with session:
            deadline = Deadline(0.01)
            time.sleep(0.002)
            assert deadline.expired()
            before = DEADLINE_EXCEEDED.value
            handled = protocol.dispatch(
                session, session.dataset, dict(COLD_QUERY), deadline=deadline
            )
            error = handled.response["error"]
            assert error["code"] == "deadline_exceeded"
            assert not handled.advanced
            assert DEADLINE_EXCEEDED.value == before + 1
            # No pool was grown, no cache entry written: zero work.
            stats = session.stats()
            assert stats["configs"] == {}


# ======================================================================
# Cooperative cancellation mid-observe
# ======================================================================
class _TripAfter:
    """A deadline stub that expires after N ``check`` calls."""

    def __init__(self, allowed: int):
        self.allowed = allowed
        self.calls = 0
        self.deadline_ms = 1.0

    def check(self, what: str = "request") -> None:
        self.calls += 1
        if self.calls > self.allowed:
            raise DeadlineExceededError(
                f"deadline of {self.deadline_ms:g} ms exceeded: {what}"
            )

    def expired(self) -> bool:
        return self.calls >= self.allowed

    def remaining(self) -> float:
        return 1.0 if self.calls < self.allowed else -1.0


class TestCooperativeCancellation:
    # 8192-sample chunks: 48k -> 6 chunks, two groups of 4 at one
    # worker — the second group is gated on a deadline check.
    BUDGET = 48_000

    def _query(self, session):
        return session.top_stable(
            2, kind="topk_set", k=3, backend="randomized", budget=self.BUDGET
        )

    def test_cancel_keeps_pool_warm_and_resume_is_byte_identical(self):
        dataset = make_dataset(150)
        baseline_session = StabilitySession(dataset, seed=7, parallel=False)
        with baseline_session:
            baseline = self._query(baseline_session)

        session = StabilitySession(dataset, seed=7, parallel=False)
        with session:
            trip = _TripAfter(1)  # survives the pre-pass check only
            with deadline_scope(trip):
                with pytest.raises(DeadlineExceededError, match="stay pooled"):
                    self._query(session)
            assert trip.calls > 1  # the observe loop did re-check
            stats = session.stats()
            [config] = stats["configs"].values()
            drawn = config["total_samples"]
            # Cancellation landed between chunk groups: some samples
            # are pooled, but not the full budget.
            assert 0 < drawn < self.BUDGET
            # The retry draws only the remainder and answers exactly
            # what the uninterrupted session answered.
            resumed = self._query(session)
            [config] = session.stats()["configs"].values()
            assert config["total_samples"] == self.BUDGET
        assert [
            (r.stability, tuple(sorted(r.top_k_set))) for r in resumed
        ] == [
            (r.stability, tuple(sorted(r.top_k_set))) for r in baseline
        ]

    def test_small_pass_skips_grouping(self):
        session = StabilitySession(make_dataset(40), seed=7, parallel=False)
        with session:
            trip = _TripAfter(1)
            with deadline_scope(trip):
                result = session.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=200
                )
            assert result  # one chunk group: no mid-pass check, no trip


# ======================================================================
# Batch deadline propagation
# ======================================================================
class TestBatchDeadlines:
    def test_expired_request_fails_alone(self):
        session = StabilitySession(make_dataset(60), seed=7, parallel=False)
        requests = [
            {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 300},
            {"op": "top_stable", "m": 1, "kind": "topk_set", "k": 4,
             "backend": "randomized", "budget": 300,
             "deadline_ms": 0.01},
            {"op": "stability_of", "ranking": [0, 1, 2],
             "kind": "topk_set", "k": 3, "backend": "randomized",
             "budget": 300},
        ]
        time.sleep(0.002)  # the deadline anchored at construction expires
        with session:
            outcomes = execute_batch(session, requests)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, DeadlineExceededError)

    def test_bad_deadline_fails_at_construction(self):
        from repro.service.batch import StabilityRequest

        for bad in (True, -5, 0, float("nan")):
            with pytest.raises(ValueError, match="deadline_ms"):
                StabilityRequest(op="get_next", deadline_ms=bad)


# ======================================================================
# Retry machinery units
# ======================================================================
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(breaker_threshold=0)

    def test_backoff_full_jitter_bounds(self):
        state = RetryState(RetryPolicy(base_delay=0.1, max_delay=1.0, seed=0))
        for attempt, cap in [(1, 0.1), (2, 0.2), (3, 0.4), (6, 1.0)]:
            for _ in range(50):
                assert 0.0 <= state.backoff(attempt) <= cap

    def test_retry_after_hint_raises_the_floor(self):
        state = RetryState(RetryPolicy(base_delay=0.01, seed=0))
        assert state.backoff(1, retry_after_ms=500) >= 0.5
        assert state.backoff(1, retry_after_ms=True) <= 0.01  # bool ignored

    def test_token_budget_spends_and_earns_capped(self):
        state = RetryState(RetryPolicy(budget_tokens=2.0, budget_refill=0.5))
        assert state.spend() and state.spend()
        assert not state.spend()  # dry
        for _ in range(10):
            state.earn()
        assert state.tokens == 2.0  # capped at the start value
        assert state.spend()


class TestCircuitBreaker:
    def test_closed_open_halfopen_cycle(self):
        breaker = CircuitBreaker(threshold=2, reset_after=0.05)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()  # the half-open probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_halfopen_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, reset_after=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()


# ======================================================================
# Scripted-socket client retry behaviour
# ======================================================================
class _ScriptedServer:
    """A one-thread TCP server answering from a fixed script.

    Script entries: ``("error", code)`` answers a structured error,
    ``("ok",)`` answers success, ``("close",)`` drops the connection
    before answering, ``("silent",)`` reads but never answers.  Repeats
    the last entry once the script is exhausted.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests: list[dict] = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _next_action(self):
        if len(self.script) > 1:
            return self.script.pop(0)
        return self.script[0]

    def _serve(self):
        self._listener.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            with conn:
                handle = conn.makefile("rwb")
                try:
                    while not self._stop.is_set():
                        line = handle.readline()
                        if not line:
                            break
                        self.requests.append(json.loads(line))
                        action = self._next_action()
                        if action[0] == "close":
                            # makefile holds an fd reference: shut the
                            # socket down so the client sees EOF now.
                            handle.close()
                            conn.shutdown(socket.SHUT_RDWR)
                            break
                        if action[0] == "silent":
                            self._stop.wait(30.0)
                            break
                        if action[0] == "error":
                            response = {
                                "ok": False,
                                "error": {
                                    "code": action[1],
                                    "message": "scripted",
                                    "retry_after_ms": 1,
                                },
                            }
                        else:
                            response = {"ok": True, "op": "scripted"}
                        handle.write(json.dumps(response).encode() + b"\n")
                        handle.flush()
                except (OSError, ValueError):
                    pass
                finally:
                    try:
                        handle.close()
                    except OSError:
                        pass

    def close(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(5.0)


FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.001, max_delay=0.01, seed=0
)


class TestClientRetries:
    def test_retries_structured_rejections_until_ok(self):
        server = _ScriptedServer([("error", "busy"), ("error", "busy"), ("ok",)])
        try:
            before = RETRIES.value
            with ServeClient(
                host="127.0.0.1", port=server.port, retry=FAST_RETRY
            ) as client:
                response = client.ping()
            assert response["ok"] is True
            assert len(server.requests) == 3
            assert RETRIES.value == before + 2
        finally:
            server.close()

    def test_never_retries_get_next(self):
        server = _ScriptedServer([("error", "busy")])
        try:
            before = RETRIES.value
            with ServeClient(
                host="127.0.0.1", port=server.port, retry=FAST_RETRY
            ) as client:
                response = client.get_next()
            assert response["error"]["code"] == "busy"
            assert len(server.requests) == 1  # surfaced, not retried
            assert RETRIES.value == before
        finally:
            server.close()

    def test_deadline_exceeded_is_never_retried(self):
        server = _ScriptedServer([("error", "deadline_exceeded")])
        try:
            with ServeClient(
                host="127.0.0.1", port=server.port, retry=FAST_RETRY
            ) as client:
                response = client.ping()
            assert response["error"]["code"] == "deadline_exceeded"
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_reconnects_after_connection_drop(self):
        server = _ScriptedServer([("close",), ("ok",)])
        try:
            with ServeClient(
                host="127.0.0.1", port=server.port, retry=FAST_RETRY
            ) as client:
                response = client.stats()
            assert response["ok"] is True
            assert len(server.requests) == 2
        finally:
            server.close()

    def test_gives_up_after_max_attempts(self):
        server = _ScriptedServer([("error", "busy")])
        try:
            with ServeClient(
                host="127.0.0.1", port=server.port, retry=FAST_RETRY
            ) as client:
                response = client.ping()
            assert response["error"]["code"] == "busy"
            assert len(server.requests) == FAST_RETRY.max_attempts
        finally:
            server.close()

    def test_no_retry_without_policy(self):
        server = _ScriptedServer([("error", "busy"), ("ok",)])
        try:
            with ServeClient(host="127.0.0.1", port=server.port) as client:
                response = client.ping()
            assert response["error"]["code"] == "busy"
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_unresponsive_server_times_out_within_bound(self):
        """Regression: a server that accepts but never answers must not
        hang the client past its timeout — and the socket is declared
        unusable (desynchronized), not silently reused."""
        server = _ScriptedServer([("silent",)])
        try:
            client = ServeClient(
                host="127.0.0.1", port=server.port,
                timeout=0.3, connect_retries=1,
            )
            start = time.monotonic()
            with pytest.raises(RequestTimeoutError):
                client.request({"op": "ping"})
            assert time.monotonic() - start < 3.0
            with pytest.raises(ConnectionError):
                client.send({"op": "ping"})  # connection was dropped
            client.close()
        finally:
            server.close()

    def test_deadline_tightens_the_socket_timeout(self):
        server = _ScriptedServer([("silent",)])
        try:
            client = ServeClient(
                host="127.0.0.1", port=server.port,
                timeout=60.0, connect_retries=1,
            )
            start = time.monotonic()
            with pytest.raises(RequestTimeoutError):
                client.request({"op": "ping", "deadline_ms": 200})
            # deadline (0.2s) + DEADLINE_SLACK_S (1s), not 60s.
            assert time.monotonic() - start < 5.0
            client.close()
        finally:
            server.close()


# ======================================================================
# Overload degradation
# ======================================================================
class TestOverloadGuard:
    def test_hysteresis_band(self):
        guard = OverloadGuard(1000, low_fraction=0.5)
        assert not guard.update(999)
        assert guard.update(1000)  # enter at the high watermark
        assert guard.update(600)  # still above the low watermark
        assert not guard.update(499)  # exit below it
        assert guard.transitions == 2
        guard.shed()
        snapshot = guard.snapshot()
        assert snapshot["shed_total"] == 1
        assert snapshot["high_bytes"] == 1000 and snapshot["low_bytes"] == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadGuard(0)
        with pytest.raises(ValueError):
            OverloadGuard(100, low_fraction=0.0)
        with pytest.raises(ValueError):
            OverloadGuard(100, retry_after_ms=-1)

    def test_parse_size(self):
        assert parse_size("512") == 512
        assert parse_size("64kb") == 64 * 1024
        assert parse_size("1.5MiB") == int(1.5 * (1 << 20))
        assert parse_size("2gb") == 2 * (1 << 30)
        for bad in ("", "mb", "-1kb", "64qb"):
            with pytest.raises(ValueError):
                parse_size(bad)

    def test_server_sheds_cold_observes_but_answers_warm_reads(self, dataset):
        with running_server(dataset, memory_watermark_bytes=1) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                # First cold observe: usage is still 0, admitted.
                first = client.request(dict(COLD_QUERY))
                assert first["ok"] is True
                # Pool bytes now exceed the 1-byte watermark: the next
                # cold observe is shed with a retry hint...
                shed = client.request(dict(COLD_QUERY, k=4))
                assert shed["error"]["code"] == "overloaded"
                assert shed["error"]["retry_after_ms"] == 500.0
                # ...while the warm read keeps answering, identically.
                warm = client.request(dict(COLD_QUERY))
                assert warm["ok"] is True
                assert warm["result"] == first["result"]
                stats = client.stats()
                overload = stats["server"]["overload"]
                assert overload["degraded"] is True
                assert overload["shed_total"] >= 1
                text = handle.server.metrics.render_text()
        assert "repro_degraded_mode 1" in text

    def test_degraded_gauge_is_zero_without_pressure(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                client.ping()
                text = handle.server.metrics.render_text()
        assert "repro_degraded_mode 0" in text


# ======================================================================
# Chaos injection
# ======================================================================
class TestChaos:
    def test_parse_chaos_grammar(self):
        config = parse_chaos("delay:p=0.05,ms=100;error:p=0.01;drop:p=0.005")
        assert config.delay_p == 0.05 and config.delay_ms == 100.0
        assert config.error_p == 0.01 and config.drop_p == 0.005
        assert config.enabled

    @pytest.mark.parametrize(
        "spec",
        [
            "boom:p=0.1",          # unknown kind
            "error:p=0.1;error:p=0.2",  # duplicate clause
            "error:p=1.5",         # p out of range
            "delay:p=0.6;error:p=0.6",  # probabilities sum past 1
            "error:q=0.1",         # unknown key
            "error",               # missing params
        ],
    )
    def test_parse_chaos_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_chaos(spec)

    def test_injector_is_deterministic_per_seed(self):
        config = parse_chaos("delay:p=0.2,ms=1;error:p=0.2;drop:p=0.1")
        ops = ["ping", "top_stable", "get_next", "stats"] * 50

        def run(seed):
            injector = ChaosInjector(config, seed=seed)
            return [
                (fault.kind if fault else None)
                for fault in (injector.decide(op) for op in ops)
            ]

        first, second, third = run(3), run(3), run(4)
        assert first == second
        assert any(first)  # p=0.5 over 200 draws: faults certainly fired
        assert not all(first)
        assert first != third

    def test_injector_spares_shutdown_and_counts(self):
        config = parse_chaos("error:p=1.0")
        injector = ChaosInjector(config, seed=0)
        before = CHAOS_INJECTED.value
        assert injector.decide("shutdown") is None
        assert injector.decide("ping").kind == "error"
        assert CHAOS_INJECTED.value == before + 1
        assert injector.snapshot()["injected"]["error"] == 1

    def test_server_chaos_with_retries_answers_identically(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                expected = client.request(dict(COLD_QUERY))
        assert expected["ok"] is True
        retry = RetryPolicy(
            max_attempts=8, base_delay=0.001, max_delay=0.01, seed=0
        )
        with running_server(dataset, chaos="error:p=0.25", chaos_seed=1) as handle:
            with ServeClient(
                host=handle.host, port=handle.port, retry=retry
            ) as client:
                for _ in range(10):
                    response = client.request(dict(COLD_QUERY))
                    assert response["ok"] is True
                    assert response["result"] == expected["result"]
                stats = client.stats()
                assert stats["server"]["chaos"]["injected"]["error"] >= 1

    def test_bad_chaos_spec_fails_server_config_fast(self, dataset):
        from repro.server import ServerConfig

        with pytest.raises(ValueError):
            ServerConfig(chaos="nonsense")


# ======================================================================
# Deadlines end to end (server)
# ======================================================================
class TestServerDeadlines:
    def test_expired_deadline_answers_fast_without_work(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                start = time.monotonic()
                response = client.request(dict(COLD_QUERY, deadline_ms=0.01))
                elapsed = time.monotonic() - start
                assert response["error"]["code"] == "deadline_exceeded"
                assert elapsed < 2.0  # a real cold observe, not just fast-fail
                stats = client.stats()
                # The shed request never grew a pool.
                [entry] = stats["server"]["registry"]["active"].values()
                assert entry["pool_samples"] == 0

    def test_generous_deadline_answers_ok(self, dataset):
        with running_server(dataset) as handle:
            with ServeClient(host=handle.host, port=handle.port) as client:
                response = client.request(dict(COLD_QUERY, deadline_ms=30_000))
                assert response["ok"] is True

    def test_deadline_bounds_the_session_lock_wait(self, dataset):
        with running_server(dataset) as handle:
            blocker = ServeClient(host=handle.host, port=handle.port)
            waiter = ServeClient(host=handle.host, port=handle.port)
            try:
                # Occupy the session write lock with a long cold observe.
                blocker.send(dict(COLD_QUERY, budget=600_000))
                time.sleep(0.1)
                start = time.monotonic()
                response = waiter.request(
                    dict(COLD_QUERY, k=4, deadline_ms=100)
                )
                elapsed = time.monotonic() - start
                assert response["error"]["code"] == "deadline_exceeded"
                assert elapsed < 2.0
                assert blocker.recv()["ok"] is True
            finally:
                blocker.close()
                waiter.close()

    def test_drain_refusal_prefers_deadline_exceeded(self, dataset):
        """A request whose deadline expired while the server drained is
        answered ``deadline_exceeded`` (terminal), not ``shutting_down``
        (an invitation to retry the deadline no longer allows)."""
        with running_server(
            dataset, max_pending_per_connection=1, drain_grace=10.0
        ) as handle:
            client = ServeClient(host=handle.host, port=handle.port)
            try:
                # The first request occupies the one pipelining slot;
                # the second (tiny deadline) parks on the semaphore.
                client.send(dict(COLD_QUERY, budget=40_000))
                client.send({"op": "ping", "deadline_ms": 1})
                time.sleep(0.05)
                handle.server.request_shutdown()
                first = client.recv()
                second = client.recv()
                assert first["ok"] is True
                assert second["error"]["code"] == "deadline_exceeded"
            finally:
                client.close()


# ======================================================================
# Exposition: the new families exist and lint clean
# ======================================================================
class TestResilienceMetrics:
    def test_families_render_and_lint_clean(self, dataset):
        from repro.obs.promlint import lint

        with running_server(
            dataset, chaos="error:p=1.0", chaos_seed=0,
            memory_watermark_bytes=1 << 40,
        ) as handle:
            retry = RetryPolicy(max_attempts=2, base_delay=0.001, seed=0)
            with ServeClient(
                host=handle.host, port=handle.port, retry=retry
            ) as client:
                response = client.ping()
                assert response["error"]["code"] == "unavailable"
                client.request({"op": "ping", "deadline_ms": 0.001})
            text = handle.server.metrics.render_text()
        assert lint(text) == []
        for family in (
            "repro_retries_total",
            "repro_deadline_exceeded_total",
            "repro_chaos_injected_total",
            "repro_degraded_mode",
        ):
            assert f"\n{family} " in text or text.startswith(f"{family} ")
