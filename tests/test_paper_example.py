"""End-to-end checks against every concrete number in the paper's text.

Covers the running example (Figures 1a-1c, Examples 2-3), the section
2.2.5 skyline contrast, and the section 3.2 region-of-interest examples.
"""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    ConstrainedRegion,
    Dataset,
    GetNext2D,
    ScoringFunction,
    rank_items,
    ray_sweep,
    verify_stability_2d,
)
from repro.operators import skyline


class TestFigure1:
    def test_scores_of_figure_1a(self, paper_dataset):
        # Figure 1a tabulates f = x1 + x2: 1.34, 1.48, 1.36, 1.38, 1.35.
        f = ScoringFunction.equal_weights(2)
        assert np.allclose(
            f.score_all(paper_dataset), [1.34, 1.48, 1.36, 1.38, 1.35]
        )

    def test_ranking_of_figure_1b(self, paper_dataset):
        # "the candidates in Example 2 are ranked as <t2, t4, t3, t5, t1>".
        f = ScoringFunction.equal_weights(2)
        assert f.rank(paper_dataset).order == (1, 3, 2, 4, 0)

    def test_figure_1c_eleven_regions(self, paper_dataset):
        # "Figure 1c shows regions R1 through R11".
        assert len(ray_sweep(paper_dataset)) == 11

    def test_t2_highest_under_f(self, paper_dataset):
        # "the intersection of the line t2 with the ray of f = x1 + x2 is
        # closest to the origin, and so t2 has the highest rank for f."
        f = ScoringFunction.equal_weights(2)
        scores = f.score_all(paper_dataset)
        intersections = 1.0 / scores  # distance along the ray, scaled
        assert int(np.argmin(intersections)) == 1

    def test_exchange_t1_t4_bounds_region(self, paper_dataset):
        # Section 3: x(t1, t4) separates t1-above-t4 (left) from
        # t4-above-t1 (right).
        theta = math.atan((0.70 - 0.63) / (0.71 - 0.68))
        before = rank_items(
            paper_dataset.values,
            np.array([math.cos(theta + 0.01), math.sin(theta + 0.01)]),
        )
        after = rank_items(
            paper_dataset.values,
            np.array([math.cos(theta - 0.01), math.sin(theta - 0.01)]),
        )
        # Larger angle = closer to the x2 axis: t1 (index 0) preferred on
        # the left of the exchange ray (angle above theta).
        assert before.rank_of(0) < before.rank_of(3)
        assert after.rank_of(3) < after.rank_of(0)


class TestExample3Regions:
    def test_hr_acceptable_region(self, paper_dataset):
        # Example 3: aptitude twice as important as experience, within
        # 20%: w1/w2 in [1.6, 2.4].
        region = ConstrainedRegion(
            np.array([[1.0, -1.6], [-1.0, 2.4]])  # w1 >= 1.6 w2, w1 <= 2.4 w2
        )
        lo, hi = region.angle_interval()
        assert math.isclose(lo, math.atan2(1.0, 2.4))
        assert math.isclose(hi, math.atan2(1.0, 1.6))
        regions = ray_sweep(paper_dataset, region=region)
        assert math.isclose(sum(s for s, _ in regions), 1.0, rel_tol=1e-9)

    def test_section_32_ustar1(self, paper_dataset):
        # U*_1 = {w1 <= w2, 2 w1 >= w2}: angles [pi/4, arctan 2].
        region = ConstrainedRegion(np.array([[-1.0, 1.0], [2.0, -1.0]]))
        lo, hi = region.angle_interval()
        assert math.isclose(lo, math.pi / 4)
        assert math.isclose(hi, math.atan(2.0))

    def test_section_32_ustar2(self):
        # U*_2: pi/10 around f = x1 + x2 -> angles [3pi/20, 7pi/20].
        cone = Cone(np.array([1.0, 1.0]), math.pi / 10)
        lo, hi = cone.angle_interval()
        assert math.isclose(lo, 3 * math.pi / 20)
        assert math.isclose(hi, 7 * math.pi / 20)
        # "at most pi/10 angle distance (at least 95.1% cosine similarity)"
        assert math.cos(math.pi / 10) > 0.951


class TestSection225SkylineContrast:
    def test_stable_top3_not_subset_of_skyline(self, rng):
        # D = {t1(1,0), t2(.99,.99), t3(.98,.98), t4(.97,.97), t5(0,1)}:
        # skyline is {t1, t2, t5}; most stable top-3 is {t2, t3, t4}.
        values = np.array(
            [[1.0, 0.0], [0.99, 0.99], [0.98, 0.98], [0.97, 0.97], [0.0, 1.0]]
        )
        ds = Dataset(values)
        sky = set(skyline(values).tolist())
        assert sky == {0, 1, 4}
        from repro import GetNextRandomized

        gn = GetNextRandomized(ds, kind="topk_set", k=3, rng=rng)
        top = gn.get_next(budget=4000)
        assert top.top_k_set == frozenset({1, 2, 3})
        assert not top.top_k_set <= sky


class TestGetNextOnExample:
    def test_enumeration_covers_all_rankings(self, paper_dataset):
        results = list(GetNext2D(paper_dataset))
        # 11 regions, 11 distinct rankings (Theorem 1 in 2D).
        assert len(results) == 11
        assert len({r.ranking for r in results}) == 11
        # All five extreme rankings appear: by-x1 and by-x2 orders.
        rankings = {r.ranking.order for r in results}
        assert (1, 3, 0, 2, 4) in rankings  # f = x1
        assert (4, 2, 0, 3, 1) in rankings  # f = x2

    def test_default_ranking_not_most_stable(self, paper_dataset):
        # In the example the equal-weights ranking's region (containing
        # pi/4) is visibly narrower than R11/R1 ("R11 and R1 are wide...").
        default = ScoringFunction.equal_weights(2).rank(paper_dataset)
        default_stability = verify_stability_2d(paper_dataset, default).stability
        most_stable = GetNext2D(paper_dataset).get_next()
        assert most_stable.stability > default_stability
        assert most_stable.ranking != default
