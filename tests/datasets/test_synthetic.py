"""Unit tests for the synthetic dataset families (section 6.1)."""

import numpy as np
import pytest

from repro.datasets import (
    anticorrelated_dataset,
    correlated_dataset,
    independent_dataset,
    synthetic_dataset,
)


def _mean_pairwise_correlation(values):
    corr = np.corrcoef(values.T)
    d = corr.shape[0]
    off = corr[~np.eye(d, dtype=bool)]
    return float(off.mean())


class TestShapes:
    @pytest.mark.parametrize("family", ["independent", "correlated", "anticorrelated"])
    def test_shape_and_range(self, family, rng):
        ds = synthetic_dataset(family, 500, 3, rng)
        assert ds.n_items == 500
        assert ds.n_attributes == 3
        assert ds.values.min() >= 0.0
        assert ds.values.max() <= 1.0

    def test_unknown_family(self, rng):
        with pytest.raises(ValueError):
            synthetic_dataset("weird", 10, 2, rng)

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            independent_dataset(0, 3, rng)
        with pytest.raises(ValueError):
            correlated_dataset(10, 1, rng)

    def test_deterministic_under_seed(self, rng_factory):
        a = independent_dataset(50, 3, rng_factory(1))
        b = independent_dataset(50, 3, rng_factory(1))
        assert np.array_equal(a.values, b.values)


class TestCorrelationStructure:
    def test_correlated_positive(self, rng):
        ds = correlated_dataset(3000, 3, rng)
        assert _mean_pairwise_correlation(ds.values) > 0.5

    def test_anticorrelated_negative(self, rng):
        ds = anticorrelated_dataset(3000, 3, rng)
        assert _mean_pairwise_correlation(ds.values) < -0.2

    def test_independent_near_zero(self, rng):
        ds = independent_dataset(3000, 3, rng)
        assert abs(_mean_pairwise_correlation(ds.values)) < 0.06

    def test_ordering_of_families(self, rng):
        corr = _mean_pairwise_correlation(correlated_dataset(2000, 3, rng).values)
        ind = _mean_pairwise_correlation(independent_dataset(2000, 3, rng).values)
        anti = _mean_pairwise_correlation(anticorrelated_dataset(2000, 3, rng).values)
        assert corr > ind > anti

    def test_correlated_spread_parameter(self, rng_factory):
        tight = correlated_dataset(2000, 3, rng_factory(2), spread=0.02)
        loose = correlated_dataset(2000, 3, rng_factory(2), spread=0.3)
        assert _mean_pairwise_correlation(tight.values) > _mean_pairwise_correlation(
            loose.values
        )


class TestFigure21Preconditions:
    def test_skyline_size_ordering(self, rng):
        # The mechanism behind Figure 21: correlation -> dominance ->
        # small skyline -> few feasible rankings -> skewed stability.
        from repro.operators import skyline

        sizes = {}
        for family in ("correlated", "independent", "anticorrelated"):
            ds = synthetic_dataset(family, 400, 3, rng)
            sizes[family] = len(skyline(ds.values))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]
