"""Unit tests for the real-dataset stand-ins (CSMetrics, FIFA, Blue Nile, DoT)."""

import numpy as np
import pytest

from repro.datasets import (
    BLUENILE_ATTRIBUTES,
    CSMETRICS_DEFAULT_ALPHA,
    DOT_ATTRIBUTES,
    FIFA_REFERENCE_WEIGHTS,
    bluenile_dataset,
    csmetrics_dataset,
    dot_dataset,
    fifa_dataset,
)
from repro.datasets.csmetrics import csmetrics_reference_function
from repro.datasets.fifa import fifa_reference_function


class TestCSMetrics:
    def test_shape_and_normalisation(self):
        ds = csmetrics_dataset(100)
        assert ds.n_items == 100
        assert ds.n_attributes == 2
        assert ds.values.min() >= 0.0 and ds.values.max() <= 1.0

    def test_log_attributes_named(self):
        ds = csmetrics_dataset(10)
        assert all(name.startswith("log_") for name in ds.attribute_names)

    def test_raw_mode_positive_counts(self):
        raw = csmetrics_dataset(50, log_transform=False)
        assert np.all(raw.values > 0)
        assert raw.attribute_names == ("measured", "predicted")

    def test_attributes_correlated(self):
        ds = csmetrics_dataset(100)
        rho = np.corrcoef(ds.values.T)[0, 1]
        assert rho > 0.8

    def test_deterministic_default_seed(self):
        assert np.array_equal(csmetrics_dataset(30).values, csmetrics_dataset(30).values)

    def test_custom_rng(self, rng_factory):
        a = csmetrics_dataset(30, rng_factory(1))
        b = csmetrics_dataset(30, rng_factory(2))
        assert not np.array_equal(a.values, b.values)

    def test_reference_function(self):
        f = csmetrics_reference_function()
        assert np.allclose(f.weights, [CSMETRICS_DEFAULT_ALPHA, 0.7])

    def test_reference_function_bounds(self):
        with pytest.raises(ValueError):
            csmetrics_reference_function(alpha=0.0)

    def test_feasible_ranking_count_is_plausible(self):
        # The real top-100 yields 336 feasible rankings; the stand-in
        # should land in the same order of magnitude (hundreds, not
        # thousands or single digits).
        from repro import ray_sweep

        regions = ray_sweep(csmetrics_dataset(100))
        assert 100 <= len(regions) <= 1500

    def test_unique_labels(self):
        ds = csmetrics_dataset(60)
        assert len(set(ds.item_labels)) == 60


class TestFIFA:
    def test_shape(self):
        ds = fifa_dataset(100)
        assert ds.n_items == 100
        assert ds.n_attributes == 4
        assert ds.attribute_names == ("A1", "A2", "A3", "A4")

    def test_normalised(self):
        ds = fifa_dataset(50)
        assert ds.values.min() >= 0.0 and ds.values.max() <= 1.0

    def test_reference_weights(self):
        f = fifa_reference_function()
        assert np.allclose(f.weights, FIFA_REFERENCE_WEIGHTS)

    def test_yearly_persistence(self):
        # Adjacent years correlate more than years three apart.
        ds = fifa_dataset(500)
        corr = np.corrcoef(ds.values.T)
        assert corr[0, 1] > corr[0, 3]

    def test_persistence_bounds(self):
        with pytest.raises(ValueError):
            fifa_dataset(10, persistence=1.0)

    def test_deterministic_default_seed(self):
        assert np.array_equal(fifa_dataset(20).values, fifa_dataset(20).values)


class TestBlueNile:
    def test_shape_and_attributes(self):
        ds = bluenile_dataset(1000)
        assert ds.n_items == 1000
        assert ds.attribute_names == BLUENILE_ATTRIBUTES

    def test_normalised_with_price_inverted(self):
        norm = bluenile_dataset(2000)
        raw = bluenile_dataset(2000, normalized=False)
        # Cheapest diamond gets the best normalised price score.
        cheapest = int(np.argmin(raw.values[:, 0]))
        assert norm.values[cheapest, 0] == 1.0

    def test_price_increases_with_carat(self):
        raw = bluenile_dataset(5000, normalized=False)
        rho = np.corrcoef(np.log(raw.values[:, 0]), np.log(raw.values[:, 1]))[0, 1]
        assert rho > 0.7

    def test_projection_for_dimension_sweeps(self):
        # Section 6.3 varies d by projecting the first k attributes.
        ds = bluenile_dataset(100)
        for d in (2, 3, 4):
            assert ds.project(range(d)).n_attributes == d

    def test_default_size_matches_paper(self):
        # The full catalog is large; don't materialise it here, just
        # check the documented default.
        import inspect

        sig = inspect.signature(bluenile_dataset)
        assert sig.parameters["n_items"].default == 116_300


class TestDoT:
    def test_shape_and_attributes(self):
        ds = dot_dataset(1000)
        assert ds.attribute_names == DOT_ATTRIBUTES
        assert ds.n_attributes == 3

    def test_normalised_range(self):
        ds = dot_dataset(2000)
        assert ds.values.min() >= 0.0 and ds.values.max() <= 1.0

    def test_raw_units_plausible(self):
        raw = dot_dataset(5000, normalized=False)
        air = raw.values[:, 0]
        assert 15.0 <= air.min() and air.max() <= 700.0

    def test_taxi_times_correlated(self):
        # Shared congestion term links taxi-in and taxi-out.
        raw = dot_dataset(20_000, normalized=False)
        rho = np.corrcoef(raw.values[:, 1], raw.values[:, 2])[0, 1]
        assert rho > 0.15

    def test_default_size_matches_paper(self):
        import inspect

        sig = inspect.signature(dot_dataset)
        assert sig.parameters["n_items"].default == 1_322_023

    def test_rejects_zero_items(self):
        with pytest.raises(ValueError):
            dot_dataset(0)
