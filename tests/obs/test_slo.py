"""SLO engine: spec parsing, burn-rate math against real per-dataset
histograms, pre-registered datasets, and lint-clean exposition."""

from __future__ import annotations

import math

import pytest

from repro.obs.promlint import lint
from repro.obs.slo import SloSpec, SloTracker, parse_slo
from repro.server.metrics import ServerMetrics


class TestParse:
    def test_full_spec_round_trips(self):
        spec = parse_slo("p99:50ms,err:0.1%")
        assert spec.latency == {"p99": (0.99, pytest.approx(0.05))}
        assert spec.error_rate == pytest.approx(0.001)
        assert spec.source == "p99:50ms,err:0.1%"
        doc = spec.to_dict()
        assert doc["latency"]["p99"]["quantile"] == 0.99
        assert doc["error_rate"] == pytest.approx(0.001)

    def test_units_and_defaults(self):
        assert parse_slo("p50:250us").latency["p50"][1] == pytest.approx(25e-5)
        assert parse_slo("p95:2s").latency["p95"][1] == 2.0
        assert parse_slo("p95:0.75").latency["p95"][1] == 0.75  # bare = s
        assert parse_slo("err:0.25").error_rate == 0.25  # bare = fraction
        assert parse_slo("p99.9:1s").latency["p99.9"][0] == pytest.approx(0.999)

    def test_multiple_latency_objectives(self):
        spec = parse_slo("p50:5ms, p99:100ms")
        assert set(spec.latency) == {"p50", "p99"}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "p99",                # no value
            "p99:",               # empty value
            "p0:1ms",             # quantile out of (0, 100)
            "p99:-5ms",           # negative duration
            "p99:0ms",            # zero duration
            "p99:50%",            # latency with a percent
            "err:150%",           # rate > 1
            "err:2",              # bare rate > 1
            "err:5ms",            # rate with a duration unit
            "latency:50ms",       # unknown objective
            "p99:50ms,p99:60ms",  # duplicate latency
            "err:1%,err:2%",      # duplicate err
            "p99:abc",            # unparseable value
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)


def _metrics_with_traffic(
    *, dataset: str = "default", fast: int = 0, slow: int = 0, errors: int = 0
) -> ServerMetrics:
    metrics = ServerMetrics()
    for _ in range(fast):
        metrics.observe_request("top_stable", 0.0002, dataset=dataset)
    for _ in range(slow):
        metrics.observe_request("top_stable", 0.2, dataset=dataset)
    for _ in range(errors):
        metrics.observe_request(
            "top_stable", 0.0002, error_code="boom", dataset=dataset
        )
    return metrics


class TestBurnMath:
    def test_latency_burn_is_violation_rate_over_allowance(self):
        # 90 fast + 10 slow at p99:1ms -> violation rate 0.1 against a
        # 1% allowance: burn 10, non-compliant.
        metrics = _metrics_with_traffic(fast=90, slow=10)
        tracker = SloTracker(parse_slo("p99:1ms"), metrics.dataset_view)
        score = tracker.snapshot()["datasets"]["default"]
        obj = score["objectives"]["p99"]
        assert obj["violations"] == 10
        assert obj["violation_rate"] == pytest.approx(0.1)
        assert obj["burn_rate"] == pytest.approx(10.0)
        assert obj["compliant"] is False
        assert score["compliant"] is False

    def test_all_fast_traffic_is_compliant(self):
        metrics = _metrics_with_traffic(fast=100)
        tracker = SloTracker(parse_slo("p99:1ms"), metrics.dataset_view)
        obj = tracker.snapshot()["datasets"]["default"]["objectives"]["p99"]
        assert obj["violations"] == 0
        assert obj["burn_rate"] == 0.0
        assert obj["compliant"] is True

    def test_target_inside_a_bucket_counts_the_bucket_as_violating(self):
        # 0.0002s observations land in the le=0.25ms bucket; a 0.1ms
        # target falls below that bound, so conservatively every
        # observation counts as a violation.
        metrics = _metrics_with_traffic(fast=10)
        tracker = SloTracker(parse_slo("p99:0.1ms"), metrics.dataset_view)
        obj = tracker.snapshot()["datasets"]["default"]["objectives"]["p99"]
        assert obj["violations"] == 10

    def test_error_burn_and_infinite_budget(self):
        metrics = _metrics_with_traffic(fast=95, errors=5)
        tracker = SloTracker(parse_slo("err:10%"), metrics.dataset_view)
        obj = tracker.snapshot()["datasets"]["default"]["objectives"]["err"]
        assert obj["observed_rate"] == pytest.approx(0.05)
        assert obj["burn_rate"] == pytest.approx(0.5)
        assert obj["compliant"] is True

        strict = SloTracker(parse_slo("err:0%"), metrics.dataset_view)
        obj = strict.snapshot()["datasets"]["default"]["objectives"]["err"]
        assert obj["burn_rate"] == "inf"  # any error blows a zero budget
        assert obj["compliant"] is False

    def test_zero_traffic_is_compliant_with_zero_burn(self):
        metrics = ServerMetrics()
        tracker = SloTracker(
            parse_slo("p99:1ms,err:1%"), metrics.dataset_view
        )
        tracker.watch("default")
        score = tracker.snapshot()["datasets"]["default"]
        assert score["compliant"] is True
        assert score["objectives"]["p99"]["burn_rate"] == 0.0
        assert score["objectives"]["err"]["burn_rate"] == 0.0

    def test_watched_datasets_appear_before_traffic(self):
        metrics = ServerMetrics()
        tracker = SloTracker(parse_slo("p99:1s"), metrics.dataset_view)
        tracker.watch("a", "b")
        snap = tracker.snapshot()
        assert set(snap["datasets"]) == {"a", "b"}
        assert snap["compliant"] is True


class TestExposition:
    def test_render_text_lints_clean_with_traffic(self):
        metrics = _metrics_with_traffic(fast=50, slow=5, errors=5)
        tracker = SloTracker(
            parse_slo("p50:1ms,p99:1ms,err:1%"), metrics.dataset_view
        )
        metrics.slo = tracker
        text = metrics.render_text()
        assert lint(text) == [], lint(text)
        assert 'repro_slo_burn_rate{dataset="default",objective="p99"}' in text
        assert 'repro_slo_latency_target_seconds{objective="p50"}' in text
        assert 'repro_slo_compliant{dataset="default"} 0' in text
        assert 'repro_slo_error_rate{dataset="default"}' in text

    def test_infinite_burn_renders_as_prometheus_inf(self):
        metrics = _metrics_with_traffic(fast=9, errors=1)
        tracker = SloTracker(parse_slo("err:0%"), metrics.dataset_view)
        text = tracker.render_text()
        assert lint(text) == [], lint(text)
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_slo_burn_rate")
        )
        assert line.endswith(" +Inf")
        assert math.isinf(float(line.rsplit(" ", 1)[1]))

    def test_empty_spec_never_constructs(self):
        with pytest.raises(ValueError):
            parse_slo("   ")
        # But a hand-built latency-only spec renders without err series.
        spec = SloSpec(latency={"p99": (0.99, 1.0)}, source="p99:1s")
        tracker = SloTracker(spec, lambda: {})
        text = tracker.render_text()
        assert "repro_slo_error_rate" not in text
        assert lint(text) == [], lint(text)
