"""MetricsRegistry, resource gauges, and the exposition linter the CI
smoke job runs against the live ``--metrics-port`` endpoint."""

from __future__ import annotations

import math

import pytest

from repro.obs import MetricsRegistry, register_resource_gauges, rss_bytes
from repro.obs.promlint import lint


class TestRegistry:
    def test_gauge_and_counter_collect(self):
        registry = MetricsRegistry()
        registry.register_gauge("g", lambda: 41.5, help="a gauge")
        counter = registry.counter("c_total", help="a counter")
        counter.inc()
        counter.inc(2)
        assert registry.collect() == {"g": 41.5, "c_total": 3}

    def test_counter_is_idempotent_per_name(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", help="a counter")
        b = registry.counter("c_total", help="ignored")
        a.inc()
        assert b is a and b.value == 1

    def test_name_collisions_raise(self):
        registry = MetricsRegistry()
        registry.register_gauge("x", lambda: 0, help="h")
        with pytest.raises(ValueError):
            registry.counter("x", help="h")
        registry.counter("y_total", help="h")
        with pytest.raises(ValueError):
            registry.register_gauge("y_total", lambda: 0, help="h")

    def test_failing_gauge_is_nan_in_collect_skipped_in_text(self):
        registry = MetricsRegistry()

        def boom() -> float:
            raise RuntimeError("scrape-time failure")

        registry.register_gauge("bad", boom, help="h")
        registry.register_gauge("good", lambda: 1.0, help="h")
        assert math.isnan(registry.collect()["bad"])
        text = registry.render_text()
        assert "bad" not in text and "good 1" in text

    def test_render_text_lints_clean(self):
        registry = MetricsRegistry()
        registry.register_gauge("repro_g", lambda: 2.5, help="gauge help")
        registry.counter("repro_c_total", help="counter help").inc(7)
        text = registry.render_text()
        assert lint(text) == []
        assert "# TYPE repro_g gauge" in text
        assert "# TYPE repro_c_total counter" in text

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register_gauge("g", lambda: 1, help="h")
        registry.unregister("g")
        assert registry.collect() == {}


class TestResourceGauges:
    def test_standard_names_and_live_values(self):
        registry = MetricsRegistry()
        register_resource_gauges(
            registry, pool_bytes=lambda: 123, cache_bytes=lambda: 456
        )
        values = registry.collect()
        assert set(values) == {
            "repro_process_rss_bytes", "repro_shm_segments",
            "repro_pool_bytes", "repro_cache_bytes",
        }
        assert values["repro_process_rss_bytes"] > 0
        assert values["repro_shm_segments"] == 0
        assert values["repro_pool_bytes"] == 123
        assert values["repro_cache_bytes"] == 456
        assert lint(registry.render_text()) == []

    def test_optional_gauges_are_omitted_not_zero(self):
        registry = MetricsRegistry()
        register_resource_gauges(registry)
        values = registry.collect()
        assert "repro_pool_bytes" not in values
        assert "repro_cache_bytes" not in values

    def test_rss_bytes_is_positive_here(self):
        assert rss_bytes() > 0


class TestPromlint:
    def test_clean_histogram_passes(self):
        text = (
            "# HELP h Request latency.\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 0.3\n"
            "h_count 2\n"
        )
        assert lint(text) == []

    def test_missing_help_and_type_flagged(self):
        problems = lint("orphan 1\n")
        assert any("no TYPE" in p for p in problems)
        assert any("no HELP" in p for p in problems)

    def test_duplicate_series_flagged(self):
        text = (
            "# HELP g h\n# TYPE g gauge\n"
            'g{a="1",b="2"} 1\n'
            'g{b="2",a="1"} 2\n'  # same label set, reordered
        )
        assert any("duplicate series" in p for p in lint(text))

    def test_duplicate_help_flagged(self):
        text = "# HELP g h\n# HELP g again\n# TYPE g gauge\ng 1\n"
        assert any("duplicate HELP" in p for p in lint(text))

    def test_non_numeric_value_flagged(self):
        assert any(
            "non-numeric" in p
            for p in lint("# HELP g h\n# TYPE g gauge\ng pizza\n")
        )

    def test_decreasing_buckets_flagged(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="0.2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        assert any("decreases" in p for p in lint(text))

    def test_missing_inf_bucket_flagged(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
        )
        assert any('le="+Inf"' in p for p in lint(text))

    def test_inf_bucket_count_mismatch_flagged(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_count 5\n"
        )
        assert any("!= count" in p for p in lint(text))
