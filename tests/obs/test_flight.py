"""Flight recorder: ring cap invariants (property-tested under
concurrent writers), the refcounted global lifecycle, level-independent
event capture, bundle shape, and the disabled-path cost contract."""

from __future__ import annotations

import io
import json
import logging
import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import configure_logging, flight, log_event
from repro.obs.flight import DIAG_SCHEMA, FlightRecorder, _Ring, _entry_size
from repro.obs.logs import LOGGER_NAME

MAX_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

RING_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(autouse=True)
def _global_recorder_off():
    """Every test starts and ends with the global recorder disabled."""
    while flight.enabled():
        flight.disable()
    yield
    while flight.enabled():
        flight.disable()


class TestRingCaps:
    @RING_SETTINGS
    @given(
        max_entries=st.integers(min_value=1, max_value=16),
        max_bytes=st.integers(min_value=32, max_value=2048),
        payload_sizes=st.lists(
            st.integers(min_value=0, max_value=600), min_size=1, max_size=64
        ),
    )
    def test_never_exceeds_entry_or_byte_cap(
        self, max_entries, max_bytes, payload_sizes
    ):
        """Property: after any append sequence, both caps hold and the
        byte accounting matches the entries actually retained."""
        ring = _Ring(max_entries, max_bytes)
        for i, size in enumerate(payload_sizes):
            ring.append({"i": i, "pad": "x" * size})
        entries, dropped = ring.snapshot()
        assert len(entries) <= max_entries
        assert ring.total_bytes <= max_bytes
        assert ring.total_bytes == sum(_entry_size(e) for e in entries)
        assert dropped == len(payload_sizes) - len(entries)

    def test_oversized_single_entry_is_dropped_not_kept(self):
        ring = _Ring(max_entries=8, max_bytes=64)
        ring.append({"pad": "x" * 500})
        entries, dropped = ring.snapshot()
        assert entries == [] and dropped == 1
        assert ring.total_bytes == 0

    def test_eviction_is_oldest_first(self):
        ring = _Ring(max_entries=3, max_bytes=10_000)
        for i in range(5):
            ring.append({"i": i})
        entries, dropped = ring.snapshot()
        assert [e["i"] for e in entries] == [2, 3, 4]
        assert dropped == 2

    def test_concurrent_writers_hold_caps_and_dump_valid_json(self):
        """Writers hammer the ring while a reader repeatedly dumps it;
        every dump must be self-consistent, cap-respecting JSON."""
        ring = _Ring(max_entries=32, max_bytes=4096)
        stop = threading.Event()
        bad: list[str] = []

        def writer(idx: int) -> None:
            i = 0
            while not stop.is_set():
                ring.append({"w": idx, "i": i, "pad": "y" * (i % 90)})
                i += 1

        def reader() -> None:
            while not stop.is_set():
                entries, _ = ring.snapshot()
                try:
                    decoded = json.loads(json.dumps(entries))
                except ValueError as exc:  # pragma: no cover - the bug
                    bad.append(f"dump not JSON: {exc}")
                    return
                if len(decoded) > 32:
                    bad.append(f"entry cap broken: {len(decoded)}")
                    return
                if sum(_entry_size(e) for e in decoded) > 4096:
                    bad.append("byte cap broken")
                    return

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert bad == []
        entries, _ = ring.snapshot()
        assert len(entries) <= 32
        assert ring.total_bytes <= 4096


class TestGlobalLifecycle:
    def test_enable_disable_toggles_the_fast_path_flag(self):
        assert flight._ENABLED == 0 and flight.get() is None
        recorder = flight.enable()
        assert flight._ENABLED and flight.get() is recorder
        flight.disable()
        assert flight._ENABLED == 0 and flight.get() is None

    def test_nested_enables_share_one_recorder(self):
        outer = flight.enable(max_events=4)
        inner = flight.enable(max_events=999)  # caps ignored when nested
        assert inner is outer
        assert outer.events.max_entries == 4
        flight.disable()
        assert flight.enabled()  # still held by the outer enable
        flight.disable()
        assert not flight.enabled()

    def test_extra_disable_is_harmless(self):
        flight.disable()
        assert not flight.enabled()
        flight.enable()
        flight.disable()
        flight.disable()
        assert not flight.enabled()

    def test_module_helpers_are_noops_while_disabled(self):
        flight.record_event("pool.grow", {"drawn": 1})
        flight.record_trace({"op": "x"})
        flight.record_slow_query({"op": "x"})
        flight.record_metrics({"uptime_seconds": 1})
        assert flight.diag_bundle("test") is None


class TestEventCapture:
    def test_log_event_is_captured_below_the_logging_level(self):
        """The recorder is a crash buffer, not a log sink: INFO events
        land in the ring even when the logger only emits warnings."""
        log = logging.getLogger(LOGGER_NAME)
        saved = (list(log.handlers), log.level, log.propagate)
        stream = io.StringIO()
        try:
            configure_logging(json_lines=True, level="warning", stream=stream)
            recorder = flight.enable()
            log_event("pool.grow", config="topk_set:k=5", drawn=1000)
            entries, _ = recorder.events.snapshot()
        finally:
            flight.disable()
            log.handlers[:] = saved[0]
            log.setLevel(saved[1])
            log.propagate = saved[2]
        assert stream.getvalue() == ""  # the logger filtered it out...
        (entry,) = entries              # ...the recorder did not
        assert entry["event"] == "pool.grow"
        assert entry["drawn"] == 1000
        assert isinstance(entry["t"], float)


class TestBundle:
    def test_bundle_shape_and_injected_snapshot(self):
        recorder = FlightRecorder(max_events=8)
        recorder.record_event("server.drain", {"phase": "begin"})
        recorder.record_trace({"op": "top_stable", "trace_id": "t-1"})
        recorder.record_slow_query({"op": "get_next", "seconds": 2.0})
        doc = recorder.bundle(
            "unit-test",
            metrics_snapshot={"uptime_seconds": 3.0},
            slo={"compliant": True},
        )
        assert doc["schema"] == DIAG_SCHEMA
        assert doc["reason"] == "unit-test"
        assert set(doc["dropped"]) == {
            "events", "traces", "slow_queries", "metrics"
        }
        assert doc["events"][0]["event"] == "server.drain"
        assert doc["traces"][0]["trace_id"] == "t-1"
        assert doc["slow_queries"][0]["seconds"] == 2.0
        # The caller's final snapshot lands in the metrics list even
        # though the periodic sampler never ticked.
        assert doc["metrics"][-1]["uptime_seconds"] == 3.0
        assert doc["slo"] == {"compliant": True}
        json.dumps(doc)  # the whole bundle must be dumpable as-is

    def test_bundle_without_slo_omits_the_key(self):
        doc = FlightRecorder().bundle("bare")
        assert "slo" not in doc
        assert doc["metrics"] == []


def test_disabled_overhead_within_budget():
    """Same contract as tracing: with the recorder off, the guarded
    call sites must cost <= 2% of a 10K-item observe.  Measured
    structurally, min over batches against a generous per-pass call
    bound (see test_tracing.test_disabled_overhead_within_budget)."""
    import numpy as np

    from repro import Dataset
    from repro.core.randomized import GetNextRandomized

    dataset = Dataset(np.random.default_rng(20180905).uniform(size=(10_000, 3)))
    op = GetNextRandomized(
        dataset, kind="topk_set", k=5, rng=np.random.default_rng(5)
    )
    start = time.perf_counter()
    op.observe(2_048)
    observe_seconds = time.perf_counter() - start

    calls = 10_000
    per_call = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(calls):
            if flight._ENABLED:
                flight.record_event("never", None)
            if flight._ENABLED:
                flight.record_slow_query({})
        per_call = min(
            per_call, (time.perf_counter() - start) / (2 * calls)
        )
    # A serving pass makes a handful of guarded tests (log_event, the
    # slow-query check, the trace record); 100 is far above it.
    overhead = 100 * per_call
    assert overhead <= 0.02 * observe_seconds, (
        f"disabled-path flight checks {overhead * 1e6:.1f} us vs "
        f"observe {observe_seconds * 1e3:.1f} ms"
    )
