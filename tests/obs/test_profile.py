"""Sampling profiler: collapsed-stack folding, self-exclusion, the
stack-count cap, and the idempotent process-global lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import profile
from repro.obs.profile import MAX_HZ, MIN_HZ, SamplingProfiler, _fold


@pytest.fixture(autouse=True)
def _global_profiler_off():
    """Every test starts and ends with the global profiler stopped."""
    profile.stop()
    profile._PROFILER = None
    yield
    profile.stop()
    profile._PROFILER = None


def _busy(stop: threading.Event) -> None:
    """A worker with a recognisable frame for the sampler to catch."""
    while not stop.is_set():
        sum(i * i for i in range(500))


class TestSamplingProfiler:
    def test_busy_thread_is_sampled_into_collapsed_stacks(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        time.sleep(0.3)
        stacks = profiler.stop()
        stop.set()
        worker.join()
        assert profiler.samples > 0
        assert stacks, "no stacks collected from a busy process"
        # Root-first collapsed keys: every stack starts at the thread
        # bootstrap (or the interpreter main), and the busy worker's
        # frame shows up in at least one of them.
        assert any("_busy" in key for key in stacks)
        for key in stacks:
            assert ";" in key or "." in key

    def test_sampler_excludes_its_own_thread(self):
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        time.sleep(0.2)
        stacks = profiler.stop()
        assert all("profile._run" not in key for key in stacks)

    def test_hz_bounds_are_enforced(self):
        for bad in (0.0, MIN_HZ / 2, MAX_HZ * 2, -5.0):
            with pytest.raises(ValueError):
                SamplingProfiler(hz=bad)
        SamplingProfiler(hz=MIN_HZ)
        SamplingProfiler(hz=MAX_HZ)

    def test_max_stacks_cap_counts_overflow_as_dropped(self):
        profiler = SamplingProfiler(hz=50.0, max_stacks=2)
        with profiler._lock:  # exercise the cap without real sampling
            for key in ("a.f", "b.g", "c.h", "c.h"):
                if key in profiler._counts:
                    profiler._counts[key] += 1
                elif len(profiler._counts) < profiler.max_stacks:
                    profiler._counts[key] = 1
                else:
                    profiler.dropped += 1
        assert len(profiler.collapsed()) == 2
        assert profiler.dropped == 2

    def test_collapsed_text_is_flamegraph_input(self):
        profiler = SamplingProfiler()
        profiler._counts = {"root.a;mod.b": 3, "root.a": 1}
        lines = profiler.collapsed_text().splitlines()
        assert lines[0] == "root.a;mod.b 3"  # heaviest first
        assert lines[1] == "root.a 1"

    def test_snapshot_shape(self):
        profiler = SamplingProfiler(hz=25.0)
        snap = profiler.snapshot()
        assert set(snap) == {
            "running", "hz", "samples", "distinct_stacks",
            "dropped_stacks", "started_unix", "stopped_unix",
        }
        assert snap["running"] is False and snap["hz"] == 25.0

    def test_fold_is_root_first(self):
        import sys

        def inner():
            return _fold(sys._getframe())

        def outer():
            return inner()

        key = outer()
        frames = key.split(";")
        assert frames[-1].endswith(".inner")
        assert frames[-2].endswith(".outer")


class TestGlobalLifecycle:
    def test_start_is_idempotent_and_keeps_the_running_rate(self):
        first = profile.start(hz=100.0)
        again = profile.start(hz=10.0)  # must not reset the session
        assert first["running"] and again["running"]
        assert again["hz"] == 100.0
        stopped = profile.stop()
        assert stopped["running"] is False
        assert "stacks" in stopped

    def test_stop_without_start_is_safe(self):
        out = profile.stop()
        assert out == {"running": False, "samples": 0, "stacks": {}}

    def test_status_reports_never_started(self):
        assert profile.status() == {"running": False, "samples": 0}

    def test_bundle_section_survives_stop(self):
        assert profile.bundle_section() is None
        profile.start(hz=100.0)
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,))
        worker.start()
        time.sleep(0.25)
        profile.stop()
        stop.set()
        worker.join()
        section = profile.bundle_section()
        assert section is not None
        assert section["running"] is False
        assert section["samples"] > 0
        assert isinstance(section["stacks"], dict)
