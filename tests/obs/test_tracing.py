"""Tracing core: span trees, merge records, the disabled fast path,
and the two acceptance properties the subsystem ships with — traced
answers are byte-identical to untraced ones, and the disabled-path
instrumentation cost stays under 2% of a 10K-item observe.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import Dataset, obs
from repro.core.randomized import GetNextRandomized
from repro.obs import tracing as obs_trace


def _operator(n: int = 400, seed: int = 11) -> GetNextRandomized:
    dataset = Dataset(np.random.default_rng(20180905).uniform(size=(n, 3)))
    return GetNextRandomized(
        dataset, kind="topk_set", k=5, rng=np.random.default_rng(seed)
    )


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        with obs.trace("root") as t:
            with obs.span("outer", n=10) as outer:
                outer.set(extra="yes")
                with obs.span("inner"):
                    pass
        assert [c.name for c in t.root.children] == ["outer"]
        outer = t.root.children[0]
        assert outer.fields == {"n": 10, "extra": "yes"}
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.seconds >= outer.children[0].seconds >= 0.0

    def test_record_merges_same_name_under_one_parent(self):
        with obs.trace("root") as t:
            obs.record("observe.reduce", 0.25, count=3, kernel="numpy")
            obs.record("observe.reduce", 0.75, count=2)
            obs.record("observe.sample", 0.5)
        stages = {s["name"]: s for s in t.stages()}
        assert stages["observe.reduce"]["seconds"] == 1.0
        assert stages["observe.reduce"]["count"] == 5
        assert stages["observe.sample"]["count"] == 1

    def test_stages_flatten_in_first_seen_order(self):
        with obs.trace("root") as t:
            with obs.span("a"):
                obs.record("b", 0.1)
            obs.record("b", 0.1)
        assert [s["name"] for s in t.stages()] == ["a", "b"]
        assert {s["name"]: s["count"] for s in t.stages()}["b"] == 2

    def test_add_stage_grafts_external_timings(self):
        with obs.trace("root") as t:
            time.sleep(0.001)
        t.add_stage("server.lock_wait", 0.002)
        assert any(s["name"] == "server.lock_wait" for s in t.stages())

    def test_stage_report_schema(self):
        with obs.trace("root") as t:
            obs.record("stage", 0.01)
        report = obs.stage_report(t)
        assert set(report) == {"total_seconds", "coverage", "stages"}
        assert report["total_seconds"] > 0
        assert 0.0 <= report["coverage"] <= 1.0
        (stage,) = report["stages"]
        assert set(stage) == {"name", "seconds", "count"}

    def test_explicit_trace_id_is_kept(self):
        with obs.trace("root", trace_id="abc123") as t:
            pass
        assert t.trace_id == "abc123"
        assert t.as_dict()["trace_id"] == "abc123"

    def test_coverage_clamps_to_one(self):
        with obs.trace("root") as t:
            pass
        t.add_stage("overlapping", t.root.seconds * 10 + 1.0)
        assert t.coverage() == 1.0


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_null_singleton(self):
        assert not obs.tracing_enabled()
        assert obs.span("anything", n=1) is obs_trace._NULL_SPAN
        assert obs.span("other") is obs_trace._NULL_SPAN
        with obs.span("noop") as s:
            s.set(ignored=True)  # no-op, no error
        assert obs.current_trace() is None
        obs.record("noop", 1.0)  # swallowed

    def test_enabled_only_inside_context(self):
        assert not obs.tracing_enabled()
        with obs.trace("root") as t:
            assert obs.tracing_enabled()
            assert obs.current_trace() is t
        assert not obs.tracing_enabled()
        assert obs.current_trace() is None

    def test_other_threads_stay_untraced(self):
        """A trace is scoped to the opening thread: concurrent threads
        get the null span even while the trace is globally active."""
        seen: list[object] = []

        def probe() -> None:
            seen.append(obs.span("cross-thread"))
            seen.append(obs.current_trace())

        with obs.trace("root") as t:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen[0] is obs_trace._NULL_SPAN
        assert seen[1] is None
        assert t.root.children == []


class TestAnswersUnchanged:
    def test_traced_observe_is_byte_identical(self):
        untraced = _operator(seed=7)
        traced = _operator(seed=7)
        untraced.observe(1_500)
        with obs.trace("observe"):
            traced.observe(1_500)
        assert traced.total_samples == untraced.total_samples
        assert traced.tally.counts == untraced.tally.counts
        assert traced.tally._first_seen == untraced.tally._first_seen
        assert (
            traced.rng.bit_generator.state
            == untraced.rng.bit_generator.state
        )

    def test_traced_observe_covers_its_wall_clock(self):
        op = _operator(n=2_000, seed=3)
        with obs.trace("observe") as t:
            op.observe(4_000)
        report = obs.stage_report(t)
        assert report["coverage"] >= 0.9, report
        names = {s["name"] for s in report["stages"]}
        assert {"observe.sample", "observe.reduce", "observe.fold"} <= names


def test_disabled_overhead_within_budget():
    """Instrumentation with tracing off must cost <= 2% of a 10K-item
    observe.  Measured structurally: the per-call price of the disabled
    fast path (min over batches, so scheduler noise cannot inflate it)
    times a generous bound on calls per pass, against the pass itself.
    """
    op = _operator(n=10_000, seed=5)
    start = time.perf_counter()
    op.observe(2_048)  # 4 chunks at the default 512 chunk size
    observe_seconds = time.perf_counter() - start

    calls = 10_000
    per_call = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(calls):
            obs.span("observe.pass")
            obs.record("observe.reduce", 0.0)
            obs_trace.tracing_enabled()
        per_call = min(
            per_call, (time.perf_counter() - start) / (3 * calls)
        )
    # The instrumented pass makes ~3 guarded calls per chunk plus a
    # handful of per-pass spans; 100 is an order of magnitude above it.
    overhead = 100 * per_call
    assert overhead <= 0.02 * observe_seconds, (
        f"disabled-path instrumentation {overhead * 1e6:.1f} us vs "
        f"observe {observe_seconds * 1e3:.1f} ms"
    )
