"""Structured event logging: JSON-lines rendering, idempotent
configuration, level gating, and foreign-handler preservation."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import configure_logging, get_logger, log_event
from repro.obs.logs import EVENTS, LOGGER_NAME


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Leave the shared ``repro`` logger the way the suite found it."""
    log = logging.getLogger(LOGGER_NAME)
    saved = (list(log.handlers), log.level, log.propagate)
    yield
    log.handlers[:] = saved[0]
    log.setLevel(saved[1])
    log.propagate = saved[2]


def _configured(json_lines: bool, level: str = "info") -> io.StringIO:
    stream = io.StringIO()
    configure_logging(json_lines=json_lines, level=level, stream=stream)
    return stream


class TestJsonLines:
    def test_event_renders_one_json_object(self):
        stream = _configured(json_lines=True)
        log_event("pool.grow", config="topk_set:k=5", drawn=1000)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["event"] == "pool.grow"
        assert payload["level"] == "info"
        assert payload["logger"] == LOGGER_NAME
        assert payload["config"] == "topk_set:k=5"
        assert payload["drawn"] == 1000
        assert isinstance(payload["ts"], float)

    def test_non_serializable_fields_fall_back_to_str(self):
        stream = _configured(json_lines=True)
        log_event("session.evict", dataset=object())
        payload = json.loads(stream.getvalue())
        assert "object object at" in payload["dataset"]

    def test_text_formatter_emits_key_values(self):
        stream = _configured(json_lines=False)
        log_event("slow_query", op="top_stable", seconds=1.5)
        line = stream.getvalue().strip()
        assert line.startswith("INFO repro slow_query")
        assert "op=top_stable" in line and "seconds=1.5" in line


class TestConfiguration:
    def test_reconfigure_replaces_only_own_handler(self):
        log = logging.getLogger(LOGGER_NAME)
        foreign = logging.NullHandler()
        log.addHandler(foreign)
        configure_logging(level="info")
        configure_logging(json_lines=True, level="debug")
        own = [h for h in log.handlers if getattr(h, "_repro_obs", False)]
        assert len(own) == 1
        assert foreign in log.handlers

    def test_level_gates_events(self):
        stream = _configured(json_lines=True, level="warning")
        log_event("pool.grow", drawn=10)  # INFO: below the gate
        log_event("slow_query", level=logging.WARNING, seconds=9.0)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "slow_query"

    def test_get_logger_children_share_the_configured_root(self):
        stream = _configured(json_lines=True)
        log_event("worker.rescue", logger=get_logger("procpool"), chunk=3)
        payload = json.loads(stream.getvalue())
        assert payload["logger"] == f"{LOGGER_NAME}.procpool"
        assert payload["event"] == "worker.rescue"


def test_event_vocabulary_is_stable():
    """The documented vocabulary (README Observability) — renames must
    update the docs, so lock the names here."""
    assert set(EVENTS) == {
        "pool.grow", "budget.exhausted", "checkpoint.save",
        "session.restore", "session.evict", "server.drain",
        "worker.rescue", "slow_query", "diag.dump",
    }
