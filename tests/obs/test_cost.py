"""Query cost attribution through the session and batch layers, the
extended ``stats()`` surface, ``explain()``, and the trace-coverage
acceptance floor across executors."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, StabilitySession, execute_batch, obs

BUDGET = 1_200
K = 5


@pytest.fixture
def dataset():
    return Dataset(np.random.default_rng(20180905).uniform(size=(250, 3)))


def _session(dataset, **fields):
    return StabilitySession(dataset, seed=7, parallel=False, **fields)


class TestQueryCost:
    def test_cold_query_draws_the_budget(self, dataset):
        with _session(dataset) as session:
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            cost = session.last_query_cost
        assert cost["op"] == "top_stable"
        assert cost["backend"] == "randomized"
        assert cost["cached"] is False
        assert cost["samples_before"] == 0
        assert cost["samples_drawn"] == cost["samples_after"] > 0
        assert cost["pool_reused_fraction"] == 0.0
        assert cost["executor"] == "serial"
        assert cost["chunks"] == 0  # serial passes do not shard
        assert cost["kernel"] in ("numpy", "numba")
        assert cost["sampling"] in ("mc", "qmc")

    def test_warm_repeat_is_a_cache_hit_with_zero_draw(self, dataset):
        with _session(dataset) as session:
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            cost = session.last_query_cost
        assert cost["cached"] is True
        assert cost["samples_drawn"] == 0
        assert cost["pool_reused_fraction"] == 1.0
        assert cost["executor"] == "none"

    def test_exact_backend_reports_minimal_cost(self):
        dataset = Dataset(
            np.random.default_rng(3).uniform(size=(40, 2))
        )
        with _session(dataset) as session:
            session.top_stable(2, kind="full")  # d=2 -> exact sweep
            cost = session.last_query_cost
        assert cost["op"] == "top_stable"
        assert cost["backend"] == "twod_exact"
        assert cost["cached"] is False
        assert "samples_drawn" not in cost

    def test_precision_budget_reports_target_and_ci_width(self, dataset):
        with _session(dataset) as session:
            session.top_stable(2, kind="topk_set", k=K, budget="ci:0.2@2000")
            cost = session.last_query_cost
        assert cost["target"] == "ci:0.2@2000"
        assert 0.0 < cost["ci_width"] <= 1.0

    def test_totals_accumulate_across_queries(self, dataset):
        with _session(dataset) as session:
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            totals = session.stats()["cost"]
        assert totals["queries"] == 2
        assert totals["cache_hits"] == 1
        assert totals["cache_misses"] == 1
        assert totals["samples_drawn"] > 0


class TestBatchCost:
    def test_prefill_is_attributed_to_the_first_request(self, dataset):
        """The planner grows pools *before* answering; the drawn samples
        must land on the first request of that configuration, not vanish
        as pre-existing pool."""
        requests = [
            {"op": "top_stable", "m": 3, "kind": "topk_set", "k": K,
             "backend": "randomized", "budget": BUDGET},
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": K,
             "backend": "randomized", "budget": BUDGET},
        ]
        with _session(dataset) as session:
            outcomes = execute_batch(session, requests)
            assert all(o.ok for o in outcomes)
            first, second = (o.cost for o in outcomes)
            totals = dict(session.stats()["cost"])
        assert first["samples_drawn"] > 0
        assert first["samples_before"] == 0
        assert first["executor"] != "none"
        # The second request rides the shared pool entirely.
        assert second["samples_drawn"] == 0
        assert second["pool_reused_fraction"] == 1.0
        # Conservation: session totals match the per-request records.
        assert totals["samples_drawn"] == first["samples_drawn"]

    def test_batch_outcomes_carry_cost_records(self, dataset):
        requests = [
            {"op": "get_next", "kind": "topk_set", "k": K,
             "backend": "randomized", "budget": BUDGET},
        ]
        with _session(dataset) as session:
            (outcome,) = execute_batch(session, requests)
        assert outcome.ok and outcome.cost["op"] == "get_next"


class TestStatsAndExplain:
    def test_stats_extended_surface(self, dataset):
        with _session(dataset) as session:
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            stats = session.stats()
        assert stats["uptime_seconds"] >= 0.0
        assert stats["executor"] == "serial"
        assert stats["executor_workers"] >= 1
        assert stats["kernel"] in ("auto", "numpy", "numba")
        assert stats["sampling"] == "mc"
        assert stats["cache_session"] == {
            "hits": 1, "misses": 1, "hit_rate": 0.5,
        }
        assert stats["pool_bytes"] > 0
        assert stats["cache_bytes"] > 0
        (pool,) = stats["configs"].values()
        assert pool["pool_bytes"] > 0
        assert pool["total_samples"] == BUDGET

    def test_explain_cold_config_is_a_pure_read(self, dataset):
        query = {"op": "top_stable", "m": 3, "kind": "topk_set", "k": K,
                 "backend": "randomized", "budget": BUDGET}
        with _session(dataset) as session:
            plan = session.explain(query)
            assert plan["materialized"] is False
            assert plan["randomized"] is True
            assert plan["pool_samples"] == 0
            assert plan["warm_read"] is False
            # Explaining must not have built the engine or pool.
            assert session.stats()["configs"] == {}

    def test_explain_warm_config_reports_pool_and_warm_read(self, dataset):
        query = {"op": "top_stable", "m": 3, "kind": "topk_set", "k": K,
                 "backend": "randomized", "budget": BUDGET}
        with _session(dataset) as session:
            session.top_stable(3, kind="topk_set", k=K, budget=BUDGET)
            plan = session.explain(query)
        assert plan["materialized"] is True
        assert plan["pool_samples"] == BUDGET
        assert plan["warm_read"] is True
        assert plan["kernel"] in ("numpy", "numba")


class TestTraceCoverage:
    """Acceptance floor: a traced cold ``top_stable`` accounts for
    >= 90% of its wall-clock, on every executor."""

    def _coverage(self, dataset, **fields) -> dict:
        with StabilitySession(dataset, seed=7, **fields) as session:
            with obs.trace("query") as t:
                session.top_stable(3, kind="topk_set", k=K, budget=6_000)
        return obs.stage_report(t)

    def test_serial(self, dataset):
        report = self._coverage(dataset, parallel=False)
        assert report["coverage"] >= 0.9, report

    def test_thread(self, dataset):
        report = self._coverage(dataset, executor="thread", max_workers=2)
        assert report["coverage"] >= 0.9, report
        names = {s["name"] for s in report["stages"]}
        assert "observe.pass" in names

    @pytest.mark.slow
    def test_process(self, dataset):
        report = self._coverage(dataset, executor="process", max_workers=2)
        assert report["coverage"] >= 0.9, report
