"""Smoke tests: every example script runs and prints its headline output.

The heavyweight case studies are exercised at reduced scale by importing
their helpers; the quickstart runs verbatim as a subprocess.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestQuickstart:
    def test_runs_and_reports(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Stability of the published ranking" in proc.stdout
        assert "11 feasible rankings" in proc.stdout
        assert "acceptable region" in proc.stdout


class TestCaseStudyHelpers:
    def test_csmetrics_text_histogram(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            from csmetrics_case_study import text_histogram
        finally:
            sys.path.pop(0)
        rows = text_histogram([0.5, 0.25, 0.125], bins=3, width=8)
        assert len(rows) == 3
        assert rows[0].count("#") > rows[2].count("#")

    def test_flight_scale_single_point(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            from flight_scoring_scale import run_scale
        finally:
            sys.path.pop(0)
        import numpy as np

        first_s, next_s, stability = run_scale(2_000, np.random.default_rng(0))
        assert first_s > 0 and next_s > 0
        assert 0.0 < stability <= 1.0


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "csmetrics_case_study.py", "fifa_case_study.py",
     "diamonds_topk.py", "flight_scoring_scale.py", "boundary_analysis.py",
     "fair_hiring_region.py", "representatives_comparison.py",
     "ranking_facts_label.py"],
)
def test_examples_compile(script):
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")


def test_fair_hiring_policy_region_feasible():
    sys.path.insert(0, str(EXAMPLES))
    try:
        from fair_hiring_region import policy_region
    finally:
        sys.path.pop(0)
    region = policy_region()
    ref = region.reference_ray()
    assert region.contains(ref)
    # The policy's caps hold at the reference point.
    assert ref[2] <= ref[0] + 1e-9
    assert ref[1] >= 0.5 * ref[0] - 1e-9
