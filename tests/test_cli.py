"""Tests for the CSV command-line interface."""

import numpy as np
import pytest

from repro.cli import load_csv_dataset, main


@pytest.fixture
def csv_2d(tmp_path):
    path = tmp_path / "items.csv"
    path.write_text(
        "name,aptitude,experience\n"
        "t1,0.63,0.71\n"
        "t2,0.83,0.65\n"
        "t3,0.58,0.78\n"
        "t4,0.70,0.68\n"
        "t5,0.53,0.82\n"
    )
    return str(path)


@pytest.fixture
def csv_3d_headerless(tmp_path):
    rng = np.random.default_rng(5)
    path = tmp_path / "plain.csv"
    rows = rng.uniform(size=(20, 3))
    path.write_text("\n".join(",".join(f"{v:.6f}" for v in row) for row in rows))
    return str(path)


class TestLoadCsv:
    def test_header_and_labels(self, csv_2d):
        ds = load_csv_dataset(csv_2d, label_column="name")
        assert ds.n_items == 5
        assert ds.n_attributes == 2
        assert ds.item_labels[1] == "t2"
        assert ds.attribute_names == ("aptitude", "experience")

    def test_values_normalised(self, csv_2d):
        ds = load_csv_dataset(csv_2d, label_column="name")
        assert ds.values.min() == 0.0
        assert ds.values.max() == 1.0

    def test_headerless(self, csv_3d_headerless):
        ds = load_csv_dataset(csv_3d_headerless)
        assert ds.n_items == 20
        assert ds.attribute_names == ("x1", "x2", "x3")

    def test_lower_is_better(self, tmp_path):
        path = tmp_path / "price.csv"
        path.write_text("price,quality\n10,5\n20,9\n")
        ds = load_csv_dataset(path, lower_is_better=("price",))
        assert ds.values[0, 0] == 1.0  # cheapest wins

    def test_unknown_lower_column(self, csv_2d):
        with pytest.raises(ValueError):
            load_csv_dataset(csv_2d, label_column="name", lower_is_better=("bogus",))

    def test_missing_label_column(self, csv_2d):
        with pytest.raises(ValueError):
            load_csv_dataset(csv_2d, label_column="bogus")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv_dataset(path)


class TestCliCommands:
    def test_verify_2d(self, csv_2d, capsys):
        rc = main(
            ["verify", csv_2d, "--label-column", "name", "--weights", "1,1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stability:" in out
        assert "t2" in out

    def test_verify_3d_monte_carlo(self, csv_3d_headerless, capsys):
        rc = main(
            [
                "verify",
                csv_3d_headerless,
                "--weights",
                "1,1,1",
                "--samples",
                "2000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "confidence_error:" in out

    def test_verify_wrong_weight_count(self, csv_2d):
        with pytest.raises(SystemExit):
            main(["verify", csv_2d, "--label-column", "name", "--weights", "1,1,1"])

    def test_enumerate(self, csv_2d, capsys):
        rc = main(["enumerate", csv_2d, "--label-column", "name", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("stability=") == 3
        first = float(out.splitlines()[0].split("stability=")[1].split()[0])
        last = float(out.splitlines()[2].split("stability=")[1].split()[0])
        assert first >= last

    def test_topk_set(self, csv_3d_headerless, capsys):
        rc = main(
            [
                "topk",
                csv_3d_headerless,
                "--k",
                "5",
                "--kind",
                "set",
                "--budget",
                "1000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stability=" in out
        assert "{" in out

    def test_topk_ranked_with_cone(self, csv_3d_headerless, capsys):
        rc = main(
            [
                "topk",
                csv_3d_headerless,
                "--k",
                "3",
                "--kind",
                "ranked",
                "--budget",
                "1000",
                "--cone-theta",
                "0.1",
            ]
        )
        assert rc == 0
        assert "stability=" in capsys.readouterr().out

    def test_profile(self, csv_2d, capsys):
        rc = main(
            [
                "profile",
                csv_2d,
                "--label-column",
                "name",
                "--items",
                "0,1",
                "--samples",
                "500",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "t1" in out and "t2" in out
        assert "ranks [" in out

    def test_requires_subcommand(self, csv_2d):
        with pytest.raises(SystemExit):
            main([])


class TestLabelCommand:
    def test_label_2d(self, csv_2d, capsys):
        assert (
            main(
                [
                    "label",
                    csv_2d,
                    "--label-column",
                    "name",
                    "--weights",
                    "1,1",
                    "--k",
                    "3",
                    "--samples",
                    "1000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "RANKING FACTS" in out
        assert "Reference stability" in out
        assert "t2" in out

    def test_label_3d_with_cone(self, csv_3d_headerless, capsys):
        assert (
            main(
                [
                    "label",
                    csv_3d_headerless,
                    "--weights",
                    "1,1,1",
                    "--cone-theta",
                    "0.1",
                    "--samples",
                    "500",
                ]
            )
            == 0
        )
        assert "bubble" in capsys.readouterr().out


class TestTradeoffCommand:
    def test_tradeoff_2d(self, csv_2d, capsys):
        assert (
            main(
                [
                    "tradeoff",
                    csv_2d,
                    "--label-column",
                    "name",
                    "--weights",
                    "1,1",
                    "--cosines",
                    "0.999,0.99",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert len(lines) == 3  # header + one row per cosine
        assert "best_stab" in lines[0]


class TestServiceCommands:
    def test_batch_command(self, csv_3d_headerless, tmp_path, capsys):
        import json

        requests = [
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 500},
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 500},
            {"op": "get_next", "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 500},
        ]
        reqfile = tmp_path / "requests.json"
        reqfile.write_text(json.dumps(requests))
        assert main(["batch", csv_3d_headerless, "--requests", str(reqfile),
                     "--no-parallel"]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        records, summary = lines[:-1], lines[-1]
        assert [r["ok"] for r in records] == [True, True, True]
        assert records[1]["cached"] is True  # identical repeat hit the cache
        assert summary["requests"] == 3
        assert summary["cache"]["hits"] == 1
        # One amortized pool fill for the single configuration.
        (config,) = summary["configs"].values()
        assert config["total_samples"] == 500

    def test_batch_command_2d_exact(self, csv_2d, tmp_path, capsys):
        import json

        reqfile = tmp_path / "requests.json"
        reqfile.write_text(json.dumps([
            {"op": "top_stable", "m": 2},
            {"op": "stability_of", "kind": "topk_set", "k": 2,
             "ranking": [0, 1]},
        ]))
        code = main(["batch", csv_2d, "--label-column", "name",
                     "--requests", str(reqfile)])
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert code in (0, 1)  # [0,1] may be infeasible for this data
        assert lines[0]["ok"] is True
        assert len(lines[0]["result"]) == 2
        assert lines[0]["result"][0]["confidence_error"] == 0.0

    def test_batch_command_reports_errors(self, csv_2d, tmp_path, capsys):
        import json

        reqfile = tmp_path / "requests.json"
        reqfile.write_text(json.dumps([{"op": "get_next"},
                                       {"op": "teleport"}]))
        assert main(["batch", csv_2d, "--label-column", "name",
                     "--requests", str(reqfile)]) == 1
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["ok"] is True
        assert lines[1]["ok"] is False
        assert "ValueError" in lines[1]["error"]

    def test_serve_command(self, csv_2d, capsys, monkeypatch):
        import io
        import json

        stdin = io.StringIO(
            json.dumps({"op": "top_stable", "m": 2}) + "\n"
            + json.dumps({"op": "stats"}) + "\n"
            + "not json\n"
        )
        monkeypatch.setattr("sys.stdin", stdin)
        assert main(["serve", csv_2d, "--label-column", "name"]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["ok"] is True
        assert len(lines[0]["result"]) == 2
        assert lines[1]["ok"] is True and "cache" in lines[1]["stats"]
        assert lines[2]["ok"] is False


class TestSnapshotCommands:
    @pytest.fixture
    def requests_file(self, tmp_path):
        import json

        path = tmp_path / "requests.json"
        path.write_text(json.dumps([
            {"op": "top_stable", "m": 2, "kind": "topk_set", "k": 3,
             "backend": "randomized", "budget": 400},
            {"op": "top_stable", "m": 1, "kind": "topk_ranked", "k": 3,
             "backend": "randomized", "budget": 400},
        ]))
        return str(path)

    def test_snapshot_then_restore_same_answers(
        self, csv_3d_headerless, requests_file, tmp_path, capsys
    ):
        """Idempotent requests replay identically after a restore.

        This is the command pair the CI cross-version round-trip diffs:
        outcome lines carry no timing and no cache flags, so byte-equal
        stdout == byte-equal answers.
        """
        import json

        snap = str(tmp_path / "pool.snap")
        assert main(["snapshot", csv_3d_headerless, "--out", snap,
                     "--requests", requests_file, "--no-parallel"]) == 0
        before = capsys.readouterr().out
        assert main(["restore", csv_3d_headerless, "--snapshot", snap,
                     "--requests", requests_file, "--no-parallel"]) == 0
        after = capsys.readouterr().out
        assert before == after
        records = [json.loads(l) for l in after.splitlines()]
        assert [r["ok"] for r in records] == [True, True]

    def test_restore_inspect_prints_header(
        self, csv_3d_headerless, tmp_path, capsys
    ):
        import json

        snap = str(tmp_path / "pool.snap")
        assert main(["snapshot", csv_3d_headerless, "--out", snap]) == 0
        capsys.readouterr()
        assert main(["restore", csv_3d_headerless, "--snapshot", snap,
                     "--inspect"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["format_version"] >= 1
        assert header["n_items"] == 20

    def test_restore_refuses_wrong_dataset(self, csv_2d, csv_3d_headerless,
                                           tmp_path, capsys):
        snap = str(tmp_path / "pool.snap")
        assert main(["snapshot", csv_3d_headerless, "--out", snap]) == 0
        with pytest.raises(SystemExit, match="cannot restore"):
            main(["restore", csv_2d, "--label-column", "name",
                  "--snapshot", snap])

    def test_serve_state_dir_checkpoints_and_restores(
        self, csv_3d_headerless, tmp_path, capsys, monkeypatch
    ):
        import io
        import json

        state_dir = tmp_path / "states"
        request = json.dumps({"op": "get_next", "kind": "topk_set", "k": 3,
                              "backend": "randomized", "budget": 400})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(state_dir), "--no-parallel"]) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert first["ok"] is True
        snaps = list(state_dir.glob("*.snap"))
        assert len(snaps) == 1  # checkpointed at end of input
        # Second serve run restores the state: the same get_next request
        # continues the cursor instead of repeating the first answer.
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(state_dir), "--no-parallel"]) == 0
        second = json.loads(capsys.readouterr().out.splitlines()[0])
        assert second["ok"] is True
        assert second["result"]["ranking"] != first["result"]["ranking"]

    def test_serve_checkpoint_op(self, csv_3d_headerless, tmp_path, capsys,
                                 monkeypatch):
        import io
        import json

        state_dir = tmp_path / "states"
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"op": "checkpoint"}) + "\n")
        )
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(state_dir)]) == 0
        response = json.loads(capsys.readouterr().out.splitlines()[0])
        assert response["ok"] is True
        assert response["checkpoint"]["path"].endswith(".snap")

    def test_serve_survives_failed_auto_checkpoint(
        self, csv_3d_headerless, tmp_path, capsys, monkeypatch
    ):
        """A full disk costs durability, never availability."""
        import io
        import json

        from repro import StabilitySession

        def broken_save(self, path):
            raise OSError("disk full")

        monkeypatch.setattr(StabilitySession, "save", broken_save)
        request = json.dumps({"op": "top_stable", "m": 1, "kind": "topk_set",
                              "k": 3, "backend": "randomized", "budget": 300})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(tmp_path / "states"), "--checkpoint-every", "1",
                     "--no-parallel"]) == 0
        captured = capsys.readouterr()
        response = json.loads(captured.out.splitlines()[0])
        assert response["ok"] is True  # the request itself still answered
        assert "checkpoint" in captured.err and "disk full" in captured.err

    def test_serve_starts_cold_when_snapshot_untrusted(
        self, csv_3d_headerless, tmp_path, capsys, monkeypatch
    ):
        """The state dir is a warm-start cache — never a startup gate."""
        import io
        import json

        state_dir = tmp_path / "states"
        request = json.dumps({"op": "top_stable", "m": 1, "kind": "topk_set",
                              "k": 3, "backend": "randomized", "budget": 300})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(state_dir), "--no-parallel"]) == 0
        capsys.readouterr()
        (snap,) = state_dir.glob("*.snap")
        snap.write_bytes(b"garbage" + snap.read_bytes())
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(state_dir), "--no-parallel"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out.splitlines()[0])["ok"] is True
        assert "starting cold" in captured.err
        # The cold run's final checkpoint replaced the garbage snapshot.
        from repro.service.persist import read_snapshot_header

        assert read_snapshot_header(snap)["format_version"] >= 1

    def test_serve_state_files_are_region_qualified(
        self, csv_3d_headerless, tmp_path, capsys, monkeypatch
    ):
        import io
        import json

        state_dir = tmp_path / "states"
        request = json.dumps({"op": "top_stable", "m": 1, "kind": "topk_set",
                              "k": 3, "backend": "randomized", "budget": 300})
        for extra in ([], ["--cone-theta", "0.4"]):
            monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
            assert main(["serve", csv_3d_headerless, "--state-dir",
                         str(state_dir), "--no-parallel", *extra]) == 0
        capsys.readouterr()
        assert len(list(state_dir.glob("*.snap"))) == 2

    def test_snapshot_exit_code_reflects_failed_warmup(
        self, csv_3d_headerless, tmp_path, capsys
    ):
        import json

        reqfile = tmp_path / "bad.json"
        reqfile.write_text(json.dumps([{"op": "teleport"}]))
        snap = str(tmp_path / "pool.snap")
        assert main(["snapshot", csv_3d_headerless, "--out", snap,
                     "--requests", str(reqfile)]) == 1
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["ok"] is False

    def test_snapshot_to_unwritable_path_exits_cleanly(
        self, csv_3d_headerless, tmp_path
    ):
        with pytest.raises(SystemExit, match="cannot snapshot"):
            main(["snapshot", csv_3d_headerless, "--out",
                  str(tmp_path / "no" / "dir" / "p.snap")])

    def test_restore_inspect_bad_file_exits_cleanly(self, csv_3d_headerless,
                                                    tmp_path):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"junk")
        with pytest.raises(SystemExit, match="cannot inspect"):
            main(["restore", csv_3d_headerless, "--snapshot", str(bad),
                  "--inspect"])

    def test_inspect_works_without_a_readable_dataset(self, csv_3d_headerless,
                                                      tmp_path, capsys):
        """An orphaned snapshot is inspectable; the CSV is never loaded."""
        import json

        snap = str(tmp_path / "pool.snap")
        assert main(["snapshot", csv_3d_headerless, "--out", snap]) == 0
        capsys.readouterr()
        assert main(["restore", str(tmp_path / "missing.csv"),
                     "--snapshot", snap, "--inspect"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header["format_version"] >= 1


class TestServeProtocolHardening:
    """The stdio loop speaks the shared protocol: structured errors,
    one response per line, and no input can kill it mid-stream."""

    def _serve(self, csv_path, lines, capsys, monkeypatch, extra_args=()):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO("".join(
            line + "\n" for line in lines
        )))
        code = main(["serve", csv_path, "--label-column", "name",
                     *extra_args])
        return code, [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]

    def test_malformed_json_is_structured_and_survivable(
        self, csv_2d, capsys, monkeypatch
    ):
        import json

        code, responses = self._serve(
            csv_2d,
            ["}{ garbage", json.dumps({"op": "ping"})],
            capsys,
            monkeypatch,
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "bad_json"
        assert responses[1] == {"pong": True, "ok": True}

    def test_unknown_op_is_structured_and_survivable(
        self, csv_2d, capsys, monkeypatch
    ):
        import json

        code, responses = self._serve(
            csv_2d,
            [json.dumps({"op": "teleport"}),
             json.dumps({"op": "top_stable", "m": 1})],
            capsys,
            monkeypatch,
        )
        assert code == 0
        assert responses[0]["error"]["code"] == "unknown_op"
        assert responses[1]["ok"] is True

    def test_oversized_line_is_structured_and_survivable(
        self, csv_2d, capsys, monkeypatch
    ):
        import json

        from repro.server.protocol import MAX_LINE_BYTES

        huge = json.dumps({"op": "ping", "pad": "x" * (MAX_LINE_BYTES + 10)})
        code, responses = self._serve(
            csv_2d, [huge, json.dumps({"op": "ping"})], capsys, monkeypatch
        )
        assert code == 0
        assert responses[0]["error"]["code"] == "line_too_long"
        assert responses[1]["pong"] is True

    def test_bad_request_fields_are_structured(
        self, csv_2d, capsys, monkeypatch
    ):
        import json

        code, responses = self._serve(
            csv_2d,
            [json.dumps({"op": "top_stable", "m": 1, "teleport": True})],
            capsys,
            monkeypatch,
        )
        assert code == 0
        assert responses[0]["error"]["code"] == "bad_request"
        assert "teleport" in responses[0]["error"]["message"]

    def test_hello_and_ping_on_stdio(self, csv_2d, capsys, monkeypatch):
        import json

        code, responses = self._serve(
            csv_2d,
            [json.dumps({"op": "hello"}), json.dumps({"op": "ping"})],
            capsys,
            monkeypatch,
        )
        assert code == 0
        assert responses[0]["transport"] == "stdio"
        assert responses[0]["protocol"] >= 1
        assert responses[1]["pong"] is True

    def test_shutdown_op_ends_the_loop_and_checkpoints(
        self, csv_3d_headerless, tmp_path, capsys, monkeypatch
    ):
        import io
        import json

        state_dir = tmp_path / "states"
        lines = [
            json.dumps({"op": "top_stable", "m": 1, "kind": "topk_set",
                        "k": 3, "backend": "randomized", "budget": 300}),
            json.dumps({"op": "shutdown"}),
            json.dumps({"op": "ping"}),  # never reached
        ]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        assert main(["serve", csv_3d_headerless, "--state-dir",
                     str(state_dir), "--no-parallel"]) == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert len(responses) == 2  # the post-shutdown line went unread
        assert responses[1]["shutting_down"] is True
        assert len(list(state_dir.glob("*.snap"))) == 1

    def test_request_ids_are_echoed_on_stdio(self, csv_2d, capsys, monkeypatch):
        import json

        code, responses = self._serve(
            csv_2d,
            [json.dumps({"op": "top_stable", "m": 1, "id": 41})],
            capsys,
            monkeypatch,
        )
        assert code == 0
        assert responses[0]["id"] == 41 and responses[0]["ok"] is True


class TestServeTcpCli:
    def test_tcp_serve_end_to_end(self, csv_3d_headerless, tmp_path):
        """The production path: subprocess server, client, drain, warmth."""
        import json
        import os
        import signal
        import subprocess
        import sys

        from repro.server import ServeClient

        state_dir = tmp_path / "states"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", csv_3d_headerless,
             "--tcp", "127.0.0.1:0", "--state-dir", str(state_dir),
             "--no-parallel"],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = json.loads(proc.stderr.readline())
            with ServeClient(banner["serving"]) as client:
                assert client.hello()["durable"] is True
                response = client.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=300
                )
                assert response["ok"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        snaps = list(state_dir.glob("*.snap"))
        assert len(snaps) == 1
        # The drained snapshot restores: rolling restarts start warm.
        proc2 = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", csv_3d_headerless,
             "--tcp", "127.0.0.1:0", "--state-dir", str(state_dir),
             "--no-parallel"],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = json.loads(proc2.stderr.readline())
            with ServeClient(banner["serving"]) as client:
                warm = client.top_stable(
                    1, kind="topk_set", k=3, backend="randomized", budget=300
                )
                assert warm["ok"] is True and warm["cached"] is True
                assert warm["result"] == response["result"]
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=60) == 0
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait(timeout=30)
