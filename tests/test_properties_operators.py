"""Property-based tests for the operator substrates (skyline, top-k)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.operators.skyline import skyline
from repro.operators.topk import top_k_indices, top_k_threshold

VALUES = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 25), st.integers(2, 4)),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
)

SCORES = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(-100, 100, allow_nan=False, width=64),
)


class TestSkylineProperties:
    @given(values=VALUES)
    @settings(max_examples=100, deadline=None)
    def test_members_not_dominated(self, values):
        sky = skyline(values)
        for i in sky:
            others = np.delete(values, i, axis=0)
            dominated = np.any(
                np.all(others >= values[i], axis=1)
                & np.any(others > values[i], axis=1)
            )
            assert not dominated

    @given(values=VALUES)
    @settings(max_examples=100, deadline=None)
    def test_non_members_dominated(self, values):
        sky = set(skyline(values).tolist())
        for i in range(values.shape[0]):
            if i in sky:
                continue
            geq = np.all(values >= values[i], axis=1)
            gt = np.any(values > values[i], axis=1)
            geq[i] = False
            assert np.any(geq & gt)

    @given(values=VALUES)
    @settings(max_examples=60, deadline=None)
    def test_union_bound(self, values):
        # skyline(A ∪ B) ⊆ skyline(A) ∪ skyline(B) under index mapping.
        mid = values.shape[0] // 2
        if mid == 0:
            return
        sky_union = set(skyline(values).tolist())
        sky_a = set(skyline(values[:mid]).tolist())
        sky_b = {i + mid for i in skyline(values[mid:]).tolist()}
        assert sky_union <= (sky_a | sky_b)

    @given(values=VALUES)
    @settings(max_examples=60, deadline=None)
    def test_max_sum_item_always_in_skyline(self, values):
        best = int(np.argmax(values.sum(axis=1)))
        sky = set(skyline(values).tolist())
        # The max-sum item can only be dominated by an item with a larger
        # sum, so some item with the same attribute vector is in the
        # skyline; with distinct rows it is the item itself.
        if not any(
            np.array_equal(values[j], values[best]) for j in sky if j != best
        ):
            assert best in sky


class TestTopKProperties:
    @given(scores=SCORES, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_stable_sort(self, scores, data):
        k = data.draw(st.integers(1, scores.shape[0]))
        expected = np.argsort(-scores, kind="stable")[:k]
        assert np.array_equal(top_k_indices(scores, k), expected)

    @given(scores=SCORES, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_threshold_separates(self, scores, data):
        k = data.draw(st.integers(1, scores.shape[0]))
        chosen = top_k_indices(scores, k)
        thresh = top_k_threshold(scores, k)
        rest = np.setdiff1d(np.arange(scores.shape[0]), chosen)
        assert np.all(scores[chosen] >= thresh)
        if rest.size:
            assert np.all(scores[rest] <= thresh)

    @given(scores=SCORES)
    @settings(max_examples=60, deadline=None)
    def test_nested_prefixes(self, scores):
        n = scores.shape[0]
        previous: list[int] = []
        for k in range(1, n + 1):
            current = top_k_indices(scores, k).tolist()
            assert current[: len(previous)] == previous
            previous = current
