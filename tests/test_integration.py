"""Cross-engine integration tests.

The three engines (exact 2D, MD arrangement, randomized Monte-Carlo)
answer the same questions by different means; on shared inputs they must
agree.  These tests also run the full consumer/producer workflows of
section 2.2 end to end.
"""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    GetNext2D,
    GetNextMD,
    GetNextRandomized,
    ScoringFunction,
    rank_items,
    ray_sweep,
    top_h_stable_rankings,
    verify_stability_2d,
    verify_stability_md,
)
from repro.datasets import bluenile_dataset, csmetrics_dataset
from repro.errors import ExhaustedError


class TestThreeEnginesAgree2D:
    """On a 2D dataset every engine sees the same stability landscape."""

    @pytest.fixture
    def ds(self, rng_factory):
        return Dataset(rng_factory(100).uniform(size=(9, 2)))

    def test_exact_vs_md_vs_randomized_top3(self, ds, rng_factory):
        exact = [r for r in GetNext2D(ds)][:3]
        md = GetNextMD(ds, n_samples=80_000, rng=rng_factory(101))
        md_top = [md.get_next() for _ in range(3)]
        rand = GetNextRandomized(ds, rng=rng_factory(102))
        rand_top = [rand.get_next(budget=20_000) for _ in range(3)]
        assert [r.ranking for r in exact] == [r.ranking for r in md_top]
        assert [r.ranking for r in exact] == [r.ranking for r in rand_top]
        for e, m, r in zip(exact, md_top, rand_top):
            assert abs(e.stability - m.stability) < 0.02
            assert abs(e.stability - r.stability) < 0.02

    def test_verification_engines_agree(self, ds, rng_factory):
        r = ScoringFunction(np.array([0.4, 0.6])).rank(ds)
        exact = verify_stability_2d(ds, r).stability
        estimate = verify_stability_md(
            ds, r, n_samples=100_000, rng=rng_factory(103)
        ).stability
        assert abs(exact - estimate) < 0.01

    def test_sweep_total_equals_randomized_coverage(self, ds, rng_factory):
        # Drain the randomized engine long enough and the discovered
        # stabilities must cover most of the probability mass.
        gn = GetNextRandomized(ds, rng=rng_factory(104))
        total = 0.0
        try:
            for _ in range(60):
                total += gn.get_next(budget=2000).stability
        except ExhaustedError:
            pass
        assert total > 0.95


class TestConsumerWorkflow:
    """Problem 1: a consumer validates a published ranking."""

    def test_csmetrics_consumer_story(self):
        # Example 1, quantitatively: the reference ranking's stability is
        # low and far below the most stable alternative.
        ds = csmetrics_dataset(100)
        from repro.datasets.csmetrics import csmetrics_reference_function

        reference = csmetrics_reference_function()
        published = reference.rank(ds)
        verdict = verify_stability_2d(ds, published)
        most_stable = GetNext2D(ds).get_next()
        assert verdict.stability < most_stable.stability
        assert 0.0 <= verdict.stability < 0.1

    def test_consumer_can_check_region_membership(self):
        ds = csmetrics_dataset(50)
        from repro.datasets.csmetrics import csmetrics_reference_function

        f = csmetrics_reference_function()
        verdict = verify_stability_2d(ds, f.rank(ds))
        angle = math.atan2(f.weights[1], f.weights[0])
        assert verdict.region.contains_angle(angle)


class TestProducerWorkflow:
    """Problems 2-3: a producer explores stable rankings near a reference."""

    def test_producer_explores_cone(self, rng_factory):
        ds = csmetrics_dataset(100)
        from repro.datasets.csmetrics import csmetrics_reference_function

        f = csmetrics_reference_function()
        cone = Cone.from_cosine(f.weights, 0.998)
        results = list(GetNext2D(ds, region=cone))
        # Section 6.2 reports 22 feasible rankings in this cone for the
        # real data; the stand-in should be within the same decade.
        assert 3 <= len(results) <= 120
        assert math.isclose(sum(r.stability for r in results), 1.0, rel_tol=1e-9)
        # The best in-cone ranking is at least as stable as the published
        # one within the cone.
        published = verify_stability_2d(ds, f.rank(ds), region=cone)
        assert results[0].stability >= published.stability - 1e-12

    def test_producer_batch_api(self, rng_factory):
        ds = Dataset(rng_factory(105).uniform(size=(12, 2)))
        top = top_h_stable_rankings(ds, 4)
        assert len(top) == 4
        stabilities = [r.stability for r in top]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_producer_md_cone_workflow(self, rng_factory):
        ds = Dataset(rng_factory(106).uniform(size=(25, 3)))
        ref = ScoringFunction.equal_weights(3)
        cone = Cone(ref.weights, math.pi / 50)
        gn = GetNextMD(ds, region=cone, n_samples=30_000, rng=rng_factory(107))
        results = [gn.get_next() for _ in range(5)]
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)
        assert sum(stabilities) <= 1.0 + 1e-9
        # Every returned ranking is realised by some function in the cone.
        for res in results:
            probes = cone.sample(200, rng_factory(108))
            hits = [p for p in probes if rank_items(ds.values, p) == res.ranking]
            if res.stability > 0.05:
                assert hits, "stable ranking should be realised by cone samples"


class TestTopKWorkflow:
    def test_topk_on_bluenile_subsample(self, rng_factory):
        ds = bluenile_dataset(2000, rng_factory(109)).project(range(3))
        cone = Cone(np.ones(3), math.pi / 50)
        gn = GetNextRandomized(
            ds, region=cone, kind="topk_set", k=10, rng=rng_factory(110)
        )
        first = gn.get_next(budget=3000)
        assert len(first.top_k_set) == 10
        assert first.stability > 0.0
        second = gn.get_next(budget=1000)
        assert second.top_k_set != first.top_k_set

    def test_ranked_topk_refines_set(self, rng_factory):
        # The most stable ranked top-k's member set: its set-stability is
        # >= its ranked stability.
        ds = bluenile_dataset(500, rng_factory(111)).project(range(3))
        ranked_engine = GetNextRandomized(
            ds, kind="topk_ranked", k=5, rng=rng_factory(112)
        )
        ranked = ranked_engine.get_next(budget=8000)
        set_engine = GetNextRandomized(
            ds, kind="topk_set", k=5, rng=rng_factory(112)
        )
        as_set = set_engine.get_next(budget=8000)
        assert as_set.stability >= ranked.stability - 0.02


class TestNonLinearScoring:
    def test_quadratic_term_via_derived_attribute(self, rng_factory):
        # Section 2.1.1: f = x1 + x2 + 0.5 x1^2 handled by adding x3 = x1^2.
        rng = rng_factory(113)
        base = Dataset(rng.uniform(size=(8, 2)))
        extended = base.with_derived_attribute(lambda v: v[:, 0] ** 2)
        w = np.array([1.0, 1.0, 0.5])
        ranking = rank_items(extended.values, w)
        scores = (
            base.values[:, 0] + base.values[:, 1] + 0.5 * base.values[:, 0] ** 2
        )
        expected = np.argsort(-scores, kind="stable")
        assert list(ranking.order) == expected.tolist()
        # Stability of the non-linear ranking via the MD machinery.
        res = verify_stability_md(
            extended, ranking, n_samples=20_000, rng=rng_factory(114)
        )
        assert res.stability > 0.0
