"""Unit tests for the randomized GET-NEXT operator (Algorithms 7-8)."""

import math

import numpy as np
import pytest

from repro import Cone, Dataset, GetNextRandomized, ScoringFunction
from repro.errors import BudgetExceededError, ExhaustedError


@pytest.fixture
def small_3d(rng_factory):
    return Dataset(rng_factory(21).uniform(size=(12, 3)))


class TestFixedBudget:
    def test_returns_most_frequent_first(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(1))
        first = gn.get_next(budget=4000)
        second = gn.get_next(budget=1000)
        assert first.stability >= second.stability - 0.02
        assert first.ranking != second.ranking

    def test_sample_accounting(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(2))
        gn.get_next(budget=500)
        assert gn.total_samples == 500
        gn.get_next(budget=300)
        assert gn.total_samples == 800

    def test_stability_uses_cumulative_counts(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(3))
        res = gn.get_next(budget=1000)
        assert math.isclose(res.stability, res.sample_count / 1000)

    def test_exhausted_when_no_new_ranking(self, rng_factory):
        # Two items, one dominates: only one feasible ranking.
        ds = Dataset(np.array([[0.9, 0.9], [0.1, 0.1]]))
        gn = GetNextRandomized(ds, rng=rng_factory(4))
        first = gn.get_next(budget=100)
        assert first.stability == 1.0
        with pytest.raises(ExhaustedError):
            gn.get_next(budget=100)

    def test_confidence_error_reported(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(5))
        res = gn.get_next(budget=2000)
        assert 0.0 < res.confidence_error < 0.1

    def test_rejects_bad_budget(self, small_3d, rng):
        gn = GetNextRandomized(small_3d, rng=rng)
        with pytest.raises(ValueError):
            gn.get_next(budget=0)

    def test_requires_exactly_one_mode(self, small_3d, rng):
        gn = GetNextRandomized(small_3d, rng=rng)
        with pytest.raises(ValueError):
            gn.get_next()
        with pytest.raises(ValueError):
            gn.get_next(budget=10, error=0.1)


class TestFixedConfidence:
    def test_achieves_requested_error(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(6))
        res = gn.get_next(error=0.02)
        assert res.confidence_error <= 0.02

    def test_tighter_error_needs_more_samples(self, small_3d, rng_factory):
        loose = GetNextRandomized(small_3d, rng=rng_factory(7))
        loose.get_next(error=0.05)
        tight = GetNextRandomized(small_3d, rng=rng_factory(7))
        tight.get_next(error=0.01)
        assert tight.total_samples > loose.total_samples

    def test_budget_cap_raises(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(8))
        with pytest.raises(BudgetExceededError):
            gn.get_next(error=1e-9, max_samples=2000)

    def test_rejects_nonpositive_error(self, small_3d, rng):
        gn = GetNextRandomized(small_3d, rng=rng)
        with pytest.raises(ValueError):
            gn.get_next(error=0.0)


class TestAgreementWithExact:
    def test_2d_top_ranking_matches_exact(self, rng_factory):
        from repro import GetNext2D

        ds = Dataset(rng_factory(9).uniform(size=(8, 2)))
        exact = GetNext2D(ds).get_next()
        rand = GetNextRandomized(ds, rng=rng_factory(10))
        res = rand.get_next(budget=8000)
        assert res.ranking == exact.ranking
        assert abs(res.stability - exact.stability) < 0.03

    def test_stability_estimates_consistent(self, rng_factory):
        from repro import ray_sweep, rank_items

        ds = Dataset(rng_factory(11).uniform(size=(8, 2)))
        exact = {}
        for s, region in ray_sweep(ds):
            r = rank_items(ds.values, region.midpoint_weights())
            exact[r] = s
        gn = GetNextRandomized(ds, rng=rng_factory(12))
        for _ in range(3):
            res = gn.get_next(budget=5000)
            assert res.ranking in exact
            assert abs(res.stability - exact[res.ranking]) < 0.03


class TestTopK:
    def test_topk_ranked_keys(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, kind="topk_ranked", k=4, rng=rng_factory(13))
        res = gn.get_next(budget=2000)
        assert len(res.ranking) == 4
        assert res.top_k_set is None

    def test_topk_set_keys(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, kind="topk_set", k=4, rng=rng_factory(14))
        res = gn.get_next(budget=2000)
        assert res.top_k_set is not None
        assert len(res.top_k_set) == 4

    def test_set_stability_geq_ranked(self, small_3d, rng_factory):
        # Section 6.3 / Figure 17: sets aggregate over orderings, so the
        # most stable set is at least as stable as the most stable ranked
        # prefix (up to Monte-Carlo noise).
        ranked = GetNextRandomized(
            small_3d, kind="topk_ranked", k=4, rng=rng_factory(15)
        ).get_next(budget=6000)
        as_set = GetNextRandomized(
            small_3d, kind="topk_set", k=4, rng=rng_factory(16)
        ).get_next(budget=6000)
        assert as_set.stability >= ranked.stability - 0.02

    def test_topk_requires_k(self, small_3d, rng):
        with pytest.raises(ValueError):
            GetNextRandomized(small_3d, kind="topk_set", rng=rng)
        with pytest.raises(ValueError):
            GetNextRandomized(small_3d, kind="topk_set", k=0, rng=rng)
        with pytest.raises(ValueError):
            GetNextRandomized(small_3d, kind="topk_set", k=13, rng=rng)

    def test_unknown_kind(self, small_3d, rng):
        with pytest.raises(ValueError):
            GetNextRandomized(small_3d, kind="bogus", rng=rng)

    def test_topk_set_most_stable_dominance_case(self, rng_factory):
        # When k items dominate the rest, the top-k set is unique and its
        # stability is 1.
        values = np.vstack(
            [
                np.full((3, 3), 0.9) + rng_factory(17).normal(0, 0.01, (3, 3)),
                np.full((5, 3), 0.1) * rng_factory(18).uniform(0.5, 1.0, (5, 3)),
            ]
        )
        ds = Dataset(np.clip(values, 0, 1))
        gn = GetNextRandomized(ds, kind="topk_set", k=3, rng=rng_factory(19))
        res = gn.get_next(budget=1000)
        assert res.top_k_set == frozenset({0, 1, 2})
        assert res.stability == 1.0


class TestRegionRestriction:
    def test_cone_region_changes_distribution(self, small_3d, rng_factory):
        # In a (very) narrow cone around a reference function, that
        # function's ranking is the most stable.  The cone must be tight:
        # at pi/200 an ordering exchange already crosses it for this data
        # and a neighbouring ranking wins.
        ref = ScoringFunction.equal_weights(3)
        expected = ref.rank(small_3d)
        cone = Cone(ref.weights, math.pi / 2000)
        gn = GetNextRandomized(small_3d, region=cone, rng=rng_factory(20))
        res = gn.get_next(budget=2000)
        assert res.ranking == expected

    def test_top_h_schedule(self, small_3d, rng_factory):
        gn = GetNextRandomized(small_3d, rng=rng_factory(21))
        results = gn.top_h(5, budget_first=5000, budget_rest=1000)
        assert 1 <= len(results) <= 5
        assert gn.total_samples == 5000 + 1000 * (len(results) - 1)
