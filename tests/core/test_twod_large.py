"""Scaling-behaviour tests for the 2D machinery on moderately large data.

Not benchmarks — correctness checks at sizes where the vectorized sweep
and the lazy GetNext2D pop-order representation are actually exercised
(hundreds of thousands of regions).
"""

import numpy as np
import pytest

from repro import GetNext2D, ScoringFunction, verify_stability_2d
from repro.datasets import bluenile_dataset

pytestmark = pytest.mark.slow  # n = 2000 sweeps: the heaviest tier-1 file


@pytest.fixture(scope="module")
def catalog():
    return bluenile_dataset(2_000).project([0, 1])


class TestLargeGetNext2D:
    def test_top_results_verified_exactly(self, catalog):
        engine = GetNext2D(catalog)
        for _ in range(5):
            result = engine.get_next()
            verified = verify_stability_2d(catalog, result.ranking)
            assert abs(verified.stability - result.stability) < 1e-9

    def test_pop_order_strictly_decreasing(self, catalog):
        engine = GetNext2D(catalog)
        previous = None
        for _ in range(50):
            result = engine.get_next()
            if previous is not None:
                assert result.stability <= previous + 1e-15
            previous = result.stability

    def test_region_count_scaling(self):
        # Non-dominating pair count grows ~quadratically for the
        # anti-correlated 2-d projection; region count tracks it.
        small = GetNext2D(bluenile_dataset(200).project([0, 1]))
        small.get_next()
        large = GetNext2D(bluenile_dataset(800).project([0, 1]))
        large.get_next()
        n_small = small._pop_order.shape[0]
        n_large = large._pop_order.shape[0]
        assert n_large > 8 * n_small

    def test_default_ranking_stability_tiny(self, catalog):
        ranking = ScoringFunction.equal_weights(2).rank(catalog)
        result = verify_stability_2d(catalog, ranking)
        # Figure 10's collapse: at n=2000 the default ranking holds on a
        # sliver of the quadrant.
        assert result.stability < 1e-3

    def test_stabilities_sum_to_one_sampled(self, catalog):
        # Summing all ~2M region widths must give exactly the interval.
        engine = GetNext2D(catalog)
        engine.get_next()
        edges = engine._edges
        assert np.isclose(edges[0], 0.0)
        assert np.isclose(edges[-1], np.pi / 2)
        widths = np.diff(edges)
        assert np.all(widths > 0)
        assert np.isclose(widths.sum(), np.pi / 2)
