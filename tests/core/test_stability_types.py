"""Unit tests for the result dataclasses in repro.core.stability."""

import math

import numpy as np
import pytest

from repro.core.ranking import Ranking
from repro.core.stability import AngularRegion, RankedRegion, StabilityResult
from repro.geometry.halfspace import ConvexCone


class TestAngularRegion:
    def test_width(self):
        region = AngularRegion(0.2, 0.5)
        assert math.isclose(region.width, 0.3)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            AngularRegion(0.5, 0.2)

    def test_zero_width_allowed(self):
        assert AngularRegion(0.3, 0.3).width == 0.0

    def test_midpoint_weights_unit_norm(self):
        w = AngularRegion(0.1, 0.6).midpoint_weights()
        assert math.isclose(float(np.linalg.norm(w)), 1.0)
        assert math.isclose(math.atan2(w[1], w[0]), 0.35)

    def test_contains_angle(self):
        region = AngularRegion(0.2, 0.5)
        assert region.contains_angle(0.2)
        assert region.contains_angle(0.35)
        assert not region.contains_angle(0.51)

    def test_frozen(self):
        region = AngularRegion(0.1, 0.2)
        with pytest.raises(AttributeError):
            region.lo = 0.0


class TestStabilityResult:
    def test_basic(self):
        result = StabilityResult(ranking=Ranking([0, 1]), stability=0.4)
        assert result.stability == 0.4
        assert result.region is None
        assert result.confidence_error == 0.0

    def test_rejects_out_of_range_stability(self):
        with pytest.raises(ValueError):
            StabilityResult(ranking=Ranking([0, 1]), stability=1.5)
        with pytest.raises(ValueError):
            StabilityResult(ranking=Ranking([0, 1]), stability=-0.2)

    def test_representative_weights_from_angular_region(self):
        result = StabilityResult(
            ranking=Ranking([0, 1]),
            stability=0.5,
            region=AngularRegion(0.0, math.pi / 2),
        )
        w = result.representative_weights
        assert np.allclose(w, [math.cos(math.pi / 4), math.sin(math.pi / 4)])

    def test_representative_weights_none_for_cone(self):
        result = StabilityResult(
            ranking=Ranking([0, 1]), stability=0.5, region=ConvexCone(dim=3)
        )
        assert result.representative_weights is None

    def test_top_k_set_carried(self):
        result = StabilityResult(
            ranking=Ranking([0, 1], n_items=5),
            stability=0.3,
            top_k_set=frozenset({0, 1}),
        )
        assert result.top_k_set == frozenset({0, 1})


class TestRankedRegion:
    def test_payload_defaults_independent(self):
        a = RankedRegion(0.5, AngularRegion(0, 1))
        b = RankedRegion(0.4, AngularRegion(0, 1))
        a.payload["x"] = 1
        assert b.payload == {}
