"""Tests for the ranking nutritional label (reference [5])."""

import numpy as np
import pytest

from repro import Cone, Dataset
from repro.core.label import RankingLabel, build_label
from repro.errors import InvalidWeightsError


@pytest.fixture
def label(paper_dataset, rng) -> RankingLabel:
    return build_label(
        paper_dataset,
        np.array([1.0, 1.0]),
        n_samples=2_000,
        k=3,
        head=3,
        rng=rng,
    )


class TestBuildLabel:
    def test_reference_ranking_matches_weights(self, paper_dataset, label):
        # f = x1 + x2 ranks the paper example as t2, t4, t3, t5, t1.
        assert list(label.reference_ranking.order) == [1, 3, 2, 4, 0]

    def test_reference_stability_is_exact_2d(self, paper_dataset, label):
        from repro import verify_stability_2d

        exact = verify_stability_2d(paper_dataset, label.reference_ranking)
        assert label.reference_stability == pytest.approx(exact.stability)

    def test_percentile_in_unit_interval(self, label):
        assert 0.0 <= label.reference_percentile <= 1.0

    def test_alternatives_sorted_by_stability(self, label):
        stabilities = [a.stability for a in label.alternatives]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_alternative_stabilities_sum_at_most_one(self, label):
        assert sum(a.stability for a in label.alternatives) <= 1.0 + 1e-9

    def test_displacements_align_with_alternatives(self, label):
        assert len(label.alternative_displacements) == len(label.alternatives)
        for alt, moved in zip(label.alternatives, label.alternative_displacements):
            expected = label.reference_ranking.kendall_tau_distance(alt.ranking)
            assert moved == expected

    def test_item_profiles_cover_reference_head(self, label):
        profiled = [p.item for p in label.item_profiles]
        assert profiled == list(label.reference_ranking.order[:3])

    def test_bubble_probabilities_in_open_band(self, label):
        for _, prob in label.bubble_items:
            assert 0.05 < prob < 0.95

    def test_distinct_rankings_match_paper_example(self, paper_dataset, rng):
        # The example admits 11 feasible rankings; with 2k samples the
        # label should observe most of the stable ones (at least 5).
        lbl = build_label(
            paper_dataset, np.array([1.0, 1.0]), n_samples=2_000, rng=rng
        )
        assert 5 <= lbl.n_distinct_rankings <= 11

    def test_md_dataset(self, rng):
        values = rng.random((20, 3))
        lbl = build_label(
            Dataset(values), np.ones(3), n_samples=1_000, k=5, head=4, rng=rng
        )
        assert lbl.k == 5
        assert len(lbl.item_profiles) == 4
        assert 0.0 <= lbl.reference_stability <= 1.0

    def test_cone_region(self, paper_dataset, rng):
        cone = Cone(np.array([1.0, 1.0]), 0.1)
        lbl = build_label(
            paper_dataset, np.array([1.0, 1.0]), region=cone,
            n_samples=1_000, rng=rng,
        )
        # Inside a narrow cone the reference ranking dominates.
        assert lbl.reference_stability > 0.3

    def test_k_clamped_to_n(self, paper_dataset, rng):
        lbl = build_label(
            paper_dataset, np.ones(2), k=50, n_samples=500, rng=rng
        )
        assert lbl.k == 5

    def test_rejects_wrong_weights(self, paper_dataset):
        with pytest.raises(InvalidWeightsError):
            build_label(paper_dataset, np.ones(3))


class TestRender:
    def test_render_contains_all_panels(self, label, paper_dataset):
        text = label.render(labels=paper_dataset.item_labels)
        assert "RANKING FACTS" in text
        assert "Reference stability" in text
        assert "Most stable alternatives" in text
        assert "Rank ranges" in text
        assert "bubble" in text

    def test_render_uses_item_labels(self, label, paper_dataset):
        text = label.render(labels=paper_dataset.item_labels)
        assert "t2" in text  # the top reference item by name

    def test_render_without_labels(self, label):
        assert "item-" in label.render()
