"""Unit tests for stable-region boundary characterisation."""

import math

import numpy as np
import pytest

from repro import (
    Dataset,
    ScoringFunction,
    boundary_pairs_2d,
    chebyshev_direction,
    facet_pairs_md,
    rank_items,
    ranking_region_md,
    tight_constraints,
    verify_stability_2d,
)
from repro.errors import InfeasibleRegionError
from repro.geometry.halfspace import ConvexCone, Halfspace


class TestBoundaryPairs2D:
    def test_paper_example_boundaries(self, paper_dataset):
        r = ScoringFunction.equal_weights(2).rank(paper_dataset)
        lower, upper = boundary_pairs_2d(paper_dataset, r)
        assert lower is not None and upper is not None
        result = verify_stability_2d(paper_dataset, r)
        assert math.isclose(lower.angle, result.region.lo)
        assert math.isclose(upper.angle, result.region.hi)
        # The named pairs are adjacent in the ranking.
        order = list(r.order)
        li = order.index(lower.higher)
        assert order[li + 1] == lower.lower
        ui = order.index(upper.higher)
        assert order[ui + 1] == upper.lower

    def test_boundary_pairs_actually_swap(self, paper_dataset):
        r = ScoringFunction.equal_weights(2).rank(paper_dataset)
        lower, upper = boundary_pairs_2d(paper_dataset, r)
        for pair, offset in ((lower, -1e-5), (upper, 1e-5)):
            angle = pair.angle + offset
            outside = rank_items(
                paper_dataset.values,
                np.array([math.cos(angle), math.sin(angle)]),
            )
            assert outside.rank_of(pair.higher) > outside.rank_of(pair.lower)

    def test_extreme_region_unbounded_side(self):
        # A dataset with a dominance chain: the single region spans the
        # whole quadrant, so neither boundary is an exchange.
        ds = Dataset(np.array([[0.9, 0.9], [0.5, 0.5], [0.1, 0.1]]))
        from repro import Ranking

        lower, upper = boundary_pairs_2d(ds, Ranking([0, 1, 2]))
        assert lower is None and upper is None


class TestTightConstraints:
    def test_redundant_constraint_removed(self):
        # w1 > w2 and w1 > 2 w2: the first is implied by the second...
        # actually w1 > 2w2 implies w1 > w2 for w2 >= 0; only index 1 is tight.
        cone = ConvexCone(
            [Halfspace((1.0, -1.0), +1), Halfspace((1.0, -2.0), +1)]
        )
        assert tight_constraints(cone) == [1]

    def test_all_tight_when_independent(self):
        cone = ConvexCone(
            [Halfspace((1.0, -1.0, 0.0), +1), Halfspace((0.0, 1.0, -1.0), +1)]
        )
        assert tight_constraints(cone) == [0, 1]

    def test_empty_cone_no_constraints(self):
        assert tight_constraints(ConvexCone(dim=3)) == []

    def test_duplicated_constraint_single_tight(self):
        cone = ConvexCone(
            [Halfspace((1.0, -1.0), +1), Halfspace((2.0, -2.0), +1)]
        )
        # Scaled duplicates: neither is *strictly* tighter; at most one
        # should be reported (removing one leaves the other implying it).
        assert tight_constraints(cone) == []


class TestFacetPairsMD:
    def test_facets_subset_of_adjacent_pairs(self, rng_factory):
        ds = Dataset(rng_factory(81).uniform(size=(10, 3)))
        r = ScoringFunction.equal_weights(3).rank(ds)
        facets = facet_pairs_md(ds, r)
        order = list(r.order)
        for pair in facets:
            i = order.index(pair.higher)
            assert order[i + 1] == pair.lower

    def test_perturbing_across_facet_changes_ranking(self, rng_factory):
        ds = Dataset(rng_factory(82).uniform(size=(8, 3)))
        r = ScoringFunction.equal_weights(3).rank(ds)
        facets = facet_pairs_md(ds, r)
        assert facets  # random data: some pair must be at risk
        cone = ranking_region_md(ds, r)
        # Cross a facet: move along the negated facet normal from the
        # Chebyshev centre until outside; the ranking must change.
        centre = chebyshev_direction(cone)
        facet_idx = tight_constraints(cone)[0]
        normal = np.asarray(cone.halfspaces[facet_idx].oriented_normal)
        step = centre - 2.0 * normal / np.linalg.norm(normal)
        if np.all(step >= 0) and np.any(step > 0):
            assert rank_items(ds.values, step) != r


class TestChebyshevDirection:
    def test_inside_cone_and_unit(self, rng_factory):
        ds = Dataset(rng_factory(83).uniform(size=(8, 3)))
        r = ScoringFunction.equal_weights(3).rank(ds)
        cone = ranking_region_md(ds, r)
        w = chebyshev_direction(cone)
        assert math.isclose(float(np.linalg.norm(w)), 1.0, rel_tol=1e-9)
        assert cone.contains(w)
        assert rank_items(ds.values, w) == r

    def test_margin_beats_arbitrary_interior_point(self, rng_factory):
        ds = Dataset(rng_factory(84).uniform(size=(8, 3)))
        r = ScoringFunction.equal_weights(3).rank(ds)
        cone = ranking_region_md(ds, r)
        w = chebyshev_direction(cone)

        def min_margin(x):
            margins = []
            for h in cone.halfspaces:
                normal = np.asarray(h.oriented_normal)
                margins.append(float(normal @ x) / float(np.linalg.norm(normal)))
            return min(margins)

        other = cone.interior_point()
        # The Chebyshev direction maximises the normalised margin over the
        # box section; it must not be worse than the generic LP point by
        # more than numerical slack.
        assert min_margin(w) >= min_margin(other) - 1e-6

    def test_whole_space(self):
        w = chebyshev_direction(ConvexCone(dim=4))
        assert np.allclose(w, 0.5)

    def test_infeasible_raises(self):
        cone = ConvexCone(
            [Halfspace((1.0, -1.0), +1), Halfspace((1.0, -1.0), -1)]
        )
        with pytest.raises(InfeasibleRegionError):
            chebyshev_direction(cone)
