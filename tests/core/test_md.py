"""Unit tests for the multi-dimensional algorithms (Algorithms 4-6)."""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    GetNextMD,
    Ranking,
    ScoringFunction,
    exchange_hyperplanes,
    rank_items,
    ranking_region_md,
    verify_stability_md,
)
from repro.errors import ExhaustedError, InfeasibleRankingError
from repro.sampling.oracle import StabilityOracle
from repro.sampling.uniform import sample_orthant


@pytest.fixture
def small_3d(rng_factory):
    return Dataset(rng_factory(11).uniform(size=(8, 3)))


class TestRankingRegionMD:
    def test_region_contains_inducing_function(self, small_3d, rng):
        w = np.array([1.0, 1.0, 1.0])
        r = rank_items(small_3d.values, w)
        cone = ranking_region_md(small_3d, r)
        assert cone.contains(w)

    def test_region_excludes_other_functions(self, small_3d, rng):
        w = np.array([1.0, 1.0, 1.0])
        r = rank_items(small_3d.values, w)
        cone = ranking_region_md(small_3d, r)
        for _ in range(200):
            probe = np.abs(rng.normal(size=3)) + 1e-6
            inside = cone.contains(probe)
            same = rank_items(small_3d.values, probe) == r
            assert inside == same

    def test_dominance_infeasibility(self):
        ds = Dataset(np.array([[0.9, 0.9, 0.9], [0.1, 0.1, 0.1], [0.5, 0.4, 0.6]]))
        with pytest.raises(InfeasibleRankingError):
            ranking_region_md(ds, Ranking([1, 0, 2]))

    def test_dominating_pairs_add_no_constraint(self):
        ds = Dataset(np.array([[0.9, 0.9, 0.9], [0.1, 0.1, 0.1]]))
        cone = ranking_region_md(ds, Ranking([0, 1]))
        assert len(cone) == 0

    def test_incomplete_ranking_rejected(self, small_3d):
        with pytest.raises(InfeasibleRankingError):
            ranking_region_md(small_3d, Ranking([0, 1], n_items=8))

    def test_tied_items_id_convention(self):
        ds = Dataset(np.array([[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]]))
        assert len(ranking_region_md(ds, Ranking([0, 1]))) == 0
        with pytest.raises(InfeasibleRankingError):
            ranking_region_md(ds, Ranking([1, 0]))


class TestVerifyStabilityMD:
    def test_matches_direct_monte_carlo(self, small_3d, rng_factory):
        # Estimate stability two independent ways: the oracle on the
        # ranking region vs direct re-ranking frequency.
        w = np.array([1.0, 1.0, 1.0])
        r = rank_items(small_3d.values, w)
        result = verify_stability_md(
            small_3d, r, n_samples=40_000, rng=rng_factory(1)
        )
        probes = sample_orthant(3, 40_000, rng_factory(2))
        hits = sum(rank_items(small_3d.values, p) == r for p in probes[:4000])
        direct = hits / 4000
        assert abs(result.stability - direct) < 0.02

    def test_2d_agreement_with_exact(self, rng_factory):
        # In 2D the Monte-Carlo result must approach the exact SV2D value.
        from repro import verify_stability_2d

        ds = Dataset(rng_factory(3).uniform(size=(10, 2)))
        r = ScoringFunction.equal_weights(2).rank(ds)
        exact = verify_stability_2d(ds, r).stability
        estimate = verify_stability_md(
            ds, r, n_samples=100_000, rng=rng_factory(4)
        ).stability
        assert abs(exact - estimate) < 0.01

    def test_shared_oracle_reused(self, small_3d, rng):
        oracle = StabilityOracle(sample_orthant(3, 5_000, rng))
        r = rank_items(small_3d.values, np.array([1.0, 1.0, 1.0]))
        a = verify_stability_md(small_3d, r, oracle=oracle)
        b = verify_stability_md(small_3d, r, oracle=oracle)
        assert a.stability == b.stability  # deterministic given the pool

    def test_reports_confidence_error(self, small_3d, rng):
        r = rank_items(small_3d.values, np.array([1.0, 1.0, 1.0]))
        result = verify_stability_md(small_3d, r, n_samples=5_000, rng=rng)
        assert result.confidence_error > 0.0
        assert result.sample_count == 5_000


class TestExchangeHyperplanes:
    def test_counts_all_pairs_without_region(self, small_3d):
        normals = exchange_hyperplanes(small_3d)
        # All pairs of 8 random-uniform 3-d items minus dominating pairs.
        assert 0 < normals.shape[0] <= 28

    def test_region_filter_reduces(self, small_3d, rng):
        cone = Cone(np.array([1.0, 1.0, 1.0]), math.pi / 60)
        samples = cone.sample(400, rng)
        narrow = exchange_hyperplanes(small_3d, region_samples=samples)
        wide = exchange_hyperplanes(small_3d)
        assert narrow.shape[0] <= wide.shape[0]

    def test_kept_hyperplanes_straddle_samples(self, small_3d, rng):
        cone = Cone(np.array([1.0, 1.0, 1.0]), math.pi / 30)
        samples = cone.sample(300, rng)
        kept = exchange_hyperplanes(small_3d, region_samples=samples)
        for h in kept:
            signs = samples[:300] @ h
            assert (signs > 0).any() and (signs <= 0).any()

    def test_chunking_equivalence(self, rng_factory):
        ds = Dataset(rng_factory(9).uniform(size=(25, 3)))
        samples = sample_orthant(3, 200, rng_factory(10))
        a = exchange_hyperplanes(ds, region_samples=samples, chunk_size=7)
        b = exchange_hyperplanes(ds, region_samples=samples, chunk_size=10**6)
        assert np.allclose(np.sort(a, axis=0), np.sort(b, axis=0))


class TestGetNextMD:
    def test_descending_stability(self, small_3d, rng_factory):
        gn = GetNextMD(small_3d, n_samples=20_000, rng=rng_factory(5))
        results = [gn.get_next() for _ in range(6)]
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_rankings_distinct(self, small_3d, rng_factory):
        gn = GetNextMD(small_3d, n_samples=20_000, rng=rng_factory(6))
        results = [gn.get_next() for _ in range(6)]
        assert len({r.ranking for r in results}) == 6

    def test_rankings_feasible(self, small_3d, rng_factory):
        # Each returned ranking is induced by some function (its region's
        # representative).
        gn = GetNextMD(small_3d, n_samples=20_000, rng=rng_factory(7))
        for _ in range(5):
            res = gn.get_next()
            assert res.stability > 0.0
            # The reported region intersected with the pool reproduces the
            # ranking at its representative point.
            assert res.ranking.is_complete

    def test_agrees_with_exact_2d(self, rng_factory):
        # On a 2D dataset the MD machinery must reproduce the exact
        # stabilities from ray sweeping, within Monte-Carlo error.
        from repro import GetNext2D

        ds = Dataset(rng_factory(8).uniform(size=(7, 2)))
        exact = {r.ranking: r.stability for r in GetNext2D(ds)}
        gn = GetNextMD(ds, n_samples=60_000, rng=rng_factory(9))
        seen = {}
        try:
            for _ in range(len(exact)):
                res = gn.get_next()
                seen[res.ranking] = res.stability
        except ExhaustedError:
            pass
        # Every MD ranking is exactly feasible, with a close stability.
        for ranking, stability in seen.items():
            assert ranking in exact
            assert abs(stability - exact[ranking]) < 0.02

    def test_top1_matches_exact_2d(self, rng_factory):
        from repro import GetNext2D

        ds = Dataset(rng_factory(12).uniform(size=(7, 2)))
        exact_top = GetNext2D(ds).get_next()
        md_top = GetNextMD(ds, n_samples=60_000, rng=rng_factory(13)).get_next()
        assert md_top.ranking == exact_top.ranking

    def test_cone_region(self, small_3d, rng_factory):
        cone = Cone(np.array([1.0, 1.0, 1.0]), math.pi / 40)
        gn = GetNextMD(small_3d, region=cone, n_samples=15_000, rng=rng_factory(14))
        total = 0.0
        count = 0
        try:
            for _ in range(50):
                total += gn.get_next().stability
                count += 1
        except ExhaustedError:
            pass
        assert count >= 1
        assert total <= 1.0 + 1e-9

    def test_stabilities_sum_to_one_when_exhausted(self, rng_factory):
        ds = Dataset(rng_factory(15).uniform(size=(5, 3)))
        gn = GetNextMD(ds, n_samples=30_000, rng=rng_factory(16))
        results = list(gn)
        assert math.isclose(
            sum(r.stability for r in results), 1.0, abs_tol=1e-9
        )

    def test_exhaustion_raises(self, rng_factory):
        ds = Dataset(np.array([[0.9, 0.9, 0.9], [0.1, 0.1, 0.1]]))
        gn = GetNextMD(ds, n_samples=1000, rng=rng_factory(17))
        assert gn.get_next().stability == 1.0
        with pytest.raises(ExhaustedError):
            gn.get_next()
