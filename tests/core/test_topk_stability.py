"""Unit tests for top-k stability verification (Problem 1, partial form)."""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    GetNextRandomized,
    ScoringFunction,
    verify_topk_ranking_stability,
    verify_topk_set_stability,
)
from repro.errors import InvalidRankingError


@pytest.fixture
def ds(rng_factory):
    return Dataset(rng_factory(51).uniform(size=(12, 3)))


class TestVerifyTopkSet:
    def test_dominant_set_fully_stable(self, rng):
        values = np.vstack([np.full((3, 3), 0.9), np.full((6, 3), 0.1)])
        values += np.random.default_rng(0).uniform(0, 0.005, values.shape)
        ds = Dataset(values)
        res = verify_topk_set_stability(ds, [0, 1, 2], n_samples=500, rng=rng)
        assert res.stability == 1.0
        assert res.top_k_set == frozenset({0, 1, 2})

    def test_never_topk_set_zero(self, rng):
        values = np.vstack([np.full((3, 3), 0.9), np.full((6, 3), 0.1)])
        ds = Dataset(values)
        res = verify_topk_set_stability(ds, [3, 4, 5], n_samples=500, rng=rng)
        assert res.stability == 0.0

    def test_agrees_with_discovery_engine(self, ds, rng_factory):
        engine = GetNextRandomized(
            ds, kind="topk_set", k=4, rng=rng_factory(52)
        )
        best = engine.get_next(budget=8000)
        verified = verify_topk_set_stability(
            ds, best.top_k_set, n_samples=8000, rng=rng_factory(53)
        )
        assert abs(verified.stability - best.stability) < 0.03

    def test_cone_restriction_raises_stability(self, ds, rng_factory):
        f = ScoringFunction.equal_weights(3)
        top = f.rank(ds).top_k_set(4)
        broad = verify_topk_set_stability(
            ds, top, n_samples=4000, rng=rng_factory(54)
        )
        narrow = verify_topk_set_stability(
            ds,
            top,
            region=Cone(f.weights, math.pi / 500),
            n_samples=4000,
            rng=rng_factory(55),
        )
        assert narrow.stability >= broad.stability

    def test_rejects_out_of_range(self, ds, rng):
        with pytest.raises(InvalidRankingError):
            verify_topk_set_stability(ds, [0, 99], n_samples=10, rng=rng)

    def test_rejects_oversized_set(self, ds, rng):
        with pytest.raises(InvalidRankingError):
            verify_topk_set_stability(ds, range(13), n_samples=10, rng=rng)


class TestVerifyTopkRanking:
    def test_set_at_least_as_stable_as_prefix(self, ds, rng_factory):
        f = ScoringFunction.equal_weights(3)
        prefix = f.rank(ds).order[:4]
        ranked = verify_topk_ranking_stability(
            ds, prefix, n_samples=6000, rng=rng_factory(56)
        )
        as_set = verify_topk_set_stability(
            ds, prefix, n_samples=6000, rng=rng_factory(56)
        )
        assert as_set.stability >= ranked.stability - 1e-12

    def test_full_prefix_matches_full_ranking_stability(self, rng_factory):
        # k = n: the ranked top-k IS the complete ranking; compare with
        # the exact 2D verification.
        from repro import verify_stability_2d

        ds = Dataset(rng_factory(57).uniform(size=(7, 2)))
        ranking = ScoringFunction.equal_weights(2).rank(ds)
        exact = verify_stability_2d(ds, ranking).stability
        mc = verify_topk_ranking_stability(
            ds, ranking.order, n_samples=40_000, rng=rng_factory(58)
        )
        assert abs(mc.stability - exact) < 0.01

    def test_rejects_duplicates(self, ds, rng):
        with pytest.raises(InvalidRankingError):
            verify_topk_ranking_stability(ds, [0, 0, 1], n_samples=10, rng=rng)

    def test_reports_confidence_error(self, ds, rng):
        res = verify_topk_ranking_stability(
            ds, [0, 1], n_samples=2000, rng=rng
        )
        assert res.confidence_error >= 0.0
        assert res.sample_count == round(res.stability * 2000)
