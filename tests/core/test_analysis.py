"""Unit tests for item-level stability analyses."""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    ScoringFunction,
    rank_profile,
    stable_pairs,
    topk_membership_probability,
)
from repro.core.region import ConstrainedRegion


@pytest.fixture
def ds(rng_factory):
    return Dataset(rng_factory(91).uniform(size=(10, 3)))


class TestRankProfile:
    def test_profiles_cover_all_items_by_default(self, ds, rng):
        profiles = rank_profile(ds, n_samples=500, rng=rng)
        assert [p.item for p in profiles] == list(range(10))

    def test_rank_bounds_sane(self, ds, rng):
        for p in rank_profile(ds, n_samples=500, rng=rng):
            assert 1 <= p.min_rank <= p.mean_rank <= p.max_rank <= 10

    def test_dominant_item_always_first(self, rng):
        values = np.vstack([np.full(3, 0.95), np.random.default_rng(0).uniform(0, 0.5, (5, 3))])
        ds = Dataset(values)
        profile = rank_profile(ds, [0], n_samples=300, rng=rng)[0]
        assert profile.min_rank == profile.max_rank == 1

    def test_quantiles_monotone(self, ds, rng):
        for p in rank_profile(ds, n_samples=500, rng=rng):
            qs = [p.quantiles[q] for q in sorted(p.quantiles)]
            assert qs == sorted(qs)

    def test_narrow_cone_pins_ranks(self, ds, rng):
        f = ScoringFunction.equal_weights(3)
        cone = Cone(f.weights, math.pi / 2000)
        reference = f.rank(ds)
        for p in rank_profile(ds, n_samples=300, region=cone, rng=rng):
            # In a hairline cone the rank can wobble by at most a place
            # or two around the reference rank.
            assert abs(p.mean_rank - reference.rank_of(p.item)) < 2

    def test_mean_ranks_sum_invariant(self, ds, rng):
        # Sum of ranks is n(n+1)/2 for every sample, hence for the means.
        profiles = rank_profile(ds, n_samples=400, rng=rng)
        total = sum(p.mean_rank for p in profiles)
        assert math.isclose(total, 55.0, rel_tol=1e-9)


class TestTopkMembership:
    def test_probabilities_in_range_and_sum(self, ds, rng):
        probs = topk_membership_probability(ds, 3, n_samples=500, rng=rng)
        assert probs.shape == (10,)
        assert np.all(probs >= 0) and np.all(probs <= 1)
        # Exactly k memberships per sample.
        assert math.isclose(float(probs.sum()), 3.0, rel_tol=1e-12)

    def test_dominant_items_certain(self, rng):
        values = np.vstack(
            [np.full((2, 3), 0.9), np.full((6, 3), 0.1)]
        ) + np.random.default_rng(1).uniform(0, 0.01, (8, 3))
        ds = Dataset(values)
        probs = topk_membership_probability(ds, 2, n_samples=200, rng=rng)
        assert probs[0] == 1.0 and probs[1] == 1.0
        assert np.all(probs[2:] == 0.0)

    def test_k_bounds(self, ds, rng):
        with pytest.raises(ValueError):
            topk_membership_probability(ds, 0, rng=rng)
        with pytest.raises(ValueError):
            topk_membership_probability(ds, 11, rng=rng)

    def test_membership_matches_stable_set(self, ds, rng_factory):
        # The most stable top-k set consists of high-membership items.
        from repro import GetNextRandomized

        probs = topk_membership_probability(
            ds, 4, n_samples=4000, rng=rng_factory(92)
        )
        engine = GetNextRandomized(
            ds, kind="topk_set", k=4, rng=rng_factory(93)
        )
        best = engine.get_next(budget=4000)
        chosen = probs[sorted(best.top_k_set)]
        others = probs[[i for i in range(10) if i not in best.top_k_set]]
        # Set stability rewards *joint* co-occurrence, so the winning set
        # need not contain the k highest marginal memberships — but on
        # average its members must be more frequent members than the rest.
        assert chosen.mean() > others.mean()
        assert chosen.min() > 0.0


class TestStablePairs:
    def test_dominance_certified_everywhere(self):
        ds = Dataset(np.array([[0.9, 0.9], [0.1, 0.1], [0.5, 0.4]]))
        m = stable_pairs(ds)
        assert m[0, 1] and m[0, 2]
        assert not m[1, 0]

    def test_full_space_only_dominance(self, ds):
        from repro.geometry.dual import dominates

        m = stable_pairs(ds)
        for i in range(10):
            for j in range(10):
                if i != j:
                    assert m[i, j] == dominates(ds.values[i], ds.values[j])

    def test_cone_certification_sound(self, ds, rng):
        cone = Cone(np.ones(3), math.pi / 30)
        m = stable_pairs(ds, region=cone)
        # Empirical check: certified pairs never flip on cone samples.
        samples = cone.sample(500, rng)
        scores = samples @ ds.values.T
        for i in range(10):
            for j in range(10):
                if m[i, j]:
                    assert np.all(scores[:, i] > scores[:, j])

    def test_constrained_region_certification_sound(self, ds, rng):
        region = ConstrainedRegion(np.array([[1.0, -1.0, 0.0]]))
        m = stable_pairs(ds, region=region)
        samples = region.sample(500, rng)
        scores = samples @ ds.values.T
        for i in range(10):
            for j in range(10):
                if m[i, j]:
                    assert np.all(scores[:, i] >= scores[:, j] - 1e-12)

    def test_narrow_cone_certifies_more(self, ds):
        wide = stable_pairs(ds, region=Cone(np.ones(3), math.pi / 8))
        narrow = stable_pairs(ds, region=Cone(np.ones(3), math.pi / 100))
        assert narrow.sum() >= wide.sum()

    def test_antisymmetry(self, ds):
        m = stable_pairs(ds, region=Cone(np.ones(3), math.pi / 50))
        assert not np.any(m & m.T)

    def test_max_items_guard(self, rng):
        big = Dataset(rng.uniform(size=(300, 2)))
        with pytest.raises(ValueError):
            stable_pairs(big, max_items=200)
