"""Unit tests for the Dataset data model and transformations."""

import numpy as np
import pytest

from repro import Dataset
from repro.errors import InvalidDatasetError


class TestConstruction:
    def test_basic(self, paper_dataset):
        assert paper_dataset.n_items == 5
        assert paper_dataset.n_attributes == 2
        assert len(paper_dataset) == 5

    def test_values_read_only(self, paper_dataset):
        with pytest.raises(ValueError):
            paper_dataset.values[0, 0] = 99.0

    def test_values_copied_from_input(self):
        src = np.ones((3, 2))
        ds = Dataset(src)
        src[0, 0] = 5.0
        assert ds.values[0, 0] == 1.0

    def test_default_labels(self):
        ds = Dataset(np.ones((3, 2)))
        assert ds.item_labels == ("item-0", "item-1", "item-2")
        assert ds.attribute_names == ("x1", "x2")

    def test_custom_labels(self, paper_dataset):
        assert paper_dataset.label_of(0) == "t1"
        assert paper_dataset.attribute_names == ("x1", "x2")

    def test_rejects_1d(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones(5))

    def test_rejects_empty(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.empty((0, 2)))

    def test_rejects_single_attribute(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones((5, 1)))

    def test_rejects_nan(self):
        values = np.ones((3, 2))
        values[1, 1] = np.nan
        with pytest.raises(InvalidDatasetError):
            Dataset(values)

    def test_rejects_wrong_label_count(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones((3, 2)), item_labels=["a", "b"])

    def test_rejects_wrong_attribute_count(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.ones((3, 2)), attribute_names=["only-one"])

    def test_item_accessor(self, paper_dataset, paper_values):
        assert np.allclose(paper_dataset.item(1), paper_values[1])


class TestSubsetProject:
    def test_subset_preserves_order_and_labels(self, paper_dataset):
        sub = paper_dataset.subset([3, 1])
        assert sub.n_items == 2
        assert sub.item_labels == ("t4", "t2")
        assert np.allclose(sub.item(0), paper_dataset.item(3))

    def test_project_columns(self):
        ds = Dataset(np.arange(12.0).reshape(3, 4))
        proj = ds.project([2, 0])
        assert proj.n_attributes == 2
        assert np.allclose(proj.values[:, 0], ds.values[:, 2])
        assert proj.attribute_names == ("x3", "x1")

    def test_project_rejects_single_column(self):
        ds = Dataset(np.ones((3, 3)))
        with pytest.raises(InvalidDatasetError):
            ds.project([0])


class TestNormalization:
    def test_range_and_orientation(self, rng):
        ds = Dataset(rng.uniform(-5, 20, size=(50, 3)))
        norm = ds.normalized()
        assert norm.values.min() >= 0.0
        assert norm.values.max() <= 1.0
        assert np.allclose(norm.values.min(axis=0), 0.0)
        assert np.allclose(norm.values.max(axis=0), 1.0)

    def test_lower_is_better_inverted(self):
        ds = Dataset(np.array([[1.0, 10.0], [3.0, 30.0]]))
        norm = ds.normalized(higher_is_better=[False, True])
        # Lowest price becomes 1.0.
        assert norm.values[0, 0] == 1.0
        assert norm.values[1, 0] == 0.0

    def test_inversion_preserves_ranking_reversal(self, rng):
        # (max - v)/(max - min) reverses the order of the column.
        ds = Dataset(rng.uniform(0, 100, size=(20, 2)))
        norm = ds.normalized(higher_is_better=[False, False])
        for j in range(2):
            assert np.allclose(
                np.argsort(norm.values[:, j]), np.argsort(-ds.values[:, j])
            )

    def test_constant_attribute(self):
        ds = Dataset(np.array([[1.0, 2.0], [1.0, 5.0]]))
        norm = ds.normalized()
        assert np.allclose(norm.values[:, 0], 0.5)

    def test_wrong_flag_count_rejected(self):
        ds = Dataset(np.ones((3, 2)))
        with pytest.raises(InvalidDatasetError):
            ds.normalized(higher_is_better=[True])

    def test_standardized_range(self, rng):
        ds = Dataset(rng.normal(50, 10, size=(100, 3)))
        std = ds.standardized()
        assert std.values.min() >= 0.0
        assert std.values.max() <= 1.0


class TestTransforms:
    def test_log_transform(self):
        ds = Dataset(np.array([[1.0, np.e], [np.e**2, 1.0]]))
        logged = ds.log_transformed()
        assert np.allclose(logged.values, [[0.0, 1.0], [2.0, 0.0]])
        assert logged.attribute_names == ("log_x1", "log_x2")

    def test_log_transform_rejects_nonpositive(self):
        ds = Dataset(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(InvalidDatasetError):
            ds.log_transformed()

    def test_log_transform_offset(self):
        ds = Dataset(np.array([[0.0, 1.0], [1.0, 1.0]]))
        logged = ds.log_transformed(offset=1.0)
        assert np.allclose(logged.values[0, 0], 0.0)

    def test_derived_attribute_quadratic(self):
        # Section 2.1.1: x3 = x1^2 makes f = x1 + x2 + 0.5 x1^2 linear.
        ds = Dataset(np.array([[2.0, 3.0], [4.0, 5.0]]))
        extended = ds.with_derived_attribute(lambda v: v[:, 0] ** 2, name="x1_sq")
        assert extended.n_attributes == 3
        assert np.allclose(extended.values[:, 2], [4.0, 16.0])
        assert extended.attribute_names[-1] == "x1_sq"
        # The non-linear score equals the linear score on the extension.
        w = np.array([1.0, 1.0, 0.5])
        nonlinear = ds.values[:, 0] + ds.values[:, 1] + 0.5 * ds.values[:, 0] ** 2
        assert np.allclose(extended.values @ w, nonlinear)

    def test_derived_attribute_wrong_shape(self):
        ds = Dataset(np.ones((3, 2)))
        with pytest.raises(InvalidDatasetError):
            ds.with_derived_attribute(lambda v: np.ones(7))

    def test_derived_attribute_default_name(self):
        ds = Dataset(np.ones((3, 2)))
        extended = ds.with_derived_attribute(lambda v: v[:, 0])
        assert extended.attribute_names[-1] == "x3"
