"""Additional edge-case coverage for the MD machinery."""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    GetNextMD,
    Ranking,
    exchange_hyperplanes,
    ranking_region_md,
    verify_stability_md,
)
from repro.errors import ExhaustedError


class TestDegenerateMD:
    def test_total_dominance_chain(self, rng_factory):
        values = np.linspace(0.9, 0.1, 5)[:, None] * np.ones((5, 3))
        ds = Dataset(values)
        res = verify_stability_md(
            ds, Ranking([0, 1, 2, 3, 4]), n_samples=500, rng=rng_factory(0)
        )
        assert res.stability == 1.0
        assert len(res.region) == 0  # no constraints at all

    def test_no_exchange_hyperplanes_for_chain(self):
        values = np.linspace(0.9, 0.1, 4)[:, None] * np.ones((4, 3))
        assert exchange_hyperplanes(Dataset(values)).shape[0] == 0

    def test_getnextmd_single_region(self, rng_factory):
        values = np.linspace(0.9, 0.1, 4)[:, None] * np.ones((4, 3))
        gn = GetNextMD(Dataset(values), n_samples=500, rng=rng_factory(1))
        first = gn.get_next()
        assert first.stability == 1.0
        with pytest.raises(ExhaustedError):
            gn.get_next()

    def test_two_item_exchange(self, rng_factory):
        # Two incomparable items: two regions split by one hyperplane.
        ds = Dataset(np.array([[0.9, 0.1, 0.5], [0.1, 0.9, 0.5]]))
        gn = GetNextMD(ds, n_samples=10_000, rng=rng_factory(2))
        a = gn.get_next()
        b = gn.get_next()
        assert {a.ranking.order, b.ranking.order} == {(0, 1), (1, 0)}
        assert math.isclose(a.stability + b.stability, 1.0)
        # Symmetric configuration: both sides get roughly half.
        assert 0.4 < a.stability < 0.6

    def test_narrow_cone_few_regions(self, rng_factory):
        ds = Dataset(rng_factory(3).uniform(size=(20, 3)))
        cone = Cone(np.ones(3), math.pi / 500)
        gn = GetNextMD(ds, region=cone, n_samples=4_000, rng=rng_factory(4))
        count = 0
        try:
            for _ in range(200):
                gn.get_next()
                count += 1
        except ExhaustedError:
            pass
        # A hairline cone crosses very few ordering exchanges.
        assert count < 20

    def test_min_split_samples_controls_granularity(self, rng_factory):
        ds = Dataset(rng_factory(5).uniform(size=(12, 3)))
        fine = GetNextMD(
            ds, n_samples=20_000, rng=rng_factory(6), min_split_samples=1
        )
        coarse = GetNextMD(
            ds, n_samples=20_000, rng=rng_factory(6), min_split_samples=500
        )
        fine_results = [fine.get_next().stability for _ in range(5)]
        coarse_results = [coarse.get_next().stability for _ in range(5)]
        # Coarse splitting refuses to isolate thin cells, so its returned
        # "regions" are at least as massive.
        assert sum(coarse_results) >= sum(fine_results) - 1e-9


class TestRegionConeConsistency:
    def test_region_halfspace_count_bounds(self, rng_factory):
        ds = Dataset(rng_factory(7).uniform(size=(15, 3)))
        r = Ranking(
            np.argsort(-(ds.values @ np.ones(3)), kind="stable").tolist()
        )
        cone = ranking_region_md(ds, r)
        assert 0 <= len(cone) <= 14

    def test_verification_after_enumeration_agrees(self, rng_factory):
        ds = Dataset(rng_factory(8).uniform(size=(10, 3)))
        gn = GetNextMD(ds, n_samples=30_000, rng=rng_factory(9))
        top = gn.get_next()
        # Verifying the returned ranking against a fresh oracle must land
        # near the enumerator's estimate.
        check = verify_stability_md(
            ds, top.ranking, n_samples=30_000, rng=rng_factory(10)
        )
        assert abs(check.stability - top.stability) < 0.02
