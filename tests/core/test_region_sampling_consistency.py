"""Cross-consistency between region membership and region sampling.

Every region of interest must satisfy: (a) everything it samples, it
contains; (b) the fraction of orthant-uniform probes it contains matches
an analytic or sampled volume estimate.  These invariants tie together
the three `U*` kinds and the cap geometry.
"""

import math

import numpy as np
import pytest

from repro.core.region import Cone, ConstrainedRegion, FullSpace
from repro.geometry.spherical import cap_area, orthant_area
from repro.sampling.uniform import sample_orthant


class TestSampleMembershipClosure:
    @pytest.mark.parametrize(
        "region",
        [
            FullSpace(3),
            Cone(np.array([1.0, 1.0, 1.0]), math.pi / 12),
            Cone(np.array([0.2, 0.9, 0.4]), math.pi / 40),
            ConstrainedRegion(np.array([[1.0, -1.0, 0.0], [0.0, 1.0, -0.5]])),
        ],
        ids=["full", "cone-central", "cone-offaxis", "constrained"],
    )
    def test_samples_are_members(self, region, rng):
        pts = region.sample(1000, rng)
        assert region.contains_all(pts).all()

    def test_cone_volume_matches_cap_fraction(self, rng):
        # Probability that an orthant-uniform direction lies in a small
        # central cone = cap area / orthant area.
        cone = Cone(np.array([1.0, 1.0, 1.0]), math.pi / 15)
        probes = sample_orthant(3, 200_000, rng)
        empirical = float(cone.contains_all(probes).mean())
        analytic = cap_area(3, math.pi / 15) / orthant_area(3)
        assert abs(empirical - analytic) < 0.005

    def test_constrained_volume_halfspace(self, rng):
        region = ConstrainedRegion(np.array([[1.0, -1.0]]))
        probes = sample_orthant(2, 100_000, rng)
        empirical = float(region.contains_all(probes).mean())
        assert abs(empirical - 0.5) < 0.01

    def test_full_space_contains_all_probes(self, rng):
        region = FullSpace(4)
        probes = sample_orthant(4, 1000, rng)
        assert region.contains_all(probes).all()

    def test_cone_sampling_matches_membership_fraction(self, rng_factory):
        # Sampling from a wedge that clips the cone: rejection inside the
        # Cone.sample orthant filter must not bias the angular law — mean
        # direction stays on the axis component-wise where unclipped.
        cone = Cone(np.array([1.0, 0.08]), math.pi / 12)
        pts = cone.sample(20_000, rng_factory(1))
        assert np.all(pts >= 0)
        # every sample still within the angular budget
        axis = cone.reference_ray()
        cosines = pts @ axis
        assert np.all(cosines >= math.cos(cone.theta) - 1e-9)
