"""Unit tests for batch/iterative enumeration (Problems 2-3)."""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    GetNext2D,
    GetNextMD,
    GetNextRandomized,
    enumerate_stable_rankings,
    make_get_next,
    top_h_stable_rankings,
)


@pytest.fixture
def ds2(rng_factory):
    return Dataset(rng_factory(31).uniform(size=(10, 2)))


@pytest.fixture
def ds3(rng_factory):
    return Dataset(rng_factory(32).uniform(size=(9, 3)))


class TestMakeGetNext:
    def test_auto_2d(self, ds2):
        assert isinstance(make_get_next(ds2), GetNext2D)

    def test_auto_md_small(self, ds3, rng):
        assert isinstance(make_get_next(ds3, rng=rng, n_samples=1000), GetNextMD)

    def test_auto_randomized_large(self, rng_factory):
        big = Dataset(rng_factory(33).uniform(size=(2000, 3)))
        assert isinstance(make_get_next(big, rng=rng_factory(34)), GetNextRandomized)

    def test_explicit_engines(self, ds3, rng_factory):
        assert isinstance(
            make_get_next(ds3, engine="md", rng=rng_factory(0), n_samples=500),
            GetNextMD,
        )
        assert isinstance(
            make_get_next(ds3, engine="randomized", rng=rng_factory(0)),
            GetNextRandomized,
        )

    def test_unknown_engine(self, ds3):
        with pytest.raises(ValueError):
            make_get_next(ds3, engine="quantum")


class TestBatchEnumeration:
    def test_threshold_semantics(self, ds2):
        results = enumerate_stable_rankings(ds2, min_stability=0.05)
        assert all(r.stability >= 0.05 for r in results)
        # Threshold keeps a strict subset of the full enumeration.
        full = enumerate_stable_rankings(ds2)
        assert len(results) <= len(full)
        assert math.isclose(sum(r.stability for r in full), 1.0, rel_tol=1e-9)

    def test_max_results_cap(self, ds2):
        results = enumerate_stable_rankings(ds2, max_results=3)
        assert len(results) == 3

    def test_descending_order(self, ds2):
        results = enumerate_stable_rankings(ds2)
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_top_h(self, ds2):
        top3 = top_h_stable_rankings(ds2, 3)
        full = enumerate_stable_rankings(ds2)
        assert [r.ranking for r in top3] == [r.ranking for r in full[:3]]

    def test_top_h_rejects_zero(self, ds2):
        with pytest.raises(ValueError):
            top_h_stable_rankings(ds2, 0)

    def test_randomized_engine_with_budgets(self, ds3, rng_factory):
        results = enumerate_stable_rankings(
            ds3,
            engine="randomized",
            rng=rng_factory(35),
            max_results=3,
            budget_first=3000,
            budget_rest=500,
        )
        assert len(results) == 3
        stabilities = [r.stability for r in results]
        # Monte-Carlo order may jitter slightly but must trend downward.
        assert stabilities[0] >= stabilities[-1] - 0.02

    def test_md_engine_with_region(self, ds3, rng_factory):
        cone = Cone(np.ones(3), math.pi / 30)
        results = enumerate_stable_rankings(
            ds3,
            engine="md",
            region=cone,
            rng=rng_factory(36),
            n_samples=10_000,
            max_results=5,
        )
        assert 1 <= len(results) <= 5
        assert sum(r.stability for r in results) <= 1.0 + 1e-9

    def test_exhaustion_respected(self):
        ds = Dataset(np.array([[0.9, 0.9], [0.1, 0.1]]))
        results = enumerate_stable_rankings(ds, max_results=10)
        assert len(results) == 1
        assert results[0].stability == 1.0
