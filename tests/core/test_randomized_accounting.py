"""Bookkeeping invariants of the randomized operator."""

import numpy as np
import pytest

from repro import Dataset, GetNextRandomized
from repro.errors import ExhaustedError


@pytest.fixture
def ds(rng_factory):
    return Dataset(rng_factory(41).uniform(size=(9, 3)))


class TestCountAccounting:
    def test_counts_sum_to_total_samples(self, ds, rng_factory):
        gn = GetNextRandomized(ds, rng=rng_factory(1))
        gn.get_next(budget=700)
        gn.get_next(budget=300)
        assert sum(gn.counts.values()) == gn.total_samples == 1000

    def test_counts_sum_topk_modes(self, ds, rng_factory):
        for kind in ("topk_ranked", "topk_set"):
            gn = GetNextRandomized(ds, kind=kind, k=3, rng=rng_factory(2))
            gn.get_next(budget=500)
            assert sum(gn.counts.values()) == 500

    def test_deterministic_under_seed(self, ds, rng_factory):
        a = GetNextRandomized(ds, rng=rng_factory(3)).get_next(budget=800)
        b = GetNextRandomized(ds, rng=rng_factory(3)).get_next(budget=800)
        assert a.ranking == b.ranking
        assert a.stability == b.stability

    def test_scoring_chunk_does_not_change_distribution(self, ds, rng_factory):
        # Different chunk sizes consume the generator differently, so the
        # results are not bitwise equal — but the count *distributions*
        # must agree to Monte-Carlo accuracy.  (The identity of the top
        # ranking can legitimately differ between independent runs when
        # two rankings are nearly tied, so compare per-ranking estimates
        # rather than winners.)
        fine = GetNextRandomized(ds, rng=rng_factory(4), scoring_chunk=7)
        coarse = GetNextRandomized(ds, rng=rng_factory(5), scoring_chunk=512)
        a = fine.get_next(budget=6000)
        b = coarse.get_next(budget=6000)
        a_key, b_key = tuple(a.ranking.order), tuple(b.ranking.order)
        assert abs(fine.counts[b_key] - coarse.counts[b_key]) / 6000 < 0.03
        assert abs(fine.counts[a_key] - coarse.counts[a_key]) / 6000 < 0.03

    def test_returned_results_never_repeat(self, ds, rng_factory):
        gn = GetNextRandomized(ds, rng=rng_factory(6))
        seen = set()
        try:
            for _ in range(30):
                result = gn.get_next(budget=400)
                assert result.ranking not in seen
                seen.add(result.ranking)
        except ExhaustedError:
            pass

    def test_stabilities_of_returned_sum_below_one(self, ds, rng_factory):
        gn = GetNextRandomized(ds, rng=rng_factory(7))
        total = 0.0
        try:
            for _ in range(20):
                total += gn.get_next(budget=500).stability
        except ExhaustedError:
            pass
        # Estimates share one pool, so the discovered mass cannot exceed 1.
        assert total <= 1.0 + 1e-9

    def test_error_mode_uses_cumulative_pool(self, ds, rng_factory):
        gn = GetNextRandomized(ds, rng=rng_factory(8))
        gn.get_next(budget=2000)
        before = gn.total_samples
        gn.get_next(error=0.05)
        assert gn.total_samples >= before
