"""Additional edge-case coverage for the data model and conventions."""

import numpy as np
import pytest

from repro import Dataset, Ranking, ScoringFunction, rank_items, verify_stability_2d
from repro.errors import InfeasibleRankingError, InvalidDatasetError


class TestDegenerateDatasets:
    def test_two_identical_items(self):
        ds = Dataset(np.array([[0.5, 0.5], [0.5, 0.5]]))
        r = ScoringFunction.equal_weights(2).rank(ds)
        assert r.order == (0, 1)  # tie broken by identifier
        assert verify_stability_2d(ds, r).stability == 1.0

    def test_all_items_identical(self):
        ds = Dataset(np.full((6, 3), 0.4))
        r = rank_items(ds.values, np.array([1.0, 2.0, 3.0]))
        assert r.order == tuple(range(6))

    def test_single_item_dataset(self):
        ds = Dataset(np.array([[0.3, 0.9]]))
        r = ScoringFunction.equal_weights(2).rank(ds)
        assert verify_stability_2d(ds, r).stability == 1.0

    def test_extreme_attribute_scales(self):
        # Unnormalised inputs with huge scale differences still rank.
        ds = Dataset(np.array([[1e-9, 1e9], [2e-9, 5e8]]))
        by_x1 = rank_items(ds.values, np.array([1.0, 0.0]))
        by_x2 = rank_items(ds.values, np.array([0.0, 1.0]))
        assert by_x1.order == (1, 0)
        assert by_x2.order == (0, 1)

    def test_zero_valued_attributes(self):
        ds = Dataset(np.array([[0.0, 0.5], [0.5, 0.0]]))
        r = rank_items(ds.values, np.array([1.0, 1.0]))
        assert r.order == (0, 1)

    def test_boolean_input_coerced(self):
        ds = Dataset(np.array([[True, False], [False, True]]))
        assert ds.values.dtype == np.float64

    def test_integer_input_coerced(self):
        ds = Dataset(np.array([[1, 2], [3, 4]]))
        assert ds.values.dtype == np.float64

    def test_rejects_inf(self):
        values = np.ones((2, 2))
        values[0, 0] = np.inf
        with pytest.raises(InvalidDatasetError):
            Dataset(values)


class TestRankingConventionCorners:
    def test_verify_rejects_permutation_of_wrong_size(self, paper_dataset):
        with pytest.raises(InfeasibleRankingError):
            verify_stability_2d(paper_dataset, Ranking([0, 1, 2]))

    def test_near_tie_resolved_consistently(self):
        # Scores equal to the last ulp: stable sort keeps id order.
        base = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.1]])
        ds = Dataset(base)
        a = rank_items(ds.values, np.array([0.7, 0.3]))
        b = rank_items(ds.values, np.array([0.7, 0.3]))
        assert a == b
        assert a.rank_of(0) < a.rank_of(1)

    def test_normalized_preserves_ranking_under_monotone_map(self, rng):
        # Min-max normalisation is per-attribute monotone, so rankings by
        # a single attribute are preserved.
        raw = Dataset(rng.uniform(10, 500, size=(30, 2)))
        norm = raw.normalized()
        for axis in range(2):
            w = np.zeros(2)
            w[axis] = 1.0
            assert rank_items(raw.values, w) == rank_items(norm.values, w)


class TestScoringFunctionCorners:
    def test_zero_weight_on_one_attribute(self, paper_dataset):
        f = ScoringFunction(np.array([1.0, 0.0]))
        assert f.rank(paper_dataset).order == (1, 3, 0, 2, 4)

    def test_tiny_weights_equivalent_to_scaled(self, paper_dataset):
        small = ScoringFunction(np.array([1e-12, 3e-12]))
        large = ScoringFunction(np.array([1.0, 3.0]))
        assert small == large
        assert small.rank(paper_dataset) == large.rank(paper_dataset)

    def test_angles_of_axis_functions(self):
        import math

        f_x1 = ScoringFunction(np.array([1.0, 0.0]))
        assert math.isclose(f_x1.angles[0], math.pi / 2)
        f_x2 = ScoringFunction(np.array([0.0, 1.0]))
        assert math.isclose(f_x2.angles[0], 0.0)
