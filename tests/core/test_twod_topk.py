"""Tests for exact 2D top-k stability (the kinetic-sweep extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cone, Dataset, GetNextRandomized
from repro.core.twod_topk import enumerate_topk_2d, sweep_topk_2d, verify_topk_2d
from repro.errors import InvalidRankingError


def _brute_force_topk(values, k, kind, n_angles=20_000, lo=0.0, hi=np.pi / 2):
    """Dense-angle-grid reference: key widths from midpoint sampling."""
    angles = np.linspace(lo + 1e-9, hi - 1e-9, n_angles)
    totals = {}
    for angle in angles:
        w = np.array([np.cos(angle), np.sin(angle)])
        order = np.argsort(-(values @ w), kind="stable")[:k]
        key = frozenset(order.tolist()) if kind == "set" else tuple(order.tolist())
        totals[key] = totals.get(key, 0) + 1
    return {key: count / n_angles for key, count in totals.items()}


class TestSweepTopk2D:
    @pytest.mark.parametrize("kind", ["set", "ranked"])
    def test_stabilities_sum_to_one(self, paper_dataset, kind):
        swept = sweep_topk_2d(paper_dataset, 3, kind=kind)
        total = sum(s for s, _ in swept.values())
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("kind", ["set", "ranked"])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_dense_grid(self, kind, k, rng_factory):
        values = rng_factory(k * 7 + (kind == "set")).random((25, 2))
        swept = sweep_topk_2d(Dataset(values), k, kind=kind)
        reference = _brute_force_topk(values, k, kind)
        assert set(swept) == set(reference)
        for key, (stability, _) in swept.items():
            assert stability == pytest.approx(reference[key], abs=5e-3)

    def test_set_count_at_most_ranked_count(self, rng):
        values = rng.random((30, 2))
        dataset = Dataset(values)
        sets = sweep_topk_2d(dataset, 5, kind="set")
        ranked = sweep_topk_2d(dataset, 5, kind="ranked")
        assert len(sets) <= len(ranked)

    def test_set_stability_aggregates_ranked(self, rng):
        # The stability of a top-k set is the sum over the ranked
        # prefixes that realise it.
        values = rng.random((20, 2))
        dataset = Dataset(values)
        sets = sweep_topk_2d(dataset, 4, kind="set")
        ranked = sweep_topk_2d(dataset, 4, kind="ranked")
        for key, (stability, _) in sets.items():
            from_ranked = sum(
                s for prefix, (s, _) in ranked.items() if frozenset(prefix) == key
            )
            assert stability == pytest.approx(from_ranked, abs=1e-9)

    @pytest.mark.parametrize("kind", ["set", "ranked"])
    def test_regions_are_connected_in_2d(self, kind):
        # In 2D every pairwise "i outscores j" condition is a single
        # angle interval, so a top-k region — the intersection of such
        # conditions — is always connected.  (Only for d >= 3 can the
        # functions sharing a top-k occupy disconnected cones, which is
        # what blocks GET-NEXTmd there.)
        for seed in range(10):
            values = np.random.default_rng(seed).random((12, 2))
            swept = sweep_topk_2d(Dataset(values), 3, kind=kind)
            assert all(len(parts) == 1 for _, parts in swept.values())

    def test_interval_widths_match_stability(self, paper_dataset):
        swept = sweep_topk_2d(paper_dataset, 2, kind="set")
        for key, (stability, parts) in swept.items():
            width = sum(p.width for p in parts)
            assert stability == pytest.approx(width / (np.pi / 2))

    def test_cone_region(self, paper_dataset):
        cone = Cone(np.array([1.0, 1.0]), 0.15)
        swept = sweep_topk_2d(paper_dataset, 3, region=cone, kind="set")
        total = sum(s for s, _ in swept.values())
        assert total == pytest.approx(1.0)

    def test_k_equals_n_single_set(self, paper_dataset):
        swept = sweep_topk_2d(paper_dataset, 5, kind="set")
        assert len(swept) == 1
        ((stability, _),) = swept.values()
        assert stability == pytest.approx(1.0)

    def test_k_equals_n_ranked_matches_full_sweep(self, paper_dataset):
        # With k = n the ranked sweep reproduces the 11 regions of
        # Figure 1c (aggregated by ranking, all connected).
        swept = sweep_topk_2d(paper_dataset, 5, kind="ranked")
        assert len(swept) == 11

    def test_rejects_bad_inputs(self, paper_dataset, rng):
        with pytest.raises(ValueError):
            sweep_topk_2d(paper_dataset, 0)
        with pytest.raises(ValueError):
            sweep_topk_2d(paper_dataset, 6)
        with pytest.raises(ValueError):
            sweep_topk_2d(paper_dataset, 2, kind="other")
        with pytest.raises(ValueError):
            sweep_topk_2d(Dataset(rng.random((5, 3))), 2)


class TestEnumerateTopk2D:
    def test_sorted_most_stable_first(self, rng):
        values = rng.random((40, 2))
        results = enumerate_topk_2d(Dataset(values), 5, kind="set")
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_agrees_with_randomized_estimates(self, rng):
        values = rng.random((30, 2))
        dataset = Dataset(values)
        exact = enumerate_topk_2d(dataset, 5, kind="set")
        engine = GetNextRandomized(dataset, kind="topk_set", k=5, rng=rng)
        estimate = engine.get_next(budget=20_000)
        top = exact[0]
        assert estimate.top_k_set == top.top_k_set
        assert estimate.stability == pytest.approx(top.stability, abs=0.02)

    def test_set_results_carry_top_k_set(self, paper_dataset):
        results = enumerate_topk_2d(paper_dataset, 3, kind="set")
        for r in results:
            assert r.top_k_set is not None
            assert len(r.top_k_set) == 3


class TestVerifyTopk2D:
    def test_paper_example_top3(self, paper_dataset):
        # Under f = x1 + x2 the top-3 is {t2, t4, t3}; it must have
        # positive exact stability.
        result = verify_topk_2d(paper_dataset, [1, 3, 2], kind="set")
        assert result.stability > 0.0

    def test_ranked_more_specific_than_set(self, paper_dataset):
        set_result = verify_topk_2d(paper_dataset, [1, 3, 2], kind="set")
        ranked_result = verify_topk_2d(paper_dataset, [1, 3, 2], kind="ranked")
        assert set_result.stability >= ranked_result.stability - 1e-12

    def test_infeasible_key_raises(self, paper_dataset):
        # t1 (0.63, 0.71) is never in the top-1: t2 beats it for small
        # angles, t5 for large ones... in fact t1 is dominated by
        # nothing, so pick an impossible pair: {t1, t3} as top-2 set
        # requires excluding both t2 and t5 somewhere — check and assert
        # accordingly.
        swept = sweep_topk_2d(paper_dataset, 1, kind="set")
        infeasible_singletons = [
            frozenset({i}) for i in range(5) if frozenset({i}) not in swept
        ]
        assert infeasible_singletons  # at least one item can never be top-1
        with pytest.raises(InvalidRankingError):
            verify_topk_2d(
                paper_dataset, sorted(infeasible_singletons[0]), kind="set"
            )

    def test_duplicate_items_rejected(self, paper_dataset):
        with pytest.raises(InvalidRankingError):
            verify_topk_2d(paper_dataset, [1, 1], kind="set")


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_sweep_partitions_the_region(n, k, seed):
    """Stabilities are positive and sum to 1 for both kinds."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, 2))
    k = min(k, n)
    for kind in ("set", "ranked"):
        swept = sweep_topk_2d(Dataset(values), k, kind=kind)
        total = sum(s for s, _ in swept.values())
        assert total == pytest.approx(1.0)
        assert all(s > 0 for s, _ in swept.values())


class TestDegenerateDataRegression:
    """Catalog-shaped data regression: attribute ties and near-ties.

    The Blue Nile 2D projection mixes exact one-attribute ties (which
    make `exchange_angle_2d` report degenerate boundary angles) with
    near-ties whose exchange angles sit below float nudge resolution.
    An early implementation livelocked on the former and silently
    corrupted the sweep order on the latter; this pins both fixes.
    """

    def _catalog(self, n):
        from repro.datasets import bluenile_dataset

        rng = np.random.default_rng(20181218)
        return bluenile_dataset(n, rng).project([0, 1])

    def test_matches_dense_grid_on_catalog(self):
        dataset = self._catalog(150)
        swept = sweep_topk_2d(dataset, 10, kind="set")
        reference = _brute_force_topk(dataset.values, 10, "set", n_angles=4_000)
        assert set(swept) == set(reference)
        for key, (stability, _) in swept.items():
            assert stability == pytest.approx(reference[key], abs=2e-3)

    def test_terminates_with_exact_attribute_ties(self):
        # Exact ties in one attribute create dominating pairs whose
        # exchange degenerates to the boundary; the sweep must not
        # revisit them.
        values = np.array(
            [
                [0.5, 0.9], [0.5, 0.7], [0.5, 0.3],  # x1-tied chain
                [0.9, 0.5], [0.7, 0.5], [0.3, 0.5],  # x2-tied chain
                [0.6, 0.6],
            ]
        )
        swept = sweep_topk_2d(Dataset(values), 3, kind="set")
        total = sum(s for s, _ in swept.values())
        assert total == pytest.approx(1.0)

    def test_sub_resolution_exchange_angles(self):
        # Two items whose exchange angle is ~1e-13: the initial order
        # must account for it exactly rather than double-counting it
        # as an event.
        values = np.array(
            [
                [0.8, 0.10000000000001],
                [0.8000000000000001, 0.1],
                [0.5, 0.5],
            ]
        )
        swept = sweep_topk_2d(Dataset(values), 1, kind="set")
        total = sum(s for s, _ in swept.values())
        assert total == pytest.approx(1.0)
