"""The ranked-prefix fast path on the randomized backend.

``stability_of`` over a ``kind="full"`` pool accepts rankings shorter
than the dataset and answers by prefix-counting the existing tally —
no dedicated top-k pool is sampled.  The correctness anchor: a sampled
function's ranked top-``p`` prefix *is* the prefix of its full
ranking, so against the same sample stream the fast path must agree
**exactly** (same counts, not just statistically) with a dedicated
``topk_ranked`` operator — which is what these property tests pin.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, StabilitySession
from repro.core.randomized import GetNextRandomized


def _dataset(n: int, d: int, seed: int) -> Dataset:
    return Dataset(np.random.default_rng(seed).uniform(size=(n, d)))


class TestPrefixCountKernel:
    def test_prefix_count_matches_manual_scan(self):
        op = GetNextRandomized(
            _dataset(30, 3, seed=1), rng=np.random.default_rng(2)
        )
        op.observe(400)
        tally = op.tally
        prefix = list(tally.unpack(next(iter(tally.counts)))[:3])
        expected = sum(
            count
            for key, count in tally.counts.items()
            if list(tally.unpack(key)[:3]) == prefix
        )
        assert tally.prefix_count(prefix) == expected > 0

    def test_full_length_prefix_equals_count_of(self):
        op = GetNextRandomized(
            _dataset(8, 2, seed=3), rng=np.random.default_rng(4)
        )
        op.observe(300)
        tally = op.tally
        for key in list(tally.counts)[:5]:
            ids = list(tally.unpack(key))
            assert tally.prefix_count(ids) == tally.count_of(key)

    def test_prefix_length_validation(self):
        op = GetNextRandomized(
            _dataset(10, 2, seed=5), rng=np.random.default_rng(6)
        )
        op.observe(50)
        with pytest.raises(ValueError):
            op.tally.prefix_count([])
        with pytest.raises(ValueError):
            op.tally.prefix_count(list(range(11)))


class TestPrefixFastPath:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(6, 40),
        d=st.integers(2, 4),
        p=st.integers(1, 5),
        seed=st.integers(0, 2**20),
        budget=st.sampled_from([200, 500]),
    )
    def test_agrees_exactly_with_dedicated_topk_ranked_pool(
        self, n, d, p, seed, budget
    ):
        """Same rng stream => byte-identical estimate, by construction."""
        p = min(p, n - 1)
        dataset = _dataset(n, d, seed=seed % 1000)
        full = GetNextRandomized(
            dataset, kind="full", rng=np.random.default_rng(seed)
        )
        dedicated = GetNextRandomized(
            dataset, kind="topk_ranked", k=p, rng=np.random.default_rng(seed)
        )
        full.observe(budget)
        dedicated.observe(budget)
        probe = list(dedicated.top_from_pool(1)[0].ranking.order)
        fast = full.stability_of(probe, min_samples=budget)
        slow = dedicated.stability_of(probe, min_samples=budget)
        assert fast.stability == slow.stability
        assert fast.sample_count == slow.sample_count
        assert fast.confidence_error == slow.confidence_error
        assert list(fast.ranking.order) == probe

    def test_agrees_with_current_path_at_full_length(self):
        """A full-length 'prefix' degrades to the exact-key estimate."""
        dataset = _dataset(7, 3, seed=9)
        op = GetNextRandomized(dataset, rng=np.random.default_rng(10))
        op.observe(600)
        ranking = list(op.top_from_pool(1)[0].ranking.order)
        by_key = op.stability_of(ranking, min_samples=600)
        by_prefix_count = op.tally.prefix_count(ranking)
        assert by_key.sample_count == by_prefix_count

    def test_unseen_prefix_reports_zero_without_sampling(self):
        dataset = _dataset(200, 3, seed=11)
        op = GetNextRandomized(dataset, rng=np.random.default_rng(12))
        op.observe(500)
        before = op.total_samples
        # The *reverse* of the most stable prefix is (essentially
        # always) never observed; the estimate is 0 with no new draws.
        probe = list(op.top_from_pool(1)[0].ranking.order[:4])
        result = op.stability_of(probe[::-1], min_samples=500)
        assert op.total_samples == before
        assert result.sample_count in (0, op.tally.prefix_count(probe[::-1]))

    def test_monotone_in_prefix_depth(self):
        """P(prefix of length p) >= P(prefix of length p+1), exactly."""
        dataset = _dataset(50, 3, seed=13)
        op = GetNextRandomized(dataset, rng=np.random.default_rng(14))
        op.observe(800)
        probe = list(op.top_from_pool(1)[0].ranking.order)
        counts = [
            op.stability_of(probe[:depth], min_samples=800).sample_count
            for depth in range(1, 6)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > 0

    def test_topk_kinds_still_reject_wrong_lengths(self):
        dataset = _dataset(12, 3, seed=15)
        op = GetNextRandomized(
            dataset, kind="topk_ranked", k=4, rng=np.random.default_rng(16)
        )
        op.observe(100)
        with pytest.raises(ValueError):
            op.stability_of([0, 1], min_samples=100)


class TestSessionPrefixDispatch:
    def test_full_prefix_routes_to_randomized_and_is_cached(self):
        dataset = _dataset(60, 3, seed=17)
        with StabilitySession(dataset, seed=18, parallel=False) as session:
            result = session.stability_of([0, 1, 2], kind="full",
                                          min_samples=300)
            assert session.last_query_cached is False
            configs = session.stats()["configs"]
            assert list(configs) == ["full@randomized"]
            assert configs["full@randomized"]["total_samples"] == 300
            again = session.stability_of([0, 1, 2], kind="full",
                                         min_samples=300)
            assert session.last_query_cached is True
            assert again.stability == result.stability

    def test_warm_full_pool_answers_prefixes_without_growth(self):
        """The serving win: an existing pool answers prefix queries."""
        dataset = _dataset(60, 3, seed=19)
        with StabilitySession(dataset, seed=20, parallel=False) as session:
            best = session.top_stable(1, kind="full", backend="randomized",
                                      budget=500)[0]
            assert (
                session.stats()["configs"]["full@randomized"]["total_samples"]
                == 500
            )
            prefix = list(best.ranking.order[:3])
            result = session.stability_of(prefix, kind="full",
                                          min_samples=400)
            # Answered from the warm pool — no second configuration,
            # no extra sampling.
            configs = session.stats()["configs"]
            assert list(configs) == ["full@randomized"]
            assert configs["full@randomized"]["total_samples"] == 500
            assert result.sample_count > 0

    def test_batch_planner_plans_prefix_queries_on_the_full_pool(self):
        dataset = _dataset(60, 3, seed=21)
        requests = [
            {"op": "top_stable", "m": 1, "kind": "full",
             "backend": "randomized", "budget": 400},
            {"op": "stability_of", "kind": "full", "ranking": [0, 1],
             "min_samples": 400},
        ]
        with StabilitySession(dataset, seed=22, parallel=False) as session:
            outcomes = session.run_batch(requests)
            assert all(outcome.ok for outcome in outcomes)
            configs = session.stats()["configs"]
            # One shared configuration, prefilled exactly once.
            assert list(configs) == ["full@randomized"]
            assert configs["full@randomized"]["total_samples"] == 400

    def test_full_length_rankings_still_use_the_exact_backends(self):
        """The dispatch rule only fires for true prefixes."""
        dataset = _dataset(12, 2, seed=23)
        with StabilitySession(dataset, seed=24, parallel=False) as session:
            ranking = session.top_stable(1)[0].ranking
            session.stability_of(list(ranking.order), kind="full")
            configs = session.stats()["configs"]
            assert "full@twod_exact" in configs


class TestPrefixValidation:
    def test_out_of_range_prefix_ids_are_a_value_error(self):
        dataset = _dataset(50, 3, seed=25)
        op = GetNextRandomized(dataset, rng=np.random.default_rng(26))
        op.observe(100)
        for bad in ([70_000], [-1], [0, 50]):
            with pytest.raises(ValueError, match="prefix ids"):
                op.stability_of(bad, min_samples=100)

    def test_out_of_range_ids_classify_as_bad_request(self):
        from repro import StabilitySession
        from repro.server import protocol

        dataset = _dataset(50, 3, seed=27)
        with StabilitySession(dataset, seed=28, parallel=False) as session:
            handled = protocol.dispatch(
                session,
                dataset,
                {"op": "stability_of", "kind": "full", "ranking": [70_000],
                 "min_samples": 100},
            )
        assert handled.response["error"]["code"] == "bad_request"
