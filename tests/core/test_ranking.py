"""Unit tests for Ranking and the ranking construction helpers."""

import numpy as np
import pytest

from repro.core.ranking import Ranking, _top_k_order, rank_items, ranking_from_scores
from repro.errors import InvalidRankingError


class TestRankingBasics:
    def test_order_and_length(self):
        r = Ranking([2, 0, 1])
        assert r.order == (2, 0, 1)
        assert len(r) == 3
        assert r.is_complete

    def test_partial_ranking(self):
        r = Ranking([4, 2], n_items=10)
        assert not r.is_complete
        assert r.n_items == 10

    def test_equality_and_hash(self):
        assert Ranking([1, 0]) == Ranking([1, 0])
        assert Ranking([1, 0]) != Ranking([0, 1])
        assert hash(Ranking([1, 0])) == hash(Ranking([1, 0]))

    def test_usable_as_dict_key(self):
        counts = {Ranking([0, 1]): 3}
        counts[Ranking([0, 1])] += 1
        assert counts[Ranking([0, 1])] == 4

    def test_iteration_and_indexing(self):
        r = Ranking([3, 1, 2, 0])
        assert list(r) == [3, 1, 2, 0]
        assert r[0] == 3

    def test_rank_of(self):
        r = Ranking([3, 1, 2, 0])
        assert r.rank_of(3) == 1
        assert r.rank_of(0) == 4

    def test_rank_of_missing(self):
        r = Ranking([1, 2], n_items=5)
        with pytest.raises(KeyError):
            r.rank_of(4)

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidRankingError):
            Ranking([0, 0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidRankingError):
            Ranking([0, 5], n_items=3)

    def test_rejects_empty(self):
        with pytest.raises(InvalidRankingError):
            Ranking([])

    def test_rejects_too_long(self):
        with pytest.raises(InvalidRankingError):
            Ranking([0, 1, 2], n_items=2)


class TestTopK:
    def test_top_k_prefix(self):
        r = Ranking([3, 1, 2, 0])
        assert r.top_k(2).order == (3, 1)
        assert r.top_k(2).n_items == 4

    def test_top_k_set(self):
        r = Ranking([3, 1, 2, 0])
        assert r.top_k_set(2) == frozenset({1, 3})

    def test_top_k_bounds(self):
        r = Ranking([0, 1])
        with pytest.raises(InvalidRankingError):
            r.top_k(0)
        with pytest.raises(InvalidRankingError):
            r.top_k(3)


class TestKendallTau:
    def test_identical_is_zero(self):
        r = Ranking([0, 1, 2, 3])
        assert r.kendall_tau_distance(r) == 0

    def test_reversal_is_max(self):
        r, rev = Ranking([0, 1, 2, 3]), Ranking([3, 2, 1, 0])
        assert r.kendall_tau_distance(rev) == 6  # C(4, 2)

    def test_single_swap(self):
        assert Ranking([0, 1, 2]).kendall_tau_distance(Ranking([1, 0, 2])) == 1

    def test_symmetry(self, rng):
        perm = rng.permutation(8).tolist()
        a, b = Ranking(list(range(8))), Ranking(perm)
        assert a.kendall_tau_distance(b) == b.kendall_tau_distance(a)

    def test_rejects_different_items(self):
        with pytest.raises(InvalidRankingError):
            Ranking([0, 1], n_items=3).kendall_tau_distance(
                Ranking([1, 2], n_items=3)
            )


class TestRankingFromScores:
    def test_descending(self):
        r = ranking_from_scores(np.array([0.1, 0.9, 0.5]))
        assert r.order == (1, 2, 0)

    def test_tie_break_by_id(self):
        r = ranking_from_scores(np.array([0.5, 0.9, 0.5]))
        assert r.order == (1, 0, 2)

    def test_all_tied(self):
        r = ranking_from_scores(np.array([0.5, 0.5, 0.5]))
        assert r.order == (0, 1, 2)

    def test_top_k_variant_matches_full(self, rng):
        scores = rng.normal(size=50)
        full = ranking_from_scores(scores)
        top = ranking_from_scores(scores, k=7)
        assert top.order == full.order[:7]

    def test_rejects_matrix(self):
        with pytest.raises(InvalidRankingError):
            ranking_from_scores(np.ones((2, 2)))


class TestTopKOrder:
    def test_matches_stable_argsort(self, rng):
        for _ in range(30):
            scores = rng.normal(size=40)
            k = int(rng.integers(1, 40))
            expected = np.argsort(-scores, kind="stable")[:k].tolist()
            assert _top_k_order(scores, k) == expected

    def test_boundary_ties_prefer_low_ids(self):
        scores = np.array([1.0, 0.5, 0.5, 0.5, 0.2])
        assert _top_k_order(scores, 2) == [0, 1]
        assert _top_k_order(scores, 3) == [0, 1, 2]

    def test_many_duplicates(self):
        scores = np.zeros(10)
        assert _top_k_order(scores, 4) == [0, 1, 2, 3]

    def test_k_equal_n(self, rng):
        scores = rng.normal(size=12)
        assert _top_k_order(scores, 12) == np.argsort(
            -scores, kind="stable"
        ).tolist()

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidRankingError):
            _top_k_order(np.ones(3), 0)


class TestRankItems:
    def test_paper_example(self, paper_values):
        # Figure 1a: f = x1 + x2 ranks <t2, t4, t3, t5, t1>.
        r = rank_items(paper_values, np.array([1.0, 1.0]))
        assert r.order == (1, 3, 2, 4, 0)

    def test_extreme_functions(self, paper_values):
        by_x1 = rank_items(paper_values, np.array([1.0, 0.0]))
        assert by_x1.order == (1, 3, 0, 2, 4)
        by_x2 = rank_items(paper_values, np.array([0.0, 1.0]))
        assert by_x2.order == (4, 2, 0, 3, 1)

    def test_scale_invariance(self, paper_values):
        # Note the weights must not land exactly on an ordering exchange:
        # (0.3, 0.7) ties t1 and t4 in exact arithmetic, and float
        # round-off then breaks the tie differently at different scales.
        a = rank_items(paper_values, np.array([0.31, 0.7]))
        b = rank_items(paper_values, np.array([3.1, 7.0]))
        assert a == b

    def test_k_parameter(self, paper_values):
        r = rank_items(paper_values, np.array([1.0, 1.0]), k=2)
        assert r.order == (1, 3)
