"""Unit tests for the exact 2D algorithms (Algorithms 1-3)."""

import math

import numpy as np
import pytest

from repro import (
    Cone,
    ConstrainedRegion,
    Dataset,
    GetNext2D,
    Ranking,
    ScoringFunction,
    rank_items,
    ray_sweep,
    verify_stability_2d,
)
from repro.errors import ExhaustedError, InfeasibleRankingError


def _rank_at(values, angle):
    return rank_items(values, np.array([math.cos(angle), math.sin(angle)]))


class TestVerifyStability2D:
    def test_paper_example_feasible(self, paper_dataset):
        r = ScoringFunction.equal_weights(2).rank(paper_dataset)
        result = verify_stability_2d(paper_dataset, r)
        assert 0.0 < result.stability < 1.0
        # The default function's angle lies inside the returned region.
        assert result.region.contains_angle(math.pi / 4)

    def test_region_boundaries_are_exchange_angles(self, paper_dataset):
        r = ScoringFunction.equal_weights(2).rank(paper_dataset)
        result = verify_stability_2d(paper_dataset, r)
        # Just inside the region the ranking holds; just outside it differs.
        lo, hi = result.region.lo, result.region.hi
        eps = 1e-6
        assert _rank_at(paper_dataset.values, lo + eps) == r
        assert _rank_at(paper_dataset.values, hi - eps) == r
        assert _rank_at(paper_dataset.values, lo - eps) != r
        assert _rank_at(paper_dataset.values, hi + eps) != r

    def test_stability_matches_region_width(self, paper_dataset):
        r = ScoringFunction.equal_weights(2).rank(paper_dataset)
        result = verify_stability_2d(paper_dataset, r)
        assert math.isclose(
            result.stability, result.region.width / (math.pi / 2), rel_tol=1e-12
        )

    def test_infeasible_ranking_rejected(self, paper_dataset):
        # t2 = (0.83, 0.65) never ranks below t5 = (0.53, 0.82)... they do
        # exchange; instead put dominated t1 above its dominator is not
        # possible here (no dominance in the example), so use a reversed
        # impossible order detected by contradictory constraints.
        r = Ranking([0, 4, 2, 3, 1])
        with pytest.raises(InfeasibleRankingError):
            verify_stability_2d(paper_dataset, r)

    def test_dominance_infeasibility(self):
        ds = Dataset(np.array([[0.9, 0.9], [0.1, 0.1], [0.5, 0.4]]))
        # Item 1 is dominated by item 0; ranking 1 above 0 is infeasible.
        with pytest.raises(InfeasibleRankingError):
            verify_stability_2d(ds, Ranking([1, 0, 2]))

    def test_dominated_adjacent_pair_skipped(self):
        ds = Dataset(np.array([[0.9, 0.9], [0.1, 0.1]]))
        result = verify_stability_2d(ds, Ranking([0, 1]))
        assert result.stability == 1.0  # the only feasible ranking

    def test_requires_complete_ranking(self, paper_dataset):
        with pytest.raises(InfeasibleRankingError):
            verify_stability_2d(paper_dataset, Ranking([0, 1], n_items=5))

    def test_requires_2d(self, rng):
        ds = Dataset(rng.uniform(size=(5, 3)))
        with pytest.raises(ValueError):
            verify_stability_2d(ds, Ranking(list(range(5))))

    def test_restricted_region(self, paper_dataset):
        cone = Cone(np.array([1.0, 1.0]), math.pi / 10)
        r = ScoringFunction.equal_weights(2).rank(paper_dataset)
        full = verify_stability_2d(paper_dataset, r)
        restricted = verify_stability_2d(paper_dataset, r, region=cone)
        # Same region width, smaller universe -> higher stability.
        assert restricted.stability > full.stability

    def test_ranking_valid_only_outside_region(self, paper_dataset):
        # The x1-heavy ranking is infeasible in a narrow cone around x2.
        r = _rank_at(paper_dataset.values, 0.01)
        cone = Cone(np.array([0.05, 1.0]), math.pi / 40)
        with pytest.raises(InfeasibleRankingError):
            verify_stability_2d(paper_dataset, r, region=cone)

    def test_tied_items_follow_id_convention(self):
        ds = Dataset(np.array([[0.5, 0.5], [0.5, 0.5], [0.1, 0.1]]))
        assert verify_stability_2d(ds, Ranking([0, 1, 2])).stability == 1.0
        with pytest.raises(InfeasibleRankingError):
            verify_stability_2d(ds, Ranking([1, 0, 2]))


class TestRaySweep:
    def test_paper_example_eleven_regions(self, paper_dataset):
        regions = ray_sweep(paper_dataset)
        assert len(regions) == 11  # Figure 1c

    def test_stabilities_sum_to_one(self, paper_dataset):
        regions = ray_sweep(paper_dataset)
        assert math.isclose(sum(s for s, _ in regions), 1.0, rel_tol=1e-9)

    def test_regions_tile_the_interval(self, paper_dataset):
        regions = ray_sweep(paper_dataset)
        spans = sorted((r.lo, r.hi) for _, r in regions)
        assert math.isclose(spans[0][0], 0.0, abs_tol=1e-12)
        assert math.isclose(spans[-1][1], math.pi / 2, rel_tol=1e-12)
        for (_, prev_hi), (next_lo, _) in zip(spans, spans[1:]):
            assert math.isclose(prev_hi, next_lo, rel_tol=1e-12)

    def test_each_region_has_constant_ranking(self, paper_dataset):
        values = paper_dataset.values
        for _, region in ray_sweep(paper_dataset):
            probes = np.linspace(region.lo + 1e-9, region.hi - 1e-9, 5)
            rankings = {_rank_at(values, float(t)) for t in probes}
            assert len(rankings) == 1

    def test_adjacent_regions_have_distinct_rankings(self, paper_dataset):
        values = paper_dataset.values
        regions = sorted(ray_sweep(paper_dataset), key=lambda sr: sr[1].lo)
        mids = [
            _rank_at(values, (r.lo + r.hi) / 2) for _, r in regions
        ]
        for a, b in zip(mids, mids[1:]):
            assert a != b

    def test_verification_agrees_with_sweep(self, paper_dataset):
        # SV2D on each sweep ranking returns the sweep's region width.
        values = paper_dataset.values
        for stability, region in ray_sweep(paper_dataset):
            r = _rank_at(values, (region.lo + region.hi) / 2)
            verified = verify_stability_2d(paper_dataset, r)
            assert math.isclose(verified.stability, stability, rel_tol=1e-9)

    def test_random_datasets_consistency(self, rng_factory):
        for seed in range(5):
            rng = rng_factory(seed)
            ds = Dataset(rng.uniform(size=(12, 2)))
            regions = ray_sweep(ds)
            assert math.isclose(
                sum(s for s, _ in regions), 1.0, rel_tol=1e-9
            ), f"seed {seed}"

    def test_restricted_interval(self, paper_dataset):
        region = ConstrainedRegion(np.array([[-1.0, 1.0], [2.0, -1.0]]))
        regions = ray_sweep(paper_dataset, region=region)
        lo, hi = region.angle_interval()
        for _, r in regions:
            assert r.lo >= lo - 1e-12
            assert r.hi <= hi + 1e-12
        assert math.isclose(sum(s for s, _ in regions), 1.0, rel_tol=1e-9)

    def test_single_item(self):
        ds = Dataset(np.array([[0.5, 0.6]]))
        regions = ray_sweep(ds)
        assert len(regions) == 1
        assert math.isclose(regions[0][0], 1.0)

    def test_dominance_chain_single_region(self):
        # Total dominance order: exactly one feasible ranking.
        ds = Dataset(np.array([[0.9, 0.9], [0.6, 0.6], [0.2, 0.2]]))
        regions = ray_sweep(ds)
        assert len(regions) == 1


class TestGetNext2D:
    def test_descending_stability(self, paper_dataset):
        gn = GetNext2D(paper_dataset)
        results = [gn.get_next() for _ in range(11)]
        stabilities = [r.stability for r in results]
        assert stabilities == sorted(stabilities, reverse=True)

    def test_exhaustion(self, paper_dataset):
        gn = GetNext2D(paper_dataset)
        for _ in range(11):
            gn.get_next()
        with pytest.raises(ExhaustedError):
            gn.get_next()

    def test_iterator_protocol(self, paper_dataset):
        results = list(GetNext2D(paper_dataset))
        assert len(results) == 11

    def test_all_rankings_distinct(self, paper_dataset):
        results = list(GetNext2D(paper_dataset))
        assert len({r.ranking for r in results}) == 11

    def test_rankings_realised_by_region_midpoint(self, paper_dataset):
        for res in GetNext2D(paper_dataset):
            w = res.region.midpoint_weights()
            assert rank_items(paper_dataset.values, w) == res.ranking

    def test_most_stable_first_on_random_data(self, rng):
        ds = Dataset(rng.uniform(size=(15, 2)))
        gn = GetNext2D(ds)
        first = gn.get_next()
        rest = list(gn)
        assert all(first.stability >= r.stability for r in rest)

    def test_region_restriction(self, paper_dataset):
        cone = Cone(np.array([1.0, 1.0]), math.pi / 20)
        results = list(GetNext2D(paper_dataset, region=cone))
        total = sum(r.stability for r in results)
        assert math.isclose(total, 1.0, rel_tol=1e-9)
        lo, hi = cone.angle_interval()
        for r in results:
            assert r.region.lo >= lo - 1e-12 and r.region.hi <= hi + 1e-12

    def test_requires_2d(self, rng):
        ds = Dataset(rng.uniform(size=(4, 3)))
        with pytest.raises(ValueError):
            GetNext2D(ds)
