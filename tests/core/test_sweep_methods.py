"""Equivalence tests for the two RAYSWEEPING implementations.

The kinetic (event-heap) sweep and the vectorized (sort-all-angles)
sweep must produce identical boundary sets on every input; these tests
pin that equivalence, including under restricted regions of interest and
adversarial data (duplicates, dominance chains, coincident exchanges).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import Cone, ConstrainedRegion, Dataset, GetNext2D, sweep_boundaries


def _assert_same_boundaries(ds, region=None):
    lo_k, hi_k, kinetic = sweep_boundaries(ds, region=region, method="kinetic")
    lo_v, hi_v, vector = sweep_boundaries(ds, region=region, method="vectorized")
    assert (lo_k, hi_k) == (lo_v, hi_v)
    assert kinetic.shape == vector.shape
    if kinetic.size:
        assert np.allclose(kinetic, vector, atol=1e-9)


class TestSweepEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_uniform(self, seed, rng_factory):
        ds = Dataset(rng_factory(seed).uniform(size=(25, 2)))
        _assert_same_boundaries(ds)

    def test_paper_example(self, paper_dataset):
        _assert_same_boundaries(paper_dataset)

    def test_with_cone_region(self, rng_factory):
        ds = Dataset(rng_factory(9).uniform(size=(20, 2)))
        _assert_same_boundaries(ds, region=Cone(np.array([1.0, 1.0]), math.pi / 8))

    def test_with_constraint_region(self, rng_factory):
        ds = Dataset(rng_factory(10).uniform(size=(20, 2)))
        region = ConstrainedRegion(np.array([[-1.0, 1.0], [2.0, -1.0]]))
        _assert_same_boundaries(ds, region=region)

    def test_duplicates_and_dominance(self):
        ds = Dataset(
            np.array(
                [
                    [0.5, 0.5],
                    [0.5, 0.5],   # duplicate
                    [0.9, 0.9],   # dominates everything
                    [0.2, 0.8],
                    [0.8, 0.2],
                ]
            )
        )
        _assert_same_boundaries(ds)

    def test_coincident_exchanges(self):
        # Symmetric pairs around the diagonal all exchange at pi/4.
        ds = Dataset(
            np.array([[0.2, 0.8], [0.8, 0.2], [0.3, 0.7], [0.7, 0.3]])
        )
        _assert_same_boundaries(ds)
        _, _, boundaries = sweep_boundaries(ds, method="vectorized")
        # All four pairwise exchanges of the two symmetric pairs collapse
        # onto pi/4, leaving a single boundary there.
        assert np.isclose(boundaries, math.pi / 4).sum() == 1

    @given(
        values=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 12), st.just(2)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_equivalence(self, values):
        _assert_same_boundaries(Dataset(values))

    def test_unknown_method_rejected(self, paper_dataset):
        with pytest.raises(ValueError):
            sweep_boundaries(paper_dataset, method="magic")


class TestGetNext2DMethods:
    def test_same_results_under_both_methods(self, rng_factory):
        ds = Dataset(rng_factory(11).uniform(size=(15, 2)))
        kinetic = list(GetNext2D(ds, method="kinetic"))
        vector = list(GetNext2D(ds, method="vectorized"))
        assert [r.ranking for r in kinetic] == [r.ranking for r in vector]
        for a, b in zip(kinetic, vector):
            assert math.isclose(a.stability, b.stability, rel_tol=1e-9)
