"""Unit tests for ScoringFunction."""

import math

import numpy as np
import pytest

from repro import Dataset, ScoringFunction
from repro.errors import InvalidWeightsError


class TestConstruction:
    def test_basic(self):
        f = ScoringFunction(np.array([1.0, 2.0]))
        assert f.dim == 2
        assert np.allclose(f.weights, [1.0, 2.0])

    def test_weights_read_only(self):
        f = ScoringFunction(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            f.weights[0] = 3.0

    def test_equal_weights(self):
        f = ScoringFunction.equal_weights(4)
        assert np.allclose(f.weights, np.ones(4))

    def test_from_angles_round_trip(self):
        f = ScoringFunction.from_angles(np.array([math.pi / 4]))
        g = ScoringFunction.from_angles(f.angles)
        assert f == g

    def test_rejects_negative(self):
        with pytest.raises(InvalidWeightsError):
            ScoringFunction(np.array([1.0, -1.0]))

    def test_rejects_zero(self):
        with pytest.raises(InvalidWeightsError):
            ScoringFunction(np.zeros(3))


class TestRayEquality:
    def test_positive_multiples_equal(self):
        assert ScoringFunction(np.array([1.0, 2.0])) == ScoringFunction(
            np.array([0.5, 1.0])
        )

    def test_different_rays_differ(self):
        assert ScoringFunction(np.array([1.0, 2.0])) != ScoringFunction(
            np.array([2.0, 1.0])
        )

    def test_hash_consistent_with_eq(self):
        a = ScoringFunction(np.array([1.0, 2.0]))
        b = ScoringFunction(np.array([10.0, 20.0]))
        assert hash(a) == hash(b)

    def test_unit_has_norm_one(self, rng):
        f = ScoringFunction(rng.uniform(0.1, 5.0, size=4))
        assert math.isclose(float(np.linalg.norm(f.unit)), 1.0, rel_tol=1e-12)


class TestScoring:
    def test_score_single_item(self):
        f = ScoringFunction(np.array([1.0, 1.0]))
        assert math.isclose(f.score(np.array([0.83, 0.65])), 1.48)

    def test_score_all_matches_manual(self, paper_dataset, paper_values):
        f = ScoringFunction(np.array([1.0, 1.0]))
        assert np.allclose(f.score_all(paper_dataset), paper_values.sum(axis=1))

    def test_score_all_accepts_array(self, paper_values):
        f = ScoringFunction(np.array([1.0, 1.0]))
        assert np.allclose(f.score_all(paper_values), paper_values.sum(axis=1))

    def test_rank_paper_example(self, paper_dataset):
        f = ScoringFunction.equal_weights(2)
        assert f.rank(paper_dataset).order == (1, 3, 2, 4, 0)

    def test_rank_top_k(self, paper_dataset):
        f = ScoringFunction.equal_weights(2)
        assert f.rank(paper_dataset, k=3).order == (1, 3, 2)


class TestSimilarity:
    def test_cosine_to_self_is_one(self):
        f = ScoringFunction(np.array([0.3, 0.7]))
        assert math.isclose(f.cosine_similarity(f), 1.0)

    def test_angle_to_weight_vector(self):
        f = ScoringFunction(np.array([1.0, 0.0]))
        assert math.isclose(f.angle_to(np.array([0.0, 1.0])), math.pi / 2)

    def test_csmetrics_observation(self):
        # Example 1: alpha = 0.608 vs alpha = 0.3 — "very far from the
        # default"; their cosine similarity is well below 0.998.
        default = ScoringFunction(np.array([0.3, 0.7]))
        stable = ScoringFunction(np.array([0.608, 0.392]))
        assert default.cosine_similarity(stable) < 0.998
