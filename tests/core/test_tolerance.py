"""Unit tests for similarity-tolerant stability (section 8 future work)."""

import numpy as np
import pytest

from repro import (
    Cone,
    Dataset,
    Ranking,
    ScoringFunction,
    tolerant_stability,
    verify_stability_2d,
)
from repro.core.tolerance import kendall_tau_within
from repro.errors import InvalidRankingError


class TestKendallTauWithin:
    def test_identical(self):
        order = np.arange(6)
        assert kendall_tau_within(order, order, 0)

    def test_single_swap(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([1, 0, 2, 3])
        assert not kendall_tau_within(a, b, 0)
        assert kendall_tau_within(a, b, 1)

    def test_full_reversal(self):
        a = np.arange(5)
        b = a[::-1].copy()
        assert kendall_tau_within(a, b, 10)  # C(5,2) = 10
        assert not kendall_tau_within(a, b, 9)

    def test_matches_exact_count(self, rng):
        from repro.core.ranking import Ranking

        for _ in range(25):
            n = int(rng.integers(3, 12))
            a = rng.permutation(n)
            b = rng.permutation(n)
            exact = Ranking(a.tolist()).kendall_tau_distance(Ranking(b.tolist()))
            for tau in (0, exact - 1, exact, exact + 1):
                if tau < 0:
                    continue
                assert kendall_tau_within(a, b, tau) == (exact <= tau)

    def test_rejects_negative_tau(self):
        with pytest.raises(ValueError):
            kendall_tau_within(np.arange(3), np.arange(3), -1)

    def test_symmetric(self, rng):
        a, b = rng.permutation(8), rng.permutation(8)
        for tau in (0, 3, 10):
            assert kendall_tau_within(a, b, tau) == kendall_tau_within(b, a, tau)


class TestTolerantStability:
    @pytest.fixture
    def ds(self, rng_factory):
        return Dataset(rng_factory(71).uniform(size=(8, 2)))

    def test_tau_zero_matches_plain_stability(self, ds, rng_factory):
        r = ScoringFunction.equal_weights(2).rank(ds)
        exact = verify_stability_2d(ds, r).stability
        tolerant = tolerant_stability(
            ds, r, tau=0, n_samples=40_000, rng=rng_factory(72)
        )
        assert abs(tolerant.stability - exact) < 0.01

    def test_monotone_in_tau(self, ds, rng_factory):
        r = ScoringFunction.equal_weights(2).rank(ds)
        values = [
            tolerant_stability(
                ds, r, tau=tau, n_samples=8_000, rng=rng_factory(73)
            ).stability
            for tau in (0, 1, 3, 28)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_max_tau_covers_everything(self, ds, rng_factory):
        r = ScoringFunction.equal_weights(2).rank(ds)
        full = tolerant_stability(
            ds, r, tau=len(ds) * (len(ds) - 1) // 2, n_samples=500,
            rng=rng_factory(74),
        )
        assert full.stability == 1.0

    def test_topk_prefix_mode(self, ds, rng_factory):
        r = ScoringFunction.equal_weights(2).rank(ds)
        res = tolerant_stability(
            ds, r, tau=1, k=3, n_samples=4_000, rng=rng_factory(75)
        )
        assert 0.0 <= res.stability <= 1.0
        # Prefix comparison can only make agreement easier than full.
        full = tolerant_stability(
            ds, r, tau=1, n_samples=4_000, rng=rng_factory(75)
        )
        assert res.stability >= full.stability - 0.02

    def test_region_restriction(self, ds, rng_factory):
        r = ScoringFunction.equal_weights(2).rank(ds)
        cone = Cone(np.array([1.0, 1.0]), np.pi / 200)
        res = tolerant_stability(
            ds, r, tau=1, region=cone, n_samples=2_000, rng=rng_factory(76)
        )
        # Inside a tight cone around the inducing function, tolerance 1
        # should capture (nearly) everything.
        assert res.stability > 0.9

    def test_incomplete_ranking_rejected(self, ds, rng):
        with pytest.raises(InvalidRankingError):
            tolerant_stability(
                ds, Ranking([0, 1], n_items=8), tau=1, n_samples=10, rng=rng
            )

    def test_bad_k_rejected(self, ds, rng):
        r = ScoringFunction.equal_weights(2).rank(ds)
        with pytest.raises(InvalidRankingError):
            tolerant_stability(ds, r, tau=0, k=99, n_samples=10, rng=rng)
