"""Tests for the stability/similarity trade-off frontier (Example 1)."""

import math

import numpy as np
import pytest

from repro import Dataset
from repro.core.tradeoff import (
    absolute_best_volumes,
    most_stable_within,
    stability_similarity_tradeoff,
)
from repro.errors import InvalidWeightsError
from repro.geometry.angles import angle_between, as_unit_vector


@pytest.fixture
def csmetrics_like(rng):
    from repro.datasets import csmetrics_dataset

    return csmetrics_dataset(40, rng)


class TestMostStableWithin:
    def test_result_weights_inside_cone(self, paper_dataset):
        reference = np.array([1.0, 1.0])
        result = most_stable_within(paper_dataset, reference, 0.98)
        weights = result.representative_weights
        assert weights is not None
        assert angle_between(weights, reference) <= math.acos(0.98) + 1e-9

    def test_first_get_next_is_most_stable(self, paper_dataset):
        # Searching deeper can never find a more stable ranking than the
        # first GET-NEXT result in an exact engine.
        reference = np.array([1.0, 1.0])
        first = most_stable_within(paper_dataset, reference, 0.9)
        deeper = most_stable_within(
            paper_dataset, reference, 0.9, search_limit=5
        )
        assert deeper.stability == pytest.approx(first.stability)

    def test_wider_cone_contains_at_least_as_much_volume(self, csmetrics_like):
        reference = np.array([0.3, 0.7])
        narrow = most_stable_within(csmetrics_like, reference, 0.999)
        wide = most_stable_within(csmetrics_like, reference, 0.98)
        from repro.geometry.spherical import cap_area

        v_narrow = narrow.stability * cap_area(2, math.acos(0.999))
        v_wide = wide.stability * cap_area(2, math.acos(0.98))
        assert v_wide >= v_narrow - 1e-12

    def test_rejects_bad_cosine(self, paper_dataset):
        with pytest.raises(ValueError):
            most_stable_within(paper_dataset, np.array([1.0, 1.0]), 1.5)
        with pytest.raises(ValueError):
            most_stable_within(paper_dataset, np.array([1.0, 1.0]), 0.0)


class TestTradeoffFrontier:
    def test_points_align_with_requested_cosines(self, csmetrics_like, rng):
        cosines = (0.999, 0.99, 0.95)
        points = stability_similarity_tradeoff(
            csmetrics_like, np.array([0.3, 0.7]), cosines=cosines, rng=rng
        )
        assert [p.cosine for p in points] == list(cosines)
        for p in points:
            assert p.theta == pytest.approx(math.acos(p.cosine))

    def test_best_at_least_reference(self, csmetrics_like, rng):
        points = stability_similarity_tradeoff(
            csmetrics_like,
            np.array([0.3, 0.7]),
            cosines=(0.999, 0.99),
            rng=rng,
        )
        for p in points:
            assert p.best.stability >= p.reference_stability - 1e-9

    def test_displacement_zero_iff_same_ranking(self, csmetrics_like, rng):
        points = stability_similarity_tradeoff(
            csmetrics_like, np.array([0.3, 0.7]), cosines=(0.999,), rng=rng
        )
        p = points[0]
        reference_ranking = p.best.ranking
        if p.displacement == 0:
            assert not p.moved_items
        else:
            assert p.moved_items
            # Every reported move must be a real rank change.
            for item, ref_rank, new_rank in p.moved_items:
                assert ref_rank != new_rank

    def test_absolute_volumes_monotone_in_theta(self, csmetrics_like, rng):
        cosines = (0.9999, 0.999, 0.99, 0.97)
        points = stability_similarity_tradeoff(
            csmetrics_like, np.array([0.3, 0.7]), cosines=cosines, rng=rng
        )
        volumes = absolute_best_volumes(points, dim=2)
        # cosines descend => thetas ascend => volumes must not shrink.
        assert all(b >= a - 1e-12 for a, b in zip(volumes, volumes[1:]))

    def test_md_engine_three_attributes(self, rng):
        values = rng.random((25, 3))
        dataset = Dataset(values)
        reference = np.array([1.0, 1.0, 1.0])
        points = stability_similarity_tradeoff(
            dataset,
            reference,
            cosines=(0.999, 0.99),
            engine="md",
            rng=rng,
            n_samples=2_000,
        )
        assert len(points) == 2
        for p in points:
            assert 0.0 <= p.best.stability <= 1.0
            assert p.displacement >= 0  # md returns complete rankings

    def test_rejects_wrong_weight_length(self, paper_dataset):
        with pytest.raises(InvalidWeightsError):
            stability_similarity_tradeoff(
                paper_dataset, np.array([1.0, 1.0, 1.0]), cosines=(0.99,)
            )

    def test_moved_items_sorted_by_move_size(self, csmetrics_like, rng):
        points = stability_similarity_tradeoff(
            csmetrics_like, np.array([0.3, 0.7]), cosines=(0.95,), rng=rng
        )
        moves = points[0].moved_items
        sizes = [abs(ref - new) for _, ref, new in moves]
        assert sizes == sorted(sizes, reverse=True)


class TestReferenceStability:
    def test_exact_2d_reference_on_boundary_is_zero_or_positive(self, rng):
        # Degenerate: two identical items make every ranking that splits
        # them boundary-thin; the helper must not raise.
        values = np.array([[0.5, 0.5], [0.5, 0.5], [0.1, 0.9]])
        dataset = Dataset(values)
        points = stability_similarity_tradeoff(
            dataset, np.array([1.0, 1.0]), cosines=(0.99,), rng=rng
        )
        assert points[0].reference_stability >= 0.0
