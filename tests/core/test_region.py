"""Unit tests for regions of interest (section 2.2.2)."""

import math

import numpy as np
import pytest

from repro.core.region import Cone, ConstrainedRegion, FullSpace
from repro.errors import InfeasibleRegionError


class TestFullSpace:
    def test_contains_orthant_only(self):
        u = FullSpace(3)
        assert u.contains(np.array([1.0, 0.0, 2.0]))
        assert not u.contains(np.array([1.0, -0.1, 2.0]))
        assert not u.contains(np.zeros(3))

    def test_sample_properties(self, rng):
        u = FullSpace(4)
        pts = u.sample(300, rng)
        assert pts.shape == (300, 4)
        assert np.all(pts >= 0)
        assert u.contains_all(pts).all()

    def test_angle_interval(self):
        assert FullSpace(2).angle_interval() == (0.0, math.pi / 2)

    def test_angle_interval_requires_2d(self):
        with pytest.raises(ValueError):
            FullSpace(3).angle_interval()

    def test_reference_ray(self):
        ref = FullSpace(4).reference_ray()
        assert np.allclose(ref, 0.5)

    def test_rejects_dim_one(self):
        with pytest.raises(ValueError):
            FullSpace(1)


class TestCone:
    def test_contains_axis(self):
        c = Cone(np.array([1.0, 1.0, 1.0]), math.pi / 10)
        assert c.contains(np.array([1.0, 1.0, 1.0]))
        assert c.contains(np.array([5.0, 5.0, 5.0]))  # ray membership

    def test_excludes_far_rays(self):
        c = Cone(np.array([1.0, 1.0]), math.pi / 20)
        assert not c.contains(np.array([1.0, 0.0]))

    def test_boundary_inclusive(self):
        c = Cone(np.array([1.0, 0.0]), math.pi / 4)
        assert c.contains(np.array([1.0, 1.0]))  # exactly pi/4 away

    def test_from_cosine(self):
        c = Cone.from_cosine(np.array([1.0, 1.0]), 0.998)
        assert math.isclose(c.theta, math.acos(0.998))

    def test_samples_inside(self, rng):
        c = Cone(np.array([0.3, 0.7, 0.6]), math.pi / 15)
        pts = c.sample(500, rng)
        assert c.contains_all(pts).all()

    def test_samples_nonnegative_near_boundary(self, rng):
        # Axis-adjacent cone: the cap pokes outside the orthant and must
        # be filtered.
        c = Cone(np.array([1.0, 0.05]), math.pi / 10)
        pts = c.sample(300, rng)
        assert np.all(pts >= 0.0)
        assert c.contains_all(pts).all()

    def test_angle_interval_centered(self):
        c = Cone(np.array([1.0, 1.0]), math.pi / 20)
        lo, hi = c.angle_interval()
        assert math.isclose(lo, math.pi / 4 - math.pi / 20)
        assert math.isclose(hi, math.pi / 4 + math.pi / 20)

    def test_angle_interval_clipped_at_axes(self):
        c = Cone(np.array([1.0, 0.02]), math.pi / 8)
        lo, hi = c.angle_interval()
        assert lo == 0.0
        assert hi < math.pi / 2

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            Cone(np.ones(2), 0.0)
        with pytest.raises(ValueError):
            Cone(np.ones(2), 2.0)

    def test_contains_all_matches_scalar(self, rng):
        c = Cone(np.array([0.5, 0.5, 0.7]), math.pi / 8)
        pts = np.abs(rng.normal(size=(100, 3)))
        mask = c.contains_all(pts)
        for p, expected in zip(pts, mask):
            assert c.contains(p) == bool(expected)


class TestConstrainedRegion:
    def test_paper_example_constraints(self):
        # Section 3.2, U*_1 = {w1 <= w2, 2 w1 >= w2}: rows encode
        # w2 - w1 >= 0 and 2 w1 - w2 >= 0.
        region = ConstrainedRegion(np.array([[-1.0, 1.0], [2.0, -1.0]]))
        lo, hi = region.angle_interval()
        assert math.isclose(lo, math.pi / 4)
        assert math.isclose(hi, math.atan2(2.0, 1.0))

    def test_membership(self):
        region = ConstrainedRegion(np.array([[1.0, -1.0, 0.0]]))  # w1 >= w2
        assert region.contains(np.array([2.0, 1.0, 1.0]))
        assert not region.contains(np.array([1.0, 2.0, 1.0]))

    def test_sampling(self, rng):
        region = ConstrainedRegion(np.array([[1.0, -1.0, 0.0]]))
        pts = region.sample(400, rng)
        assert region.contains_all(pts).all()

    def test_no_constraints_is_orthant(self, rng):
        region = ConstrainedRegion(np.empty((0, 3)), dim=3)
        pts = region.sample(100, rng)
        assert pts.shape == (100, 3)
        assert region.contains(np.array([1.0, 1.0, 1.0]))

    def test_infeasible_raises_at_construction(self):
        with pytest.raises(InfeasibleRegionError):
            ConstrainedRegion(np.array([[1.0, -1.0], [-1.0, 1.0], [0.0, -1.0], [-1.0, 0.0]]))

    def test_reference_ray_inside(self):
        region = ConstrainedRegion(np.array([[1.0, -2.0, 0.0]]))  # w1 >= 2 w2
        ref = region.reference_ray()
        assert region.contains(ref)

    def test_angle_interval_requires_2d(self):
        region = ConstrainedRegion(np.array([[1.0, -1.0, 0.0]]))
        with pytest.raises(ValueError):
            region.angle_interval()

    def test_angle_interval_infeasible_in_2d(self):
        # w1 >= w2 AND w2 >= 2 w1 cannot hold for positive weights...
        with pytest.raises(InfeasibleRegionError):
            ConstrainedRegion(np.array([[1.0, -1.0], [-2.0, 1.0]]))

    def test_redundant_constraints_ok(self):
        region = ConstrainedRegion(
            np.array([[1.0, -1.0], [2.0, -2.0], [1.0, 0.0]])
        )
        lo, hi = region.angle_interval()
        assert lo == 0.0
        assert math.isclose(hi, math.pi / 4)
